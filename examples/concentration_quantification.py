"""Quantify unknown target concentrations — the microarray's purpose.

"The purpose of DNA microarray chips is the parallel investigation
concerning the amount of specific DNA sequences in a given sample."
This example builds a calibration curve from standards measured as a
``run_batch`` sweep — one calibrated chip, one spotted layout, four
known concentrations — then quantifies blinded samples measured on the
same chip and reports recovery accuracy.

Run:  python examples/concentration_quantification.py
"""

import numpy as np

from repro.core import render_table, units
from repro.dna import CalibrationCurve, CalibrationPoint
from repro.experiments import DnaAssaySpec, Runner


def match_counts(result) -> np.ndarray:
    """Replicate counts on the quantified probe's spots."""
    return result.select(result.column("probe") == "probe-000")["count"]


def main() -> None:
    runner = Runner(seed=81)
    base = DnaAssaySpec(
        probe_count=4,
        replicates=16,
        target_subset=(0,),
        calibration_frame_s=0.1,
    )

    # --- standards: a declarative concentration sweep ----------------------
    standards = [0.1 * units.nM, 1 * units.nM, 10 * units.nM, 100 * units.nM]
    standard_results = runner.run_batch(
        [base.replace(concentration=c) for c in standards]
    )
    points = [
        CalibrationPoint(c, float(np.median(match_counts(result))))
        for c, result in zip(standards, standard_results)
    ]
    curve = CalibrationCurve(points)
    print(render_table(
        ["standard", "median count"],
        [(f"{p.concentration / units.nM:g} nM", f"{p.median_count:.0f}") for p in curve.points],
        title="Calibration curve (known standards)"))
    print(f"(chips built: {runner.stats.chips_built} — the whole sweep "
          f"shares one calibrated chip)")

    # --- blinded samples ---------------------------------------------------
    unknowns = [0.3 * units.nM, 2 * units.nM, 7 * units.nM, 50 * units.nM]
    rows = []
    for true_conc in unknowns:
        result = runner.run(base.replace(concentration=true_conc))
        replicate_counts = match_counts(result)
        estimates = [curve.concentration_for_count(int(c)) for c in replicate_counts if c > 0]
        estimate = float(np.median(estimates))
        ci_low = float(np.percentile(estimates, 16))
        ci_high = float(np.percentile(estimates, 84))
        recovery = estimate / true_conc * 100
        in_range = curve.in_range(float(np.median(replicate_counts)))
        rows.append((
            f"{true_conc / units.nM:g} nM",
            f"{estimate / units.nM:.3g} nM",
            f"[{ci_low / units.nM:.3g}, {ci_high / units.nM:.3g}]",
            f"{recovery:.1f}%",
            "yes" if in_range else "no",
        ))
    print()
    print(render_table(
        ["true", "estimated", "68% CI (nM)", "recovery", "in range"],
        rows, title="Blinded-sample quantification"))
    print("\nRecoveries within ~15% across three decades: the chip's "
          "counts are a quantitative concentration readout, not just a "
          "match/mismatch classifier.")


if __name__ == "__main__":
    main()
