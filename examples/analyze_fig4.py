"""Fig. 4 as a statistical claim: campaign -> store -> dose–response.

The paper's concentration series (Fig. 4) is, in modern terms, a
calibration curve with a limit of detection.  This example reproduces
it end-to-end through the full pipeline:

1. run the committed Fig. 4 concentration campaign
   (``examples/specs/fig4_concentration_campaign.json``) into a JSONL
   store — 3 doses × 4 chip replicates;
2. reload the store (nothing below this line re-runs any physics) and
   run the ``dose_response`` analysis: a log-log calibration fit with
   covariance, the 3σ-blank LoD, dynamic range, and vectorized
   bootstrap CIs — every number a pure, bit-reproducible function of
   the stored campaign;
3. print the text report and write the markdown one next to the store.

Equivalent from the shell::

    repro sweep --campaign examples/specs/fig4_concentration_campaign.json \
                --seed 1 --store jsonl --out fig4-campaign
    repro analyze fig4-campaign --markdown --out fig4-report.md

Run:  python examples/analyze_fig4.py
"""

import json
import tempfile
from pathlib import Path

from repro.campaigns import CampaignSpec, run_campaign
from repro.core import units
from repro.inference import analyze

SPEC = Path(__file__).parent / "specs" / "fig4_concentration_campaign.json"


def main() -> None:
    campaign = CampaignSpec.from_dict(json.loads(SPEC.read_text()))
    print(campaign.summary())

    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "fig4-campaign"
        run_campaign(campaign, seed=1, store="jsonl", out=out)

        # The analysis consumes only the store: a reloaded directory,
        # a CampaignResult, or `repro analyze <dir>` all agree byte
        # for byte, whatever executor produced it.
        report = analyze(out)  # inferred: concentration axis -> dose_response
        print()
        print(report.to_text())

        markdown = Path(tmp) / "fig4-report.md"
        markdown.write_text(report.to_markdown(), encoding="utf-8")
        print(f"\nmarkdown report written to {markdown}")

        lod = report.scalars["lod"]
        lod_low, lod_high = report.scalars["lod_ci_low"], report.scalars["lod_ci_high"]
        print(
            f"\nlimit of detection: {lod / units.nM:.3g} nM "
            f"(95% CI {lod_low / units.nM:.3g} .. {lod_high / units.nM:.3g} nM), "
            f"dynamic range {report.scalars['dynamic_range_decades']:.2f} decades"
        )


if __name__ == "__main__":
    main()
