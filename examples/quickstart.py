"""Quickstart: run a DNA assay on the 16x8 microarray chip.

The minimal end-to-end flow of Section 2 / Fig. 4, driven through the
unified Experiment API: declare the assay as a ``DnaAssaySpec``, hand
it to a ``Runner``, read the uniform ``ResultSet``.  Under the hood the
Runner builds the chip, biases the electrodes, auto-calibrates, spots
the probe panel, applies the sample, hybridizes/washes, digitises the
sensor currents in-pixel and reads the counters over the 6-pin serial
interface.

Run:  python examples/quickstart.py
"""

from repro.core import render_table, units
from repro.experiments import DnaAssaySpec, Runner


def main() -> None:
    # One declarative spec instead of four hand-numbered seeds: 16
    # random 20-mer probes spotted 8x each, perfect targets for the
    # first four probes at 10 nM (units.nM converts to the library's
    # mol/m^3 convention), everything else on the chip stays dark.
    spec = DnaAssaySpec(
        probe_count=16,
        probe_length=20,
        replicates=8,
        target_subset=(0, 1, 2, 3),
        concentration=10 * units.nM,
    )

    # The Runner owns the seed tree (reproducibility) and the chip
    # cache (re-running or sweeping this spec reuses the calibrated
    # chip instead of rebuilding it).
    runner = Runner(seed=1)
    result = runner.run(spec)

    chip = result.artifacts["chip"]
    print("Chip:", dict(chip.specs.as_rows()))
    print("Spec:", result.spec["kind"], "| electrodes biased:", result.metrics["bias_ok"])

    # The full digital path still works on the artifact chip: serial
    # counter readout must agree with the in-pixel conversion exactly.
    counts = result.artifacts["counts"]
    host_counts = chip.read_counters_serial()
    assert host_counts == [int(c) for c in counts.reshape(-1)], "serial readout mismatch"

    currents = result.column("current_estimate_a")
    is_match = result.column("is_match")
    is_probe = result.column("probe") != ""
    rows = []
    for name, mask in (("match", is_match), ("non-match", ~is_match & is_probe)):
        values = currents[mask]
        rows.append((name, int(mask.sum()), units.si_format(values.min(), "A"),
                     units.si_format(values.max(), "A")))
    print()
    print(render_table(["site type", "sites", "min current", "max current"], rows,
                       title="Assay outcome (host-side current estimates)"))
    print()
    print(f"match / non-match discrimination: {result.metrics['discrimination_ratio']:.0f}x")
    print(f"provenance: root seed {result.seeds['root']}, "
          f"streams {sorted(result.seeds['streams'])}, version {result.version}")


if __name__ == "__main__":
    main()
