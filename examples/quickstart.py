"""Quickstart: run a DNA assay on the 16x8 microarray chip.

The minimal end-to-end flow of Section 2 / Fig. 4: build a chip, bias
the electrodes, auto-calibrate, spot a probe panel, apply a sample,
hybridize/wash, digitise the sensor currents in-pixel and read the
counters over the 6-pin serial interface.

Run:  python examples/quickstart.py
"""

from repro import DnaMicroarrayChip, MicroarrayAssay, ProbeLayout, Sample
from repro.core import render_table, units


def main() -> None:
    # A chip instance: seeding makes the manufacturing variation (pixel
    # offsets, DAC INL, bandgap spread) reproducible.
    chip = DnaMicroarrayChip(rng=1)
    print("Chip:", dict(chip.specs.as_rows()))

    # Electrochemical bias: generator above, collector below the redox
    # potential of the p-aminophenol label product.
    assert chip.configure_bias(v_generator=0.45, v_collector=-0.25)
    chip.auto_calibrate(frame_s=0.05, rng=2)

    # 16 random 20-mer probes, each spotted 8 times across the array.
    layout = ProbeLayout.random_panel(16, probe_length=20, replicates=8, rng=3)
    probes = layout.probes()

    # The sample contains perfect targets for the first four probes at
    # 10 nM; everything else on the chip should stay dark.
    sample = Sample.for_probes(probes, concentration=1e-5, subset=[0, 1, 2, 3])

    # Chemistry: hybridize, wash, develop the enzyme label.
    result = MicroarrayAssay(layout).run(sample)

    # Electronics: in-pixel A/D conversion, then serial readout.
    counts = chip.measure_assay(result, frame_s=1.0, rng=4)
    host_counts = chip.read_counters_serial()
    assert host_counts == [int(c) for c in counts.reshape(-1)], "serial readout mismatch"

    currents = chip.current_estimates(counts, frame_s=1.0)
    rows = []
    for name, subset in (("match", result.match_sites()), ("non-match", result.mismatch_sites())):
        sites = [(s.row, s.col) for s in subset]
        values = [currents[r, c] for r, c in sites]
        rows.append((name, len(sites), units.si_format(min(values), "A"),
                     units.si_format(max(values), "A")))
    print()
    print(render_table(["site type", "sites", "min current", "max current"], rows,
                       title="Assay outcome (host-side current estimates)"))
    print()
    print(f"match / non-match discrimination: {result.discrimination_ratio():.0f}x")


if __name__ == "__main__":
    main()
