"""Neural recording on the 128x128 sensor array (Section 3, Figs. 5-6).

Places a small culture of neurons on the chip, lets them fire
spontaneously, records at the full 2 kframe/s rate through the
calibrated pixel array and the x5600 signal path, then runs spike
detection against the simulation's ground truth.

Run:  python examples/neural_recording.py
"""

import numpy as np

from repro import Culture, NeuralRecordingChip
from repro.core import render_kv, render_table, units
from repro.neuro import ArrayGeometry, detect_spikes, score_detection, spike_snr


def main() -> None:
    # A 64x64 sub-array keeps the example quick; geometry and timing
    # scale exactly as the full 128x128 device (same pitch and design).
    chip = NeuralRecordingChip(geometry=ArrayGeometry(64, 64, 7.8e-6), rng=1)

    print(render_kv("Scan timing (locked to the paper's numbers)", [
        ("frame rate", f"{chip.scan.frame_rate_hz:.0f} frames/s"),
        ("row time", units.si_format(chip.scan.row_time_s, "s")),
        ("mux slot", units.si_format(chip.scan.slot_time_s, "s")),
        ("channel pixel rate", units.si_format(chip.scan.channel_pixel_rate_hz, "Hz")),
        ("aggregate pixel rate", units.si_format(chip.scan.aggregate_pixel_rate_hz, "Hz")),
        ("4 MHz readout amp settles", chip.scan.settling_ok(4e6)),
        ("32 MHz output driver settles", chip.scan.settling_ok(32e6)),
    ]))

    # Calibration first — without it the pixel offsets saturate the chain.
    chip.calibrate()
    print(f"\ninput-referred noise floor: "
          f"{units.si_format(chip.input_referred_noise_v(), 'V')} rms per sample")

    culture = Culture.random(5, chip.geometry, diameter_range=(25e-6, 80e-6), rng=2)
    print(f"culture: {len(culture.neurons)} neurons, "
          f"coverage = {culture.coverage_fraction() * 100:.0f}% "
          f"(pitch 7.8 um vs 25-80 um somata)")

    recording = chip.record_culture(culture, duration_s=0.25, firing_rate_hz=25.0, rng=3)

    rows = []
    for neuron in culture.neurons:
        truth = recording.ground_truth[neuron.index]
        row, col = recording.best_pixel_for(neuron.index)
        trace = recording.electrode_movie.pixel_trace(row, col)
        detected = detect_spikes(trace, threshold_sigma=4.5)
        score = score_detection(detected, truth, tolerance_s=3e-3)
        snr = spike_snr(trace, truth) if len(truth) else float("nan")
        rows.append((
            f"neuron {neuron.index}",
            f"{neuron.diameter * 1e6:.0f} um",
            f"({row},{col})",
            units.si_format(trace.peak_abs(), "V"),
            len(truth),
            len(detected),
            f"{score.precision:.2f}/{score.recall:.2f}",
            f"{snr:.1f}",
        ))
    print()
    print(render_table(
        ["cell", "diameter", "best pixel", "peak signal", "true", "detected",
         "precision/recall", "SNR"],
        rows, title="Spike detection per neuron (electrode-referred traces)"))
    print("\nPeak signals fall inside the paper's 100 uV ... 5 mV window; the\n"
          "x5600 chain brings them to ADC-friendly levels off chip.")


if __name__ == "__main__":
    main()
