"""Neural recording on the 128x128 sensor array (Section 3, Figs. 5-6).

Declares the whole scenario — array geometry, culture, recording
length, detection thresholds — as a ``NeuralRecordingSpec`` and runs it
through the unified ``Runner``: spontaneous activity is simulated,
recorded at the full 2 kframe/s rate through the calibrated pixel array
and the x5600 signal path, and spike detection is scored against the
simulation's ground truth, all folded into one ``ResultSet``.

Run:  python examples/neural_recording.py
"""

from repro.core import render_kv, render_table, units
from repro.experiments import NeuralRecordingSpec, Runner


def main() -> None:
    # A 64x64 sub-array keeps the example quick; geometry and timing
    # scale exactly as the full 128x128 device (same pitch and design).
    spec = NeuralRecordingSpec(
        rows=64,
        cols=64,
        pitch_m=7.8e-6,
        n_neurons=5,
        diameter_range_m=(25e-6, 80e-6),
        duration_s=0.25,
        firing_rate_hz=25.0,
        threshold_sigma=4.5,
        tolerance_s=3e-3,
    )
    runner = Runner(seed=1)
    result = runner.run(spec)
    chip = result.artifacts["chip"]

    print(render_kv("Scan timing (locked to the paper's numbers)", [
        ("frame rate", f"{chip.scan.frame_rate_hz:.0f} frames/s"),
        ("row time", units.si_format(chip.scan.row_time_s, "s")),
        ("mux slot", units.si_format(chip.scan.slot_time_s, "s")),
        ("channel pixel rate", units.si_format(chip.scan.channel_pixel_rate_hz, "Hz")),
        ("aggregate pixel rate", units.si_format(chip.scan.aggregate_pixel_rate_hz, "Hz")),
        ("4 MHz readout amp settles", chip.scan.settling_ok(4e6)),
        ("32 MHz output driver settles", chip.scan.settling_ok(32e6)),
    ]))

    print(f"\ninput-referred noise floor: "
          f"{units.si_format(result.metrics['noise_floor_v'], 'V')} rms per sample")
    print(f"culture: {result.metrics['n_neurons']} neurons, "
          f"coverage = {result.metrics['coverage_fraction'] * 100:.0f}% "
          f"(pitch 7.8 um vs 25-80 um somata)")

    rows = [
        (
            f"neuron {record['neuron']}",
            f"{record['diameter_m'] * 1e6:.0f} um",
            f"({record['best_row']},{record['best_col']})",
            units.si_format(record["peak_v"], "V"),
            record["true_spikes"],
            record["detected_spikes"],
            f"{record['precision']:.2f}/{record['recall']:.2f}",
            f"{record['snr']:.1f}",
        )
        for record in result.to_rows()
    ]
    print()
    print(render_table(
        ["cell", "diameter", "best pixel", "peak signal", "true", "detected",
         "precision/recall", "SNR"],
        rows, title="Spike detection per neuron (electrode-referred traces)"))
    print("\nPeak signals fall inside the paper's 100 uV ... 5 mV window; the\n"
          "x5600 chain brings them to ADC-friendly levels off chip.")


if __name__ == "__main__":
    main()
