"""Wafer-scale yield: correlated process variation -> die binning -> maps.

The 2005 chips were diced from wafers, and wafer position is destiny:
mismatch drifts radially (thermal/spin gradients) and jumps per reticle
exposure, so die yield has spatial structure that per-chip Monte Carlo
(``array_scale``) cannot see.  This example runs the wafer axis
end-to-end:

1. load the committed small-wafer spec
   (``examples/specs/wafer_small.json``): a 60 mm wafer of 12x12 mm
   dies, each a 16x16 pixel array, with 30% of the mismatch variance in
   a radial bowl and 20% per reticle;
2. sweep the reticle share (``reticle_sigma`` is an ordinary campaign
   axis — ``repro kinds`` lists every sweepable wafer field) with two
   wafer replicates per point;
3. run the ``wafer_yield`` analysis: per-die pass/fail binning, ASCII
   wafer maps, per-wafer Wilson intervals and a cross-wafer bootstrap
   CI on mean yield.

Equivalent from the shell::

    repro run --spec examples/specs/wafer_small.json --seed 7
    repro sweep --spec examples/specs/wafer_small.json \
                --grid reticle_sigma=0.0,0.2,0.4 --replicates 2 \
                --seed 7 --store jsonl --out wafer-campaign
    repro analyze wafer-campaign

Run:  python examples/wafer_yield_map.py
"""

import json
from pathlib import Path

from repro.campaigns import CampaignSpec, run_campaign
from repro.experiments import spec_from_dict
from repro.inference import WaferYieldAnalysis, analyze

SPEC = Path(__file__).parent / "specs" / "wafer_small.json"


def main() -> None:
    wafer = spec_from_dict(json.loads(SPEC.read_text()))
    layout = wafer.layout()
    print(
        f"{wafer.wafer_diameter_mm:.0f} mm wafer: {layout.n_dies} dies "
        f"({wafer.rows}x{wafer.cols} pixels each) across "
        f"{layout.n_reticles} reticle exposures; variance split "
        f"radial {wafer.radial_gradient:.0%} / reticle {wafer.reticle_sigma:.0%} "
        f"/ white {wafer.white_fraction:.0%}"
    )

    campaign = CampaignSpec(
        base=wafer, grid={"reticle_sigma": (0.0, 0.2, 0.4)}, replicates=2
    )
    result = run_campaign(campaign, seed=7)

    # Bin dies on per-die mean count — the radial bowl depresses the
    # centre dies' counts, so the fail pattern traces the field.  (The
    # default dead-pixel criterion also works but these small dies
    # rarely fail it; ``metric``/``op``/``threshold`` accept any
    # per-die record column.)
    report = analyze(
        result,
        WaferYieldAnalysis(metric="mean_count", op=">=", threshold=8200, max_maps=3),
    )
    print()
    print(report.to_text())


if __name__ == "__main__":
    main()
