"""Service round trip: submit the Fig. 4 sweep twice, replay from cache.

Starts an in-process ``repro serve`` instance (background thread, free
port, content-addressed cache in a temp directory), then plays the
canonical client session against it:

1. submit ``examples/specs/fig4_concentration_campaign.json`` — the
   cold run computes all 12 points and populates the cache;
2. submit the *same* campaign again — the warm run is served entirely
   from cache (zero engine recomputation), and both the per-point
   result payloads and the derived dose–response analysis are
   byte-identical to the first run's, because a cached point is the
   same pure function value the engine would recompute.

That is the reproduction invariant doing operational work: caching is
provably safe, so overlapping sweeps from many clients cost one engine
pass for the union of their grids.

Run:  python examples/service_client.py
"""

import json
import tempfile
from pathlib import Path

from repro.service import ServiceClient, start_server

SPEC_PATH = Path(__file__).parent / "specs" / "fig4_concentration_campaign.json"


def main() -> None:
    campaign = json.loads(SPEC_PATH.read_text())
    with tempfile.TemporaryDirectory() as tmp:
        server, thread = start_server(port=0, cache=Path(tmp) / "cache")
        try:
            client = ServiceClient(server.url)
            print(f"service: {server.url}  ({client.health()})")

            print("\n-- cold submission ------------------------------------")
            cold = client.wait(client.submit(campaign, seed=1)["id"])
            print(f"{cold['id']}: {cold['status']}, cache {cold['cache']}")

            print("\n-- identical re-submission ----------------------------")
            warm = client.wait(client.submit(campaign, seed=1)["id"])
            print(f"{warm['id']}: {warm['status']}, cache {warm['cache']}")
            assert warm["cache"]["computed"] == 0, "warm run touched the engine!"
            assert warm["cache"]["hits"] == warm["n_points"], "expected 100% hits"

            cold_results = client.results(cold["id"])["results"]
            warm_results = client.results(warm["id"])["results"]
            identical = json.dumps(
                [line["result"] for line in cold_results], sort_keys=True
            ) == json.dumps([line["result"] for line in warm_results], sort_keys=True)
            print(f"\nper-point payloads byte-identical : {identical}")
            assert identical

            cold_report = client.analysis(cold["id"])["analysis"]
            warm_report = client.analysis(warm["id"])["analysis"]
            reports_match = json.dumps(cold_report, sort_keys=True) == json.dumps(
                warm_report, sort_keys=True
            )
            print(f"dose-response reports byte-identical: {reports_match}")
            assert reports_match
            lod = cold_report["scalars"].get("lod")
            if lod is not None:
                print(f"limit of detection (both runs)    : {lod:.3g} M")

            stats = client.cache_stats()["cache"]
            print(
                f"\ncache: {stats['entries']} entries, "
                f"{stats['hits']} hits / {stats['misses']} misses"
            )
        finally:
            server.shutdown()
            server.server_close()
            server.manager.shutdown()
            thread.join(timeout=10)


if __name__ == "__main__":
    main()
