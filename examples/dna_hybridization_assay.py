"""DNA hybridization assay in depth (Section 2, Fig. 2).

Uses the Experiment API's ``panel="mismatch"`` design: one target, and
probes with deliberate 0/1/2/3-substitution variants against it.  Shows

  * occupancy through the protocol phases per mismatch count,
  * the post-wash match/mismatch discrimination the washing step buys,
  * a target-concentration dose-response from 10 pM to 1 uM as a
    ``run_batch`` sweep — one calibrated chip and one spotted layout
    are reused across all six concentrations.

Run:  python examples/dna_hybridization_assay.py
"""

import numpy as np

from repro.core import render_table, units
from repro.experiments import DnaAssaySpec, Runner


def main() -> None:
    runner = Runner(seed=7)
    base = DnaAssaySpec(
        panel="mismatch",
        mismatch_counts=(1, 2, 3),
        replicates=28,
        control_every=16,
        concentration=10 * units.nM,
        hybridization_s=3600.0,
        wash_s=120.0,
    )

    # --- protocol phases per mismatch count --------------------------------
    result = runner.run(base)
    probe_names = result.column("probe")
    rows = []
    for probe_name in ("match-0mm", "mismatch-1mm", "mismatch-2mm", "mismatch-3mm"):
        sel = result.select(probe_names == probe_name)
        rows.append((probe_name,
                     f"{np.median(sel['occupancy_hyb']):.2e}",
                     f"{np.median(sel['occupancy_wash']):.2e}",
                     units.si_format(float(np.median(sel["sensor_current_a"])), "A")))
    print(render_table(
        ["probe", "theta after hyb", "theta after wash", "sensor current"],
        rows, title="Fig. 2 phases at 10 nM target (median over replicates)"))
    match = np.median(result.select(probe_names == "match-0mm")["sensor_current_a"])
    mm1 = np.median(result.select(probe_names == "mismatch-1mm")["sensor_current_a"])
    print(f"\nsingle-base discrimination after washing: {match / mm1:.0f}x\n")

    # --- dose response -----------------------------------------------------
    # A declarative sweep: same panel, same chip, six concentrations.
    # The Runner's caches mean the chip is built and calibrated once.
    concentrations = (10 * units.pM, 100 * units.pM, 1 * units.nM,
                      10 * units.nM, 100 * units.nM, 1 * units.uM)
    sweep = runner.run_batch([base.replace(concentration=c) for c in concentrations])
    rows = []
    for conc, point in zip(concentrations, sweep):
        sel = point.select(point.column("probe") == "match-0mm")
        i_match = float(np.median(sel["current_estimate_a"]))
        rows.append((
            f"{conc / units.nM:g} nM" if conc < 1 * units.uM else "1 uM",
            units.si_format(i_match, "A"),
            int(np.median(sel["count"])),
        ))
    print(render_table(["target concentration", "match current", "median count"],
                       rows, title="Dose response (chip-measured)"))
    stats = runner.stats
    print(f"\nchips built {stats.chips_built}, reused {stats.chips_reused} "
          f"across {stats.runs} runs — the sweep recycled one calibrated chip.")
    print("The current window spans the paper's 1 pA ... 100 nA sensor range.")


if __name__ == "__main__":
    main()
