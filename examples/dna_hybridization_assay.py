"""DNA hybridization assay in depth (Section 2, Fig. 2).

Designs a probe panel with *deliberate* mismatch variants (0, 1, 2, 3
substitutions against the same target), runs the immobilize ->
hybridize -> wash protocol, and shows:

  * occupancy through the protocol phases per mismatch count,
  * the post-wash match/mismatch discrimination the washing step buys,
  * a target-concentration dose-response from 10 pM to 1 uM, mapping
    chemistry onto the chip's 1 pA - 100 nA current window.

Run:  python examples/dna_hybridization_assay.py
"""

import numpy as np

from repro import (
    AssayProtocol,
    DnaMicroarrayChip,
    DnaSequence,
    MicroarrayAssay,
    Probe,
    ProbeLayout,
    Sample,
    Target,
)
from repro.core import render_table, units


def build_mismatch_panel(rng: np.random.Generator) -> tuple[ProbeLayout, Target]:
    """One target; probes with 0-3 mismatches against it, plus controls."""
    target_region = DnaSequence.random(20, rng)
    target = Target("reference-target", target_region, total_length=2000)
    perfect_probe_seq = target_region.reverse_complement()
    probes = [Probe("match-0mm", perfect_probe_seq)]
    for n_mm in (1, 2, 3):
        probes.append(Probe(f"mismatch-{n_mm}mm", perfect_probe_seq.with_mismatches(n_mm, rng)))
    layout = ProbeLayout.tiled(probes, rows=16, cols=8, replicates=28, control_every=16)
    return layout, target


def main() -> None:
    rng = np.random.default_rng(7)
    layout, target = build_mismatch_panel(rng)
    assay = MicroarrayAssay(layout)
    protocol = AssayProtocol(hybridization_s=3600.0, wash_s=120.0)

    # --- protocol phases per mismatch count --------------------------------
    sample = Sample({target: 1e-5})  # 10 nM
    result = assay.run(sample, protocol)
    rows = []
    for probe_name in ("match-0mm", "mismatch-1mm", "mismatch-2mm", "mismatch-3mm"):
        sites = [s for s in result.sites if s.probe_name == probe_name]
        theta_h = np.median([s.occupancy_after_hybridization for s in sites])
        theta_w = np.median([s.occupancy_after_wash for s in sites])
        current = np.median([s.sensor_current for s in sites])
        rows.append((probe_name, f"{theta_h:.2e}", f"{theta_w:.2e}",
                     units.si_format(current, "A")))
    print(render_table(
        ["probe", "theta after hyb", "theta after wash", "sensor current"],
        rows, title="Fig. 2 phases at 10 nM target (median over replicates)"))
    match_current = np.median([s.sensor_current for s in result.sites if s.probe_name == "match-0mm"])
    mm1_current = np.median([s.sensor_current for s in result.sites if s.probe_name == "mismatch-1mm"])
    print(f"\nsingle-base discrimination after washing: {match_current / mm1_current:.0f}x\n")

    # --- dose response -----------------------------------------------------
    chip = DnaMicroarrayChip(rng=11)
    chip.configure_bias(0.45, -0.25)
    chip.auto_calibrate(rng=12)
    rows = []
    for conc in (1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3):
        result = assay.run(Sample({target: conc}), protocol)
        counts = chip.measure_assay(result, frame_s=1.0, rng=13)
        estimates = chip.current_estimates(counts, frame_s=1.0)
        match_sites = [(s.row, s.col) for s in result.sites if s.probe_name == "match-0mm"]
        i_match = float(np.median([estimates[r, c] for r, c in match_sites]))
        rows.append((f"{conc * 1e6:g} nM" if conc < 1e-3 else "1 uM",
                     units.si_format(i_match, "A"),
                     int(np.median([counts[r, c] for r, c in match_sites]))))
    print(render_table(["target concentration", "match current", "median count"],
                       rows, title="Dose response (chip-measured)"))
    print("\nThe current window spans the paper's 1 pA ... 100 nA sensor range.")


if __name__ == "__main__":
    main()
