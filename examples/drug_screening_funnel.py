"""The drug-screening funnel (Fig. 1), with and without CMOS arrays.

Runs a 200k-compound library through the four stages — molecular
assays, cell-based assays, animal tests, clinical trials — as a *pair*
of ``ScreeningSpec`` experiments batched through the ``Runner``.  Specs
that differ only in ``cmos`` share both the generated library and the
per-stage decision stream, so the comparison is exactly paired.  Prints
Fig. 1's two series (datapoints/day falling, cost/datapoint rising)
plus the economic benefit of replacing the first two stages with the
paper's CMOS sensor-array platforms.

Run:  python examples/drug_screening_funnel.py
"""

from repro.core import render_kv, render_table
from repro.experiments import Runner, ScreeningSpec


def main() -> None:
    runner = Runner(seed=1)
    specs = {
        "cmos": ScreeningSpec(library_size=200_000, viable_rate=1e-4, cmos=True),
        "conventional": ScreeningSpec(library_size=200_000, viable_rate=1e-4, cmos=False),
    }
    results = dict(zip(specs, runner.run_batch(list(specs.values()))))

    any_result = next(iter(results.values()))
    print(f"library: {any_result.metrics['library_size']} compounds, "
          f"{any_result.metrics['library_viable']} truly viable "
          f"(generated once, shared by both funnels)\n")

    for label, result in results.items():
        rows = [
            (row["stage"], row["candidates_in"], row["candidates_out"],
             f"{row['datapoints_per_day']:g}", f"{row['cost_per_datapoint']:g}",
             f"{row['cost']:,.0f}", f"{row['days']:.1f}")
            for row in result.to_rows()
        ]
        print(render_table(
            ["stage", "in", "out", "datapoints/day", "cost/datapoint", "stage cost", "days"],
            rows, title=f"=== {label} funnel ==="))
        print(render_kv("", [
            ("cost/datapoint rises monotonically", result.metrics["monotone_cost_increase"]),
            ("datapoints/day falls monotonically", result.metrics["monotone_throughput_decrease"]),
            ("survivors (viable)",
             f"{result.metrics['survivors']} ({result.metrics['surviving_viable']})"),
            ("total cost", f"{result.metrics['total_cost']:,.0f}"),
            ("total days", f"{result.metrics['total_days']:.1f}"),
        ]))
        print()

    cmos, conv = results["cmos"], results["conventional"]
    early_cmos = float(cmos.column("cost")[:2].sum())
    early_conv = float(conv.column("cost")[:2].sum())
    days_cmos = float(cmos.column("days")[:2].sum())
    days_conv = float(conv.column("days")[:2].sum())
    print(render_kv("CMOS-array benefit in the early (high-volume) stages", [
        ("early-stage cost", f"{early_conv:,.0f} -> {early_cmos:,.0f} "
                             f"({early_conv / early_cmos:.0f}x cheaper)"),
        ("early-stage days", f"{days_conv:.1f} -> {days_cmos:.1f} "
                             f"({days_conv / days_cmos:.0f}x faster)"),
    ]))


if __name__ == "__main__":
    main()
