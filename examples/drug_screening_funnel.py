"""The drug-screening funnel (Fig. 1), with and without CMOS arrays.

Simulates a 200k-compound library flowing through the four stages —
molecular assays, cell-based assays, animal tests, clinical trials —
and prints Fig. 1's two series (datapoints/day falling, cost/datapoint
rising) plus the economic benefit of replacing the first two stages
with the paper's CMOS sensor-array platforms.

Run:  python examples/drug_screening_funnel.py
"""

from repro import CompoundLibrary, compare_cmos_vs_conventional
from repro.core import render_kv, render_table


def main() -> None:
    library = CompoundLibrary.generate(size=200_000, viable_rate=1e-4, rng=1)
    print(f"library: {library.size} compounds, {library.viable_count()} truly viable\n")

    results = compare_cmos_vs_conventional(library, rng=2)

    for label, result in results.items():
        rows = [
            (o.stage_name, o.candidates_in, o.candidates_out,
             f"{o.datapoints_per_day:g}", f"{o.cost_per_datapoint:g}",
             f"{o.cost:,.0f}", f"{o.days:.1f}")
            for o in result.outcomes
        ]
        print(render_table(
            ["stage", "in", "out", "datapoints/day", "cost/datapoint", "stage cost", "days"],
            rows, title=f"=== {label} funnel ==="))
        print(render_kv("", [
            ("cost/datapoint rises monotonically", result.monotone_cost_increase()),
            ("datapoints/day falls monotonically", result.monotone_throughput_decrease()),
            ("survivors (viable)", f"{result.survivors} ({result.surviving_viable})"),
            ("total cost", f"{result.total_cost:,.0f}"),
            ("total days", f"{result.total_days:.1f}"),
        ]))
        print()

    cmos, conv = results["cmos"], results["conventional"]
    early_cmos = sum(o.cost for o in cmos.outcomes[:2])
    early_conv = sum(o.cost for o in conv.outcomes[:2])
    days_cmos = sum(o.days for o in cmos.outcomes[:2])
    days_conv = sum(o.days for o in conv.outcomes[:2])
    print(render_kv("CMOS-array benefit in the early (high-volume) stages", [
        ("early-stage cost", f"{early_conv:,.0f} -> {early_cmos:,.0f} "
                             f"({early_conv / early_cmos:.0f}x cheaper)"),
        ("early-stage days", f"{days_conv:.1f} -> {days_cmos:.1f} "
                             f"({days_conv / days_cmos:.0f}x faster)"),
    ]))


if __name__ == "__main__":
    main()
