"""Seed digital-path coverage: frame corruption fuzz, scan order,
register-file semantics (the trace layer's substrate)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chip.registers import RegisterFile, RegisterSpec, dna_chip_registers
from repro.chip.sequencer import NEURO_SCAN, ScanTiming, SiteSequence
from repro.chip.serial_interface import (
    Command,
    Frame,
    FrameError,
    SerialLink,
    bytes_to_bits,
    encode_frame,
)

frames = st.builds(
    Frame,
    command=st.sampled_from(list(Command)),
    address=st.integers(min_value=0, max_value=0xFF),
    payload=st.binary(min_size=0, max_size=16),
)


class TestFrameCorruptionFuzz:
    @given(frame=frames, data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_any_single_flip_in_any_frame_is_caught(self, frame, data):
        """Checksum/structure checks leave no blind spot: one flipped
        bit anywhere in any well-formed frame must fail decode."""
        n_bits = len(bytes_to_bits(encode_frame(frame)))
        position = data.draw(st.integers(min_value=0, max_value=n_bits - 1))
        link = SerialLink()
        with pytest.raises(FrameError):
            link.transfer(frame, flip_bits=[position])

    @given(frame=frames)
    @settings(max_examples=60, deadline=None)
    def test_every_position_caught_exhaustively(self, frame):
        """Exhaustive sweep per sampled frame — each of the 8*(5+len)
        positions individually trips the decoder."""
        n_bits = len(bytes_to_bits(encode_frame(frame)))
        for position in range(n_bits):
            with pytest.raises(FrameError):
                SerialLink().transfer(frame, flip_bits=[position])

    @given(frame=frames)
    @settings(max_examples=60, deadline=None)
    def test_clean_transfer_round_trips(self, frame):
        assert SerialLink().transfer(frame) == frame


class TestPixelOrderCoverage:
    @pytest.mark.parametrize(
        "scan",
        [
            NEURO_SCAN,
            ScanTiming(rows=8, cols=8, channels=4, frame_rate_hz=1000.0),
            ScanTiming(rows=3, cols=6, channels=2, frame_rate_hz=100.0),
            ScanTiming(rows=1, cols=4, channels=4, frame_rate_hz=100.0),
        ],
        ids=["neuro-128x128", "8x8", "3x6", "1x4"],
    )
    def test_every_pixel_exactly_once(self, scan):
        order = scan.pixel_order()
        assert len(order) == scan.rows * scan.cols
        assert len(set(order)) == scan.rows * scan.cols
        assert set(order) == {
            (r, c) for r in range(scan.rows) for c in range(scan.cols)
        }

    def test_rows_are_sequential_and_slots_interleave_channels(self):
        scan = ScanTiming(rows=2, cols=8, channels=4, frame_rate_hz=100.0)
        order = scan.pixel_order()
        # Rows in order, no interleaving across rows.
        assert [r for r, _ in order] == [0] * 8 + [1] * 8
        # Within a row: slot 0 of all channels, then slot 1 (mux_depth=2).
        assert [c for _, c in order[:8]] == [0, 2, 4, 6, 1, 3, 5, 7]

    def test_sample_times_are_unique_per_channel_slot(self):
        scan = ScanTiming(rows=2, cols=8, channels=4, frame_rate_hz=100.0)
        # Channels sample in parallel: pixels sharing (row, slot) share a
        # time; distinct (row, slot) pairs never collide.
        times = {}
        for row, col in scan.pixel_order():
            times.setdefault(scan.sample_time_s(row, col), []).append((row, col))
        assert len(times) == scan.rows * scan.mux_depth
        assert all(len(group) == scan.channels for group in times.values())

    def test_sample_time_bounds(self):
        scan = ScanTiming(rows=2, cols=8, channels=4, frame_rate_hz=100.0)
        last = max(scan.sample_time_s(r, c) for r, c in scan.pixel_order())
        assert last < scan.frame_time_s
        with pytest.raises(IndexError):
            scan.sample_time_s(2, 0)
        with pytest.raises(IndexError):
            scan.sample_time_s(0, 8)


class TestSiteSequenceTiming:
    def test_site_slot_is_counter_shift_time(self):
        seq = SiteSequence()
        assert seq.site_slot_s == pytest.approx(24 / 1e6)

    def test_site_times_are_row_major(self):
        seq = SiteSequence(rows=4, cols=2)
        offsets = [seq.site_time_s(r, c) for r in range(4) for c in range(2)]
        assert offsets == sorted(offsets)
        assert offsets[0] == 0.0
        assert offsets[-1] == pytest.approx(7 * seq.site_slot_s)

    def test_site_time_bounds(self):
        seq = SiteSequence(rows=4, cols=2)
        with pytest.raises(IndexError):
            seq.site_time_s(4, 0)
        with pytest.raises(IndexError):
            seq.site_time_s(0, 2)


class TestRegisterFileSemantics:
    def test_reset_restores_every_register(self):
        regs = dna_chip_registers()
        regs.write("generator_dac", 99)
        regs.write("frame_exponent", 3)
        regs.hw_write("status", 0xFF)
        regs.reset()
        assert regs.dump() == {
            "generator_dac": 0,
            "collector_dac": 0,
            "frame_exponent": 8,
            "calibration_enable": 0,
            "reference_current_sel": 2,
            "status": 0,
            "chip_id": 0x2D,
        }

    def test_dump_is_a_snapshot_not_a_view(self):
        regs = dna_chip_registers()
        dump = regs.dump()
        dump["generator_dac"] = 123
        assert regs.read("generator_dac") == 0
        regs.write("generator_dac", 45)
        assert dump["generator_dac"] == 123  # old snapshot untouched

    def test_failed_write_leaves_value_unchanged(self):
        regs = dna_chip_registers()
        regs.write("generator_dac", 10)
        with pytest.raises(ValueError):
            regs.write("generator_dac", 256)  # out of 8-bit range
        assert regs.read("generator_dac") == 10

    def test_names_sorted(self):
        regs = RegisterFile([RegisterSpec("b", 0x00, 8), RegisterSpec("a", 0x01, 8)])
        assert regs.names() == ["a", "b"]

    def test_empty_file_rejected(self):
        with pytest.raises(ValueError):
            RegisterFile([])
