"""Switches, capacitors, mirrors, bandgap and DAC models."""

import numpy as np
import pytest

from repro.devices.bandgap import BandgapReference
from repro.devices.capacitor import Capacitor
from repro.devices.current_mirror import CurrentMirror, ReferenceCurrentFanout
from repro.devices.dac import ResistorStringDac
from repro.devices.source_follower import default_follower
from repro.devices.switches import MosSwitch


class TestMosSwitch:
    def test_on_resistance_increases_with_signal(self):
        sw = MosSwitch(1e-6, 0.5e-6)
        assert sw.on_resistance(2.0) > sw.on_resistance(0.5)

    def test_on_resistance_clamped_near_cutoff(self):
        sw = MosSwitch(1e-6, 0.5e-6)
        assert np.isfinite(sw.on_resistance(4.5))

    def test_channel_charge_scales_with_area(self):
        small = MosSwitch(1e-6, 0.5e-6)
        big = MosSwitch(2e-6, 1e-6)
        assert big.channel_charge(1.0) == pytest.approx(4 * small.channel_charge(1.0))

    def test_injection_step_negative(self):
        sw = MosSwitch(1e-6, 0.5e-6)
        assert sw.injection_step(1.0, 100e-15) < 0

    def test_injection_smaller_on_bigger_cap(self):
        sw = MosSwitch(1e-6, 0.5e-6)
        assert abs(sw.injection_step(1.0, 1e-12)) < abs(sw.injection_step(1.0, 100e-15))

    def test_injection_split_bounds(self):
        sw = MosSwitch(1e-6, 0.5e-6)
        with pytest.raises(ValueError):
            sw.injection_step(1.0, 1e-13, split=1.5)

    def test_clock_feedthrough_negative(self):
        sw = MosSwitch(1e-6, 0.5e-6)
        assert sw.clock_feedthrough(100e-15) < 0

    def test_droop_rate(self):
        sw = MosSwitch(1e-6, 0.5e-6)
        assert sw.droop_rate(100e-15) == pytest.approx(sw.off_leakage() / 100e-15)

    def test_settling_time_constant(self):
        sw = MosSwitch(1e-6, 0.5e-6)
        tau = sw.settling_time_constant(1.0, 1e-12)
        assert tau == pytest.approx(sw.on_resistance(1.0) * 1e-12)


class TestCapacitor:
    def test_charge_time_ideal(self):
        cap = Capacitor(100e-15)
        assert cap.charge_time(1e-9, 1.0) == pytest.approx(1e-4)

    def test_charge_time_with_leak_longer(self):
        ideal = Capacitor(100e-15)
        leaky = Capacitor(100e-15, leakage_conductance_s=1e-13)
        assert leaky.charge_time(1e-12, 1.0) > ideal.charge_time(1e-12, 1.0)

    def test_leak_limited_plateau_raises(self):
        leaky = Capacitor(100e-15, leakage_conductance_s=1e-12)
        # I/G = 0.5 V plateau < 1 V target.
        with pytest.raises(ValueError):
            leaky.charge_time(0.5e-12, 1.0)

    def test_droop(self):
        leaky = Capacitor(100e-15, leakage_conductance_s=1e-12)
        droop = leaky.droop(1.0, 1e-3)
        assert 0 < droop < 1.0

    def test_droop_zero_without_leak(self):
        assert Capacitor(100e-15).droop(1.0, 1.0) == 0.0

    def test_voltage_coefficient(self):
        cap = Capacitor(100e-15, voltage_coefficient=0.01)
        assert cap.effective_capacitance(1.0) == pytest.approx(101e-15)

    def test_invalid_capacitance(self):
        with pytest.raises(ValueError):
            Capacitor(0.0)


class TestCurrentMirror:
    def test_unity_gain_small_error(self):
        mirror = CurrentMirror.matched_pair(8e-6, 4e-6, rng=1)
        error = mirror.gain_error(1e-6)
        assert abs(error) < 0.1

    def test_gain_ratio(self):
        mirror = CurrentMirror.matched_pair(4e-6, 2e-6, gain=4.0, rng=2)
        assert mirror.nominal_gain == pytest.approx(4.0)
        assert mirror.transfer(1e-6) == pytest.approx(4e-6, rel=0.15)

    def test_larger_devices_match_better(self):
        errors_small, errors_big = [], []
        for seed in range(12):
            errors_small.append(abs(CurrentMirror.matched_pair(1e-6, 0.5e-6, rng=seed).gain_error(1e-6)))
            errors_big.append(abs(CurrentMirror.matched_pair(16e-6, 8e-6, rng=seed).gain_error(1e-6)))
        assert np.median(errors_big) < np.median(errors_small)

    def test_rejects_nonpositive_input(self):
        mirror = CurrentMirror.matched_pair(4e-6, 2e-6, rng=3)
        with pytest.raises(ValueError):
            mirror.transfer(0.0)

    def test_fanout_spread(self):
        fanout = ReferenceCurrentFanout.build(1e-6, count=16, rng=4)
        currents = fanout.branch_currents()
        assert len(currents) == 16
        assert fanout.spread() < 0.2
        assert np.mean(currents) == pytest.approx(1e-6, rel=0.1)

    def test_fanout_invalid(self):
        with pytest.raises(ValueError):
            ReferenceCurrentFanout.build(0.0, 4)


class TestSourceFollower:
    def test_gain_below_unity(self):
        follower = default_follower()
        assert 0.7 < follower.small_signal_gain() < 1.0

    def test_level_shift_positive(self):
        follower = default_follower()
        assert follower.level_shift() > 0.5  # above Vth

    def test_output_resistance(self):
        follower = default_follower()
        assert 100 < follower.output_resistance() < 1e6

    def test_output_for_input(self):
        follower = default_follower()
        assert follower.output_for_input(3.0) == pytest.approx(3.0 - follower.level_shift())


class TestBandgap:
    def test_nominal_voltage(self):
        bg = BandgapReference()
        assert bg.voltage(320.0) == pytest.approx(1.205)

    def test_curvature_peak(self):
        bg = BandgapReference()
        assert bg.voltage(320.0) > bg.voltage(273.0)
        assert bg.voltage(320.0) > bg.voltage(360.0)

    def test_tempco_reasonable(self):
        # First-order compensated bandgaps: tens of ppm/K.
        assert BandgapReference().tempco_ppm_per_k() < 100

    def test_sampled_parts_differ(self):
        a = BandgapReference.sample(rng=1)
        b = BandgapReference.sample(rng=2)
        assert a.voltage() != b.voltage()

    def test_trim_converges(self):
        bg = BandgapReference.sample(rng=3)
        bg.trim()
        assert abs(bg.voltage() - 1.205) < 0.002  # within one trim step

    def test_reference_current(self):
        bg = BandgapReference()
        assert bg.reference_current(1.2e6, 320.0) == pytest.approx(1.205 / 1.2e6)

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            BandgapReference().voltage(0.0)


class TestDac:
    def test_endpoints(self):
        dac = ResistorStringDac(bits=8, v_low=0.0, v_high=5.0, resistor_sigma=0.0)
        assert dac.output(0) == pytest.approx(0.0)
        assert dac.output(255) == pytest.approx(5.0 * 255 / 256, rel=1e-6)

    def test_monotonic(self):
        dac = ResistorStringDac.sample(rng=1, bits=8)
        outputs = [dac.output(code) for code in range(256)]
        assert all(b > a for a, b in zip(outputs, outputs[1:]))

    def test_code_for_voltage_roundtrip(self):
        dac = ResistorStringDac.sample(rng=2, bits=8, v_low=0.0, v_high=2.0)
        code = dac.code_for_voltage(0.45)
        assert abs(dac.output(code) - 0.45) < 2 * dac.lsb

    def test_inl_dnl_small_for_good_resistors(self):
        dac = ResistorStringDac.sample(rng=3, bits=8, resistor_sigma=0.001)
        assert dac.worst_inl() < 0.5
        assert dac.worst_dnl() < 0.1

    def test_inl_grows_with_sigma(self):
        good = ResistorStringDac.sample(rng=4, bits=8, resistor_sigma=0.001)
        bad = ResistorStringDac.sample(rng=4, bits=8, resistor_sigma=0.05)
        assert bad.worst_inl() > good.worst_inl()

    def test_out_of_range_code(self):
        dac = ResistorStringDac(bits=8)
        with pytest.raises(ValueError):
            dac.output(256)

    def test_out_of_range_voltage(self):
        dac = ResistorStringDac(bits=8, v_low=0.0, v_high=5.0)
        with pytest.raises(ValueError):
            dac.code_for_voltage(6.0)

    def test_ideal_string_zero_inl(self):
        dac = ResistorStringDac(bits=6, resistor_sigma=0.0)
        assert dac.worst_inl() == pytest.approx(0.0, abs=1e-9)
