"""VectorizedDnaChip vs DnaMicroarrayChip — the backend parity contract.

Paired construction must be bit-identical; deterministic host-side math
bit-identical; stochastic counting within the start-phase + jitter
budget documented in repro.engine.
"""

import numpy as np
import pytest

from repro.chip.dna_chip import ChipSpecs, DnaMicroarrayChip
from repro.core.rng import spawn_children
from repro.dna import MicroarrayAssay, ProbeLayout, Sample
from repro.engine import PixelArrayParams, VectorizedDnaChip, kernels


def count_budget(chip, currents, frame_s):
    """Documented cross-backend tolerance: 1 count of start-phase
    quantisation + the accumulated cycle jitter envelope."""
    sigma = kernels.count_noise_sigma(
        currents,
        frame_s,
        chip.params.cint_f,
        chip.params.swing_v,
        chip.params.leakage_a,
        chip.params.comparator_delay_s,
        chip.params.tau_delay_s,
        chip.params.noise_rms_v,
    )
    return 1 + np.ceil(8 * np.squeeze(sigma))


class TestPairedConstruction:
    def test_pixel_parameters_bitwise(self):
        obj = DnaMicroarrayChip(rng=42)
        vec = VectorizedDnaChip(rng=42)
        np.testing.assert_array_equal(
            vec.params.cint_f.reshape(-1), [p.adc.cint.capacitance_f for p in obj.pixels]
        )
        np.testing.assert_array_equal(
            vec.params.comparator_offset_v.reshape(-1),
            [p.adc.comparator.offset_v for p in obj.pixels],
        )
        np.testing.assert_array_equal(
            vec.params.leakage_a.reshape(-1), [p.adc.leakage_a for p in obj.pixels]
        )
        np.testing.assert_array_equal(
            vec.params.swing_v.reshape(-1), [p.adc.swing_v for p in obj.pixels]
        )

    def test_periphery_bitwise(self):
        obj = DnaMicroarrayChip(rng=43)
        vec = VectorizedDnaChip(rng=43)
        np.testing.assert_array_equal(
            vec.reference_trees[0].branch_currents(), obj.reference_tree.branch_currents()
        )
        assert vec.generator_dacs[0].code_for_voltage(0.45) == obj.generator_dac.code_for_voltage(0.45)
        assert vec.collector_dacs[0].code_for_voltage(-0.25) == obj.collector_dac.code_for_voltage(-0.25)

    def test_batch_pairs_with_spawned_object_chips(self):
        specs = ChipSpecs(rows=8, cols=4)
        root = 77
        vec = VectorizedDnaChip(specs, n_chips=3, rng=root)
        children = spawn_children(np.random.default_rng(root), 3)
        for index, child in enumerate(children):
            obj = DnaMicroarrayChip(specs, rng=child)
            np.testing.assert_array_equal(
                vec.params.cint_f[index].reshape(-1),
                [p.adc.cint.capacitance_f for p in obj.pixels],
            )
            np.testing.assert_array_equal(
                vec.reference_trees[index].branch_currents(),
                obj.reference_tree.branch_currents(),
            )

    def test_fast_mode_deterministic_with_spread(self):
        a = VectorizedDnaChip(ChipSpecs(rows=32, cols=32), rng=5, mismatch="fast")
        b = VectorizedDnaChip(ChipSpecs(rows=32, cols=32), rng=5, mismatch="fast")
        np.testing.assert_array_equal(a.params.cint_f, b.params.cint_f)
        rel = a.params.cint_relative_error
        assert 0.010 < rel.std() < 0.020  # sigma_cint_rel = 0.015
        assert np.all(a.params.leakage_a >= 0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            VectorizedDnaChip(n_chips=0)
        with pytest.raises(ValueError):
            VectorizedDnaChip(mismatch="psychic")
        with pytest.raises(ValueError):
            PixelArrayParams.draw(0, 8, rng=1)


class TestConfigurationAndCalibration:
    def test_bias_configuration_parity(self):
        obj = DnaMicroarrayChip(rng=5)
        vec = VectorizedDnaChip(rng=5)
        assert obj.configure_bias(0.45, -0.25) == vec.configure_bias(0.45, -0.25) is True
        # Collector above the redox potential: cycling impossible.
        assert obj.configure_bias(0.45, 0.45) == vec.configure_bias(0.45, 0.45) is False
        assert vec.registers.read("generator_dac") > 0

    def test_auto_calibrate_matches_within_quantisation(self):
        obj = DnaMicroarrayChip(rng=21)
        vec = VectorizedDnaChip(rng=21)
        obj.configure_bias(0.45, -0.25)
        vec.configure_bias(0.45, -0.25)
        corr_obj = obj.auto_calibrate(frame_s=0.05, rng=2)
        corr_vec = vec.auto_calibrate(frame_s=0.05, rng=2)
        assert corr_vec.shape == corr_obj.shape
        np.testing.assert_allclose(corr_vec, corr_obj, rtol=2e-3)

    def test_calibration_improves_estimates_vectorized(self):
        """The object-model acceptance test, replayed on the engine."""
        chip = VectorizedDnaChip(rng=21)
        chip.configure_bias(0.45, -0.25)
        currents = np.full((16, 8), 2e-9)
        est_raw = chip.current_estimates(chip.measure_currents(currents, 1.0, rng=1), 1.0)
        err_raw = np.abs(est_raw - 2e-9) / 2e-9
        chip.auto_calibrate(frame_s=0.1, rng=2)
        est_cal = chip.current_estimates(chip.measure_currents(currents, 1.0, rng=3), 1.0)
        err_cal = np.abs(est_cal - 2e-9) / 2e-9
        assert np.median(err_cal) < np.median(err_raw)
        assert np.median(err_cal) < 0.01


class TestMeasurement:
    def test_counts_within_documented_budget(self):
        obj = DnaMicroarrayChip(rng=42)
        vec = VectorizedDnaChip(rng=42)
        currents = np.logspace(-12, -7, 128).reshape(16, 8)
        counts_obj = obj.measure_currents(currents, frame_s=0.5, rng=7)
        counts_vec = vec.measure_currents(currents, frame_s=0.5, rng=7)
        budget = count_budget(vec, currents, 0.5)
        assert np.all(np.abs(counts_obj - counts_vec) <= budget)

    def test_counts_monotone_in_current(self):
        chip = VectorizedDnaChip(rng=22)
        lo = chip.measure_currents(np.full((16, 8), 1e-10), frame_s=0.5, rng=4)
        hi = chip.measure_currents(np.full((16, 8), 1e-9), frame_s=0.5, rng=5)
        assert np.all(hi > lo)

    def test_shape_validation(self):
        chip = VectorizedDnaChip(rng=1)
        with pytest.raises(ValueError):
            chip.measure_currents(np.zeros((4, 4)))
        layout = ProbeLayout.random_panel(4, rows=4, cols=4, rng=1)
        sample = Sample.for_probes(layout.probes(), 1e-6)
        assay = MicroarrayAssay(layout).run(sample)
        with pytest.raises(ValueError):
            chip.measure_assay(assay)
        with pytest.raises(ValueError):
            chip.current_estimates(np.zeros((4, 4)), 1.0)

    def test_batched_measurement_shapes(self):
        chip = VectorizedDnaChip(ChipSpecs(rows=8, cols=4), n_chips=3, rng=9, mismatch="fast")
        currents = np.full((8, 4), 1e-9)
        counts = chip.measure_currents(currents, frame_s=0.2, rng=1)
        assert counts.shape == (3, 8, 4)
        assert np.all(counts > 0)
        estimates = chip.current_estimates(counts, 0.2)
        assert estimates.shape == (3, 8, 4)
        # A single grid against the batch uses every chip's calibration.
        grid_estimates = chip.current_estimates(counts[0], 0.2)
        assert grid_estimates.shape == (3, 8, 4)
        np.testing.assert_array_equal(grid_estimates[0], estimates[0])
        # Chip instances differ (independent mismatch), so their counts do.
        assert not np.array_equal(counts[0], counts[1])

    def test_misbiased_chip_reads_background_only(self):
        chip = VectorizedDnaChip(rng=6)
        chip.configure_bias(0.45, 0.45)  # invalid bias
        counts = chip.measure_concentrations(np.full((16, 8), 1e-3), frame_s=1.0, rng=2)
        # Background (~0.5 pA) over 1 s: a handful of counts at most.
        assert counts.max() <= 10

    def test_arbitrary_geometry_128x128(self):
        chip = VectorizedDnaChip(ChipSpecs(rows=128, cols=128), rng=3, mismatch="fast")
        currents = np.logspace(-12, -7, 128 * 128).reshape(128, 128)
        counts = chip.measure_currents(currents, frame_s=0.05, rng=4)
        assert counts.shape == (128, 128)
        assert counts.max() > 0
        assert counts.dtype == np.int64


class TestHostSideParity:
    def test_current_estimates_bitwise_via_twin(self):
        obj = DnaMicroarrayChip(rng=30)
        obj.configure_bias(0.45, -0.25)
        obj.auto_calibrate(frame_s=0.05, rng=1)
        counts = obj.measure_currents(np.full((16, 8), 1e-9), frame_s=0.5, rng=2)
        twin = obj.vectorized()
        np.testing.assert_array_equal(
            twin.current_estimates(counts, 0.5), obj.current_estimates(counts, 0.5)
        )

    def test_current_estimates_truncate_fractional_counts(self):
        """Counts are whole pulses: float inputs truncate exactly as the
        seed-era per-pixel loop's int() did."""
        obj = DnaMicroarrayChip(rng=33)
        twin = obj.vectorized()
        fractional = np.full((16, 8), 3.7)
        whole = np.full((16, 8), 3.0)
        np.testing.assert_array_equal(
            obj.current_estimates(fractional, 0.1), obj.current_estimates(whole, 0.1)
        )
        np.testing.assert_array_equal(
            twin.current_estimates(fractional, 0.1), twin.current_estimates(whole, 0.1)
        )

    def test_twin_carries_state(self):
        obj = DnaMicroarrayChip(rng=31)
        obj.configure_bias(0.45, -0.25)
        obj.inject_dead_pixel(2, 5)
        obj.measure_currents(np.full((16, 8), 1e-9), frame_s=0.2, rng=3)
        twin = obj.vectorized()
        np.testing.assert_array_equal(twin.dead_pixel_map(), obj.dead_pixel_map())
        assert twin.read_counters_serial() == obj.read_counters_serial()

    def test_twin_never_mutates_source_chip(self):
        obj = DnaMicroarrayChip(rng=32)
        obj.configure_bias(0.45, -0.25)
        register_state = obj.registers.dump()
        transcript_length = len(obj.link.transcript)
        twin = obj.vectorized()
        twin.configure_bias(0.45, 0.45)  # invalid bias on the twin only
        assert obj.pixels[0].sensor.bias_ok  # source sensors untouched
        twin.configure_bias(0.45, -0.25)
        twin.auto_calibrate(frame_s=0.05, rng=1)
        twin.measure_currents(np.full((16, 8), 1e-9), frame_s=0.2, rng=2)
        twin.read_counters_serial()
        twin.inject_dead_pixel(0, 0)
        assert obj.registers.dump() == register_state
        assert len(obj.link.transcript) == transcript_length
        assert not obj.dead_pixel_map()[0, 0]
        assert obj.pixels[0].gain_correction == 1.0

    def test_serial_roundtrip_single_chip(self):
        chip = VectorizedDnaChip(rng=23)
        counts = chip.measure_currents(np.full((16, 8), 1e-9), frame_s=0.2, rng=6)
        host = chip.read_counters_serial()
        assert host == [int(c) for c in counts.reshape(-1)]
        assert len(host) == 128

    def test_serial_roundtrip_batch(self):
        chip = VectorizedDnaChip(ChipSpecs(rows=8, cols=4), n_chips=2, rng=24, mismatch="fast")
        counts = chip.measure_currents(np.full((8, 4), 1e-9), frame_s=0.2, rng=6)
        host = chip.read_counters_serial()
        assert isinstance(host, list) and len(host) == 2
        for index in range(2):
            assert host[index] == [int(c) for c in counts[index].reshape(-1)]

    def test_sub_byte_counter_width_raises_cleanly(self):
        from repro.chip.dna_chip import counter_chunk_bytes

        for bits in (4, 12):
            with pytest.raises(ValueError, match="byte multiple"):
                counter_chunk_bytes(bits)
        chip = VectorizedDnaChip(ChipSpecs(rows=2, cols=2, counter_bits=4), rng=1)
        with pytest.raises(ValueError, match="byte multiple"):
            chip.read_counters_serial()

    def test_counter_saturation_with_narrow_counter(self):
        specs = ChipSpecs(counter_bits=8)
        chip = VectorizedDnaChip(specs, rng=2)
        counts = chip.measure_currents(np.full((16, 8), 50e-9), frame_s=1.0, rng=3)
        assert counts.max() == 255
        # Saturated counts still cross the serial link intact.
        assert chip.read_counters_serial() == [int(c) for c in counts.reshape(-1)]
