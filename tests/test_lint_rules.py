"""Per-rule fixtures for the determinism linter.

Every rule gets three cases: a snippet that must fire it (positive), a
close sibling that must not (negative), and the positive snippet
silenced by a ``# repro: noqa`` pragma.  These are the linter's
regression contract — a rule that stops firing on its fixture has
silently stopped guarding the tree.
"""

import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    CATEGORIES,
    PARSE_ERROR_RULE,
    RULES,
    all_rules,
    lint_paths,
    lint_source,
    resolve_rules,
)


def findings_for(source, rule=None):
    source = textwrap.dedent(source)
    rules = resolve_rules([rule], None) if rule else None
    return lint_source(source, "fixture.py", rules=rules)


def rule_ids(source, rule=None):
    return [f.rule for f in findings_for(source, rule)]


# ----------------------------------------------------------------------
# Registry sanity
# ----------------------------------------------------------------------


def test_rule_registry_shape():
    rules = all_rules()
    assert len(rules) >= 12
    assert [r.id for r in rules] == sorted(r.id for r in rules)
    for rule in rules:
        assert rule.id[0] in CATEGORIES
        assert rule.summary and rule.rationale
    assert set(RULES) == {r.id for r in rules}


def test_resolve_rules_by_category_and_id():
    det = resolve_rules(["D"], None)
    assert {r.id for r in det} == {r.id for r in all_rules() if r.id[0] == "D"}
    only = resolve_rules(["D102", "C301"], None)
    assert {r.id for r in only} == {"D102", "C301"}
    without = resolve_rules(None, ["S"])
    assert all(r.id[0] != "S" for r in without)
    with pytest.raises(ValueError):
        resolve_rules(["Z999"], None)


# ----------------------------------------------------------------------
# D101 — global RNG
# ----------------------------------------------------------------------

D101_POSITIVE = """
    import numpy as np

    def draw():
        return np.random.normal(0.0, 1.0)
"""


def test_d101_fires_on_global_numpy_rng():
    assert "D101" in rule_ids(D101_POSITIVE)


def test_d101_fires_on_stdlib_random():
    src = """
        import random

        def draw():
            return random.random()
    """
    assert "D101" in rule_ids(src)


def test_d101_allows_generator_construction():
    src = """
        import numpy as np

        def make(seed):
            rng = np.random.default_rng(seed)
            return rng.normal(0.0, 1.0)
    """
    assert "D101" not in rule_ids(src)


def test_d101_noqa():
    src = """
        import numpy as np

        def draw():
            return np.random.normal(0.0, 1.0)  # repro: noqa D101
    """
    assert rule_ids(src) == []


# ----------------------------------------------------------------------
# D102 — wall clock
# ----------------------------------------------------------------------

D102_POSITIVE = """
    import time

    def stamp():
        return time.time()
"""


def test_d102_fires_on_wall_clock():
    assert "D102" in rule_ids(D102_POSITIVE)


def test_d102_fires_on_datetime_now():
    src = """
        import datetime

        def stamp():
            return datetime.datetime.now()
    """
    assert "D102" in rule_ids(src)


def test_d102_fires_on_default_factory_reference():
    # A bare reference (no call) still injects wall-clock at runtime.
    src = """
        import time
        from dataclasses import dataclass, field

        @dataclass
        class Job:
            submitted: float = field(default_factory=time.monotonic)
    """
    assert "D102" in rule_ids(src)


def test_d102_allow_wallclock_pragma():
    src = """
        import time

        def stamp():
            return time.perf_counter()  # repro: allow-wallclock
    """
    assert "D102" not in rule_ids(src)


def test_d102_negative_no_clock():
    src = """
        def stamp(clock):
            return clock()
    """
    assert "D102" not in rule_ids(src)


# ----------------------------------------------------------------------
# D103 — filesystem enumeration order
# ----------------------------------------------------------------------

D103_POSITIVE = """
    import os

    def names(root):
        out = []
        for name in os.listdir(root):
            out.append(name)
        return out
"""


def test_d103_fires_on_raw_listdir():
    assert "D103" in rule_ids(D103_POSITIVE)


def test_d103_fires_on_glob_method():
    src = """
        from pathlib import Path

        def entries(root):
            return [p.name for p in Path(root).glob("*.json")]
    """
    assert "D103" in rule_ids(src)


def test_d103_allows_sorted_consumption():
    src = """
        import os
        from pathlib import Path

        def names(root):
            count = len(os.listdir(root))
            return sorted(Path(root).glob("*.json")), count
    """
    assert "D103" not in rule_ids(src)


def test_d103_noqa():
    src = """
        import os

        def names(root):
            return list(os.listdir(root))  # repro: noqa D103
    """
    assert "D103" not in rule_ids(src)


# ----------------------------------------------------------------------
# D104 — set iteration order
# ----------------------------------------------------------------------

D104_POSITIVE = """
    def walk(pairs):
        for item in {p for p in pairs}:
            yield item
"""


def test_d104_fires_on_set_comprehension_loop():
    assert "D104" in rule_ids(D104_POSITIVE)


def test_d104_fires_on_set_literal_into_list():
    src = """
        def order():
            return list({3, 1, 2})
    """
    assert "D104" in rule_ids(src)


def test_d104_fires_via_local_name_dataflow():
    src = """
        def walk(pairs):
            seen = {p for p in pairs}
            for item in seen:
                yield item
    """
    assert "D104" in rule_ids(src)


def test_d104_allows_sorted_and_membership():
    src = """
        def walk(pairs, probe):
            seen = {p for p in pairs}
            ordered = sorted(seen)
            return ordered, probe in seen, len(seen)
    """
    assert "D104" not in rule_ids(src)


def test_d104_noqa():
    src = """
        def walk(pairs):
            for item in {p for p in pairs}:  # repro: noqa D104
                yield item
    """
    assert "D104" not in rule_ids(src)


# ----------------------------------------------------------------------
# D105 — id()
# ----------------------------------------------------------------------

D105_POSITIVE = """
    def key(obj):
        return id(obj)
"""


def test_d105_fires_on_id():
    assert "D105" in rule_ids(D105_POSITIVE)


def test_d105_negative_shadowed_name():
    src = """
        def key(record):
            return record.id
    """
    assert "D105" not in rule_ids(src)


def test_d105_noqa():
    src = """
        def key(obj):
            return id(obj)  # repro: noqa D105
    """
    assert "D105" not in rule_ids(src)


# ----------------------------------------------------------------------
# D106 — builtin hash()
# ----------------------------------------------------------------------

D106_POSITIVE = """
    def bucket(key):
        return hash(key) % 16
"""


def test_d106_fires_on_hash():
    assert "D106" in rule_ids(D106_POSITIVE)


def test_d106_allows_dunder_hash():
    src = """
        class Probe:
            def __init__(self, bases):
                self._bases = bases

            def __hash__(self):
                return hash(self._bases)
    """
    assert "D106" not in rule_ids(src)


def test_d106_noqa():
    src = """
        def bucket(key):
            return hash(key) % 16  # repro: noqa D106
    """
    assert "D106" not in rule_ids(src)


# ----------------------------------------------------------------------
# D107 — environment reads
# ----------------------------------------------------------------------

D107_POSITIVE = """
    import os

    def backend():
        return os.environ.get("REPRO_BACKEND", "vectorized")
"""


def test_d107_fires_on_environ():
    assert "D107" in rule_ids(D107_POSITIVE)


def test_d107_fires_on_getenv():
    src = """
        import os

        def backend():
            return os.getenv("REPRO_BACKEND")
    """
    assert "D107" in rule_ids(src)


def test_d107_allow_env_pragma():
    src = """
        import os

        def backend():
            return os.getenv("REPRO_BACKEND")  # repro: allow-env
    """
    assert "D107" not in rule_ids(src)


def test_d107_negative_plain_os_use():
    src = """
        import os

        def join(a, b):
            return os.path.join(a, b)
    """
    assert "D107" not in rule_ids(src)


# ----------------------------------------------------------------------
# D108 — fault modules must not construct RNGs
# ----------------------------------------------------------------------

D108_POSITIVE = """
    from numpy.random import default_rng

    def flips(seed):
        return default_rng(seed).integers(0, 64, size=2)
"""

D108_PATH = "src/repro/faults/injector.py"


def _faults_rule_ids(source, path=D108_PATH):
    return [f.rule for f in lint_source(textwrap.dedent(source), path)]


def test_d108_fires_on_default_rng_in_faults_module():
    assert "D108" in _faults_rule_ids(D108_POSITIVE)


def test_d108_fires_on_attribute_form():
    src = """
        import numpy as np

        def flips(seed):
            return np.random.Generator(np.random.PCG64(seed))
    """
    assert "D108" in _faults_rule_ids(src)


def test_d108_noqa_pragma():
    src = """
        from numpy.random import default_rng

        def flips(seed):
            return default_rng(seed).integers(0, 64, size=2)  # repro: noqa D108
    """
    assert "D108" not in _faults_rule_ids(src)


def test_d108_negative_outside_faults_path():
    assert "D108" not in _faults_rule_ids(
        D108_POSITIVE, path="src/repro/chip/readout.py"
    )


def test_d108_negative_consuming_a_passed_generator():
    src = """
        def flips(rng):
            return tuple(int(b) for b in rng.integers(0, 64, size=2))
    """
    assert "D108" not in _faults_rule_ids(src)


# ----------------------------------------------------------------------
# S201 — registered specs frozen
# ----------------------------------------------------------------------

S201_POSITIVE = """
    from dataclasses import dataclass

    from repro.experiments.specs import ExperimentSpec, register_experiment

    @register_experiment("fixture")
    @dataclass
    class LooseSpec(ExperimentSpec):
        gain: float = 1.0
"""


def test_s201_fires_on_unfrozen_registered_spec():
    assert "S201" in rule_ids(S201_POSITIVE)


def test_s201_fires_on_missing_dataclass():
    src = """
        from repro.experiments.specs import ExperimentSpec, register_experiment

        @register_experiment("fixture")
        class PlainSpec(ExperimentSpec):
            gain = 1.0
    """
    assert "S201" in rule_ids(src)


def test_s201_allows_frozen_spec():
    src = """
        from dataclasses import dataclass

        from repro.experiments.specs import ExperimentSpec, register_experiment

        @register_experiment("fixture")
        @dataclass(frozen=True)
        class TightSpec(ExperimentSpec):
            gain: float = 1.0
    """
    assert "S201" not in rule_ids(src)


def test_s201_noqa():
    src = """
        from dataclasses import dataclass

        from repro.experiments.specs import ExperimentSpec, register_experiment

        @register_experiment("fixture")
        @dataclass
        class LooseSpec(ExperimentSpec):  # repro: noqa S201
            gain: float = 1.0
    """
    assert "S201" not in rule_ids(src)


# ----------------------------------------------------------------------
# S202 — serializable field annotations
# ----------------------------------------------------------------------

S202_POSITIVE = """
    from dataclasses import dataclass

    from repro.experiments.specs import ExperimentSpec, register_experiment

    @register_experiment("fixture")
    @dataclass(frozen=True)
    class ArraySpec(ExperimentSpec):
        overrides: list = ()
"""


def test_s202_fires_on_mutable_annotation():
    assert "S202" in rule_ids(S202_POSITIVE)


def test_s202_allows_canonical_annotations():
    src = """
        from dataclasses import dataclass
        from typing import ClassVar, Literal, Optional

        from repro.experiments.specs import ExperimentSpec, register_experiment

        @register_experiment("fixture")
        @dataclass(frozen=True)
        class ArraySpec(ExperimentSpec):
            KIND: ClassVar[str] = "array"
            rows: int = 16
            gain: float = 1.0
            pattern: "str" = "logspan"
            mode: Literal["fast", "full"] = "fast"
            label: Optional[str] = None
            shape: tuple[int, int] = (4, 4)
            window: "float | None" = None
    """
    assert "S202" not in rule_ids(src)


def test_s202_noqa():
    src = """
        from dataclasses import dataclass

        from repro.experiments.specs import ExperimentSpec, register_experiment

        @register_experiment("fixture")
        @dataclass(frozen=True)
        class ArraySpec(ExperimentSpec):
            overrides: list = ()  # repro: noqa S202
    """
    assert "S202" not in rule_ids(src)


# ----------------------------------------------------------------------
# S203 — reachable content hash
# ----------------------------------------------------------------------

S203_POSITIVE = """
    from dataclasses import dataclass

    from repro.experiments.specs import register_experiment

    @register_experiment("fixture")
    @dataclass(frozen=True)
    class OrphanSpec:
        gain: float = 1.0
"""


def test_s203_fires_without_hash_base():
    assert "S203" in rule_ids(S203_POSITIVE)


def test_s203_allows_known_base():
    src = """
        from dataclasses import dataclass

        from repro.experiments.specs import ExperimentSpec, register_experiment

        @register_experiment("fixture")
        @dataclass(frozen=True)
        class ChildSpec(ExperimentSpec):
            gain: float = 1.0
    """
    assert "S203" not in rule_ids(src)


def test_s203_allows_own_method():
    src = """
        from dataclasses import dataclass

        from repro.experiments.specs import register_experiment

        @register_experiment("fixture")
        @dataclass(frozen=True)
        class SelfHashed:
            gain: float = 1.0

            def spec_hash(self):
                return "deadbeef"
    """
    assert "S203" not in rule_ids(src)


def test_s203_noqa():
    src = """
        from dataclasses import dataclass

        from repro.experiments.specs import register_experiment

        @register_experiment("fixture")
        @dataclass(frozen=True)
        class OrphanSpec:  # repro: noqa S203
            gain: float = 1.0
    """
    assert "S203" not in rule_ids(src)


# ----------------------------------------------------------------------
# S204 — immutable defaults
# ----------------------------------------------------------------------

S204_POSITIVE = """
    from dataclasses import dataclass, field

    from repro.experiments.specs import ExperimentSpec, register_experiment

    @register_experiment("fixture")
    @dataclass(frozen=True)
    class ListySpec(ExperimentSpec):
        names: tuple = field(default_factory=list)
"""


def test_s204_fires_on_mutable_factory():
    assert "S204" in rule_ids(S204_POSITIVE)


def test_s204_fires_on_mutable_literal():
    src = """
        from dataclasses import dataclass

        from repro.experiments.specs import ExperimentSpec, register_experiment

        @register_experiment("fixture")
        @dataclass(frozen=True)
        class ListySpec(ExperimentSpec):
            names: tuple = []
    """
    assert "S204" in rule_ids(src)


def test_s204_allows_immutable_defaults():
    src = """
        from dataclasses import dataclass

        from repro.experiments.specs import ExperimentSpec, register_experiment

        @register_experiment("fixture")
        @dataclass(frozen=True)
        class TupleSpec(ExperimentSpec):
            names: tuple = ()
            label: str = "chip"
    """
    assert "S204" not in rule_ids(src)


def test_s204_noqa():
    src = """
        from dataclasses import dataclass, field

        from repro.experiments.specs import ExperimentSpec, register_experiment

        @register_experiment("fixture")
        @dataclass(frozen=True)
        class ListySpec(ExperimentSpec):
            names: tuple = field(default_factory=list)  # repro: noqa S204
    """
    assert "S204" not in rule_ids(src)


# ----------------------------------------------------------------------
# C301 — lock discipline
# ----------------------------------------------------------------------

C301_POSITIVE = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self._count = 0

        def bump(self):
            with self._lock:
                self._count += 1

        def peek(self):
            return self._count
"""


def test_c301_fires_on_unguarded_read():
    assert "C301" in rule_ids(C301_POSITIVE)


def test_c301_allows_guarded_and_locked_helpers():
    src = """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0

            def bump(self):
                with self._lock:
                    self._bump_locked()

            def _bump_locked(self):
                self._count += 1

            def peek(self):
                with self._lock:
                    return self._count
    """
    assert "C301" not in rule_ids(src)


def test_c301_infers_mutating_method_calls():
    src = """
        import threading

        class Registry:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = []

            def add(self, item):
                with self._lock:
                    self._items.append(item)

            def snapshot(self):
                return list(self._items)
    """
    assert "C301" in rule_ids(src)


def test_c301_noqa():
    src = """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0

            def bump(self):
                with self._lock:
                    self._count += 1

            def peek(self):
                return self._count  # repro: noqa C301
    """
    assert "C301" not in rule_ids(src)


# ----------------------------------------------------------------------
# C302 — bare acquire/release
# ----------------------------------------------------------------------

C302_POSITIVE = """
    import threading

    class Worker:
        def __init__(self):
            self._lock = threading.Lock()

        def run(self):
            self._lock.acquire()
            try:
                pass
            finally:
                self._lock.release()
"""


def test_c302_fires_on_bare_acquire_release():
    ids = rule_ids(C302_POSITIVE)
    assert ids.count("C302") == 2


def test_c302_allows_with_statement():
    src = """
        import threading

        class Worker:
            def __init__(self):
                self._lock = threading.Lock()

            def run(self):
                with self._lock:
                    pass
    """
    assert "C302" not in rule_ids(src)


def test_c302_noqa():
    src = """
        import threading

        class Worker:
            def __init__(self):
                self._lock = threading.Lock()

            def run(self):
                self._lock.acquire()  # repro: noqa C302
                self._lock.release()  # repro: noqa C302
    """
    assert "C302" not in rule_ids(src)


# ----------------------------------------------------------------------
# Pragmas, parse errors, selection plumbing
# ----------------------------------------------------------------------


def test_bare_noqa_suppresses_everything():
    src = """
        import time

        def stamp(obj):
            return time.time(), id(obj)  # repro: noqa
    """
    assert rule_ids(src) == []


def test_noqa_for_other_rule_does_not_suppress():
    src = """
        def key(obj):
            return id(obj)  # repro: noqa D102
    """
    assert "D105" in rule_ids(src)


def test_parse_error_reports_p001():
    findings = lint_source("def broken(:\n", "fixture.py")
    assert [f.rule for f in findings] == [PARSE_ERROR_RULE]


def test_select_narrows_rules():
    src = """
        import time

        def stamp(obj):
            return time.time(), id(obj)
    """
    assert rule_ids(src, rule="D105") == ["D105"]


def test_findings_are_sorted_and_stable():
    src = """
        import time

        def b(obj):
            return id(obj)

        def a():
            return time.time()
    """
    findings = findings_for(src)
    assert findings == sorted(findings)
    rendered = [f.render() for f in findings]
    assert all(r.startswith("fixture.py:") for r in rendered)


# ----------------------------------------------------------------------
# The tree itself
# ----------------------------------------------------------------------


def test_lint_self_clean():
    import repro

    package_root = Path(repro.__file__).parent
    assert lint_paths([str(package_root)]) == []
