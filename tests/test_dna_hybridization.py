"""Langmuir hybridization and washing kinetics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dna.hybridization import DEFAULT_KINETICS, HybridizationKinetics, ProbeSiteState


class TestRates:
    def test_k_off_penalty_per_mismatch(self):
        kin = HybridizationKinetics(mismatch_penalty=10.0)
        assert kin.k_off(1) == pytest.approx(10 * kin.k_off(0))
        assert kin.k_off(3) == pytest.approx(1000 * kin.k_off(0))

    def test_k_off_rejects_negative(self):
        with pytest.raises(ValueError):
            DEFAULT_KINETICS.k_off(-1)

    def test_k_on_effective_slower_for_long_targets(self):
        kin = DEFAULT_KINETICS
        assert kin.k_on_effective(20, 2000) < kin.k_on_effective(20, 20)

    def test_k_on_effective_sqrt_scaling(self):
        kin = DEFAULT_KINETICS
        assert kin.k_on_effective(20, 2000) == pytest.approx(kin.k_on * 0.1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            HybridizationKinetics(k_on=0.0)
        with pytest.raises(ValueError):
            HybridizationKinetics(mismatch_penalty=0.5)


class TestEquilibrium:
    def test_occupancy_bounds(self):
        kin = DEFAULT_KINETICS
        for conc in (0.0, 1e-9, 1e-6, 1e-3, 1.0):
            theta = kin.equilibrium_occupancy(conc)
            assert 0.0 <= theta <= 1.0

    def test_monotone_in_concentration(self):
        kin = DEFAULT_KINETICS
        thetas = [kin.equilibrium_occupancy(c) for c in (1e-9, 1e-7, 1e-5, 1e-3)]
        assert all(b > a for a, b in zip(thetas, thetas[1:]))

    def test_mismatch_lowers_equilibrium(self):
        kin = DEFAULT_KINETICS
        assert kin.equilibrium_occupancy(1e-6, 1) < kin.equilibrium_occupancy(1e-6, 0)

    def test_saturation_at_high_concentration(self):
        assert DEFAULT_KINETICS.equilibrium_occupancy(10.0) > 0.99


class TestTimeCourse:
    def test_approaches_equilibrium(self):
        kin = DEFAULT_KINETICS
        theta_eq = kin.equilibrium_occupancy(1e-4)
        theta_long = kin.occupancy_after(1e6, 1e-4, target_length=20)
        assert theta_long == pytest.approx(theta_eq, rel=1e-3)

    def test_zero_time_keeps_initial(self):
        kin = DEFAULT_KINETICS
        assert kin.occupancy_after(0.0, 1e-6, initial=0.3) == pytest.approx(0.3)

    def test_monotone_in_time_from_zero(self):
        kin = DEFAULT_KINETICS
        thetas = [kin.occupancy_after(t, 1e-5) for t in (60, 600, 3600, 36000)]
        assert all(b >= a for a, b in zip(thetas, thetas[1:]))

    @given(
        duration=st.floats(min_value=0.0, max_value=1e5),
        conc=st.floats(min_value=0.0, max_value=1.0),
        mm=st.integers(min_value=0, max_value=5),
        initial=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_occupancy_always_in_unit_interval(self, duration, conc, mm, initial):
        theta = DEFAULT_KINETICS.occupancy_after(duration, conc, mm, initial)
        assert 0.0 <= theta <= 1.0

    def test_invalid_initial(self):
        with pytest.raises(ValueError):
            DEFAULT_KINETICS.occupancy_after(1.0, 1e-6, initial=1.5)


class TestWashing:
    def test_wash_only_decreases(self):
        kin = DEFAULT_KINETICS
        assert kin.occupancy_after_wash(120.0, 0, 0.8) < 0.8

    def test_mismatched_strips_faster(self):
        kin = DEFAULT_KINETICS
        match = kin.occupancy_after_wash(120.0, 0, 1.0)
        mm = kin.occupancy_after_wash(120.0, 1, 1.0)
        assert mm < match

    def test_zero_duration_no_change(self):
        assert DEFAULT_KINETICS.occupancy_after_wash(0.0, 0, 0.5) == pytest.approx(0.5)

    @given(
        wash=st.floats(min_value=0.0, max_value=1e4),
        mm=st.integers(min_value=0, max_value=4),
        initial=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_wash_result_in_unit_interval(self, wash, mm, initial):
        theta = DEFAULT_KINETICS.occupancy_after_wash(wash, mm, initial)
        assert 0.0 <= theta <= initial + 1e-12


class TestDiscrimination:
    def test_single_mismatch_discrimination_large(self):
        # The Fig. 2 claim: washing separates match from mismatch.
        ratio = DEFAULT_KINETICS.discrimination_ratio(3600, 120, 1e-6, 1)
        assert ratio > 10

    def test_more_mismatches_more_discrimination(self):
        kin = DEFAULT_KINETICS
        r1 = kin.discrimination_ratio(3600, 120, 1e-6, 1)
        r2 = kin.discrimination_ratio(3600, 120, 1e-6, 2)
        assert r2 > r1

    def test_longer_wash_more_discrimination(self):
        kin = DEFAULT_KINETICS
        assert (kin.discrimination_ratio(3600, 300, 1e-6, 1)
                > kin.discrimination_ratio(3600, 30, 1e-6, 1))


class TestSiteState:
    def test_retained_fraction(self):
        state = ProbeSiteState(0.5, 0.4, 0)
        assert state.retained_fraction() == pytest.approx(0.8)

    def test_retained_fraction_zero_hyb(self):
        assert ProbeSiteState(0.0, 0.0, 0).retained_fraction() == 0.0
