"""Waveform/table/bit-dump rendering: pure functions of the trace."""

import pytest

from repro.chip.serial_interface import Command, Frame, SerialLink
from repro.trace import (
    HOST_TO_CHIP,
    TraceRecorder,
    TraceTable,
    render_events,
    render_frame_bits,
    render_html,
    render_waveform,
    signal_steps,
)
from repro.trace.render import HIGH, LOW, _bus_lane, _tick_lane


def _recorder_with_frame(flip_bits=None):
    rec = TraceRecorder()
    link = SerialLink(recorder=rec)
    frame = Frame(Command.WRITE_REG, 0x00, payload=bytes([58]))
    try:
        link.transfer(frame, flip_bits=flip_bits)
    except Exception:
        pass  # corrupt frames are still recorded
    return rec


class TestSignalSteps:
    def test_register_channel_steps_on_writes(self):
        rec = TraceRecorder()
        rec.reg_write("generator_dac", 0x00, 58, 0)
        rec.advance(1e-3)
        rec.reg_write("generator_dac", 0x00, 100, 58)
        steps = signal_steps(rec.trace(), "reg.generator_dac")
        assert steps == [(0.0, 58), (1e-3, 100)]

    def test_reset_fans_out_to_register_channels(self):
        rec = TraceRecorder()
        rec.reg_write("generator_dac", 0x00, 58, 0)
        rec.advance(1e-3)
        rec.reg_reset({"generator_dac": 0, "collector_dac": 0})
        steps = signal_steps(rec.trace(), "reg.generator_dac")
        assert steps == [(0.0, 58), (1e-3, 0)]
        # A register not in the reset payload is untouched.
        assert signal_steps(rec.trace(), "reg.frame_exponent") == []

    def test_serial_channel_expands_bits_over_duration(self):
        rec = _recorder_with_frame()
        trace = rec.trace()
        steps = signal_steps(trace, "serial.din")
        event = trace[0]
        n_bits = len(event.data["received_bits"])
        # One step per bit, then a None idle step at frame end.
        assert len(steps) == n_bits + 1
        assert steps[-1] == (pytest.approx(event.data["duration_s"]), None)
        assert [v for _, v in steps[:8]] == [1, 0, 1, 0, 0, 1, 0, 1]  # SOF 0xA5

    def test_state_channel_steps_on_entries(self):
        rec = TraceRecorder()
        rec.seq_state("calibrate")
        rec.advance(0.5)
        rec.seq_state("measure")
        assert signal_steps(rec.trace(), "seq.state") == [
            (0.0, "calibrate"), (0.5, "measure"),
        ]


class TestWaveform:
    def test_empty_trace(self):
        assert render_waveform(TraceTable([])) == "(empty trace)"

    def test_width_validated(self):
        rec = TraceRecorder()
        rec.seq_state("x")
        with pytest.raises(ValueError):
            render_waveform(rec.trace(), width=4)

    def test_binary_lane_uses_level_glyphs(self):
        rec = TraceRecorder()
        rec.reg_write("calibration_enable", 0x03, 1, 0)
        rec.advance(1.0)
        rec.reg_write("calibration_enable", 0x03, 0, 1)
        rec.advance(1.0)
        text = render_waveform(rec.trace(), width=10, stop_s=2.0)
        lane = next(line for line in text.splitlines() if "calibration_enable" in line)
        assert HIGH in lane and LOW in lane

    def test_bus_lane_labels_values(self):
        rec = TraceRecorder()
        rec.reg_write("generator_dac", 0x00, 58, 0)
        rec.advance(1.0)
        rec.reg_write("generator_dac", 0x00, 100, 58)
        rec.advance(1.0)
        text = render_waveform(rec.trace(), width=20, stop_s=2.0)
        lane = next(line for line in text.splitlines() if "generator_dac" in line)
        assert "|58" in lane and "|100" in lane

    def test_flip_lane_appears_only_with_corruption(self):
        clean = render_waveform(_recorder_with_frame().trace(), width=24)
        corrupt = render_waveform(_recorder_with_frame(flip_bits=[13]).trace(), width=24)
        assert "serial.flip" not in clean
        assert "serial.flip" in corrupt
        flip_lane = next(
            line for line in corrupt.splitlines() if line.startswith("serial.flip")
        )
        assert "x" in flip_lane

    def test_explicit_channels_select_lanes(self):
        rec = TraceRecorder()
        rec.reg_write("generator_dac", 0x00, 58, 0)
        rec.seq_state("measure")
        rec.advance(1.0)
        text = render_waveform(rec.trace(), channels=["seq.state"], width=12)
        assert "seq.state" in text and "generator_dac" not in text

    def test_deterministic(self):
        rec = _recorder_with_frame(flip_bits=[7, 13])
        trace = rec.trace()
        assert render_waveform(trace, width=40) == render_waveform(trace, width=40)

    def test_tick_on_window_end_edge_is_kept(self):
        # A tick exactly at t0 + width*dt must clamp into the last cell.
        lane = _tick_lane([1.0], t0=0.0, dt=0.1, width=10, mark="|")
        assert lane[-1] == "|"

    def test_bus_lane_idle_gap(self):
        steps = [(0.0, 5), (0.4, None), (0.8, 5)]
        lane = _bus_lane(steps, t0=0.0, dt=0.1, width=12)
        assert " " in lane  # idle gap rendered


class TestEventTable:
    def test_lists_events_with_columns(self):
        rec = _recorder_with_frame()
        text = render_events(rec.trace())
        assert "seq" in text and "kind" in text and "serial.din" in text
        assert "WRITE_REG" in text

    def test_limit_clips_with_notice(self):
        rec = TraceRecorder()
        for i in range(5):
            rec.seq_state(f"s{i}")
        text = render_events(rec.trace(), limit=2)
        assert "... 3 more events" in text
        assert "s4" not in text

    def test_drop_count_surfaces(self):
        rec = TraceRecorder(limit=1)
        rec.seq_state("a")
        rec.seq_state("b")
        assert "dropped" in render_events(rec.trace())


class TestHtml:
    def test_escapes_and_structure(self):
        rec = TraceRecorder()
        rec.seq_state("a<b")
        html = render_html(rec.trace())
        assert "<table" in html and "a&lt;b" in html

    def test_corrupt_frame_highlighted(self):
        rec = _recorder_with_frame(flip_bits=[13])
        html = render_html(rec.trace())
        assert "background:#fdd" in html
        clean = render_html(_recorder_with_frame().trace())
        assert "background:#fdd" not in clean


class TestFrameBits:
    def test_localizes_every_flip(self):
        rec = _recorder_with_frame(flip_bits=[13, 42])
        event = rec.trace()[0]
        text = render_frame_bits(event)
        assert "CORRUPT" in text
        # Both sides shown, carets under the flipped positions only.
        assert "sent" in text and "received" in text
        assert text.count("^") == 2
        sent = event.data["sent_bits"]
        received = event.data["received_bits"]
        assert [i for i, (s, r) in enumerate(zip(sent, received)) if s != r] == [13, 42]

    def test_clean_frame_has_no_marks(self):
        rec = _recorder_with_frame()
        text = render_frame_bits(rec.trace()[0])
        assert "^" not in text and " ok" in text

    def test_rejects_non_frame_events(self):
        rec = TraceRecorder()
        event = rec.seq_state("measure")
        with pytest.raises(ValueError):
            render_frame_bits(event)

    def test_rejects_bitless_frames(self):
        rec = TraceRecorder(bit_level=False)
        event = rec.serial_frame(HOST_TO_CHIP, "WRITE_REG", 0, 1, b"\x00", b"\x00")
        with pytest.raises(ValueError, match="bit_level"):
            render_frame_bits(event)
