"""Pelgrom mismatch sampling and spread reporting."""

import numpy as np
import pytest

from repro.core.mismatch import MismatchSampler, spread_report
from repro.core.process import C5_PROCESS


class TestProcessSigmas:
    def test_sigma_vth_pelgrom_scaling(self):
        # Quadrupling the area halves sigma.
        s1 = C5_PROCESS.sigma_vth(1e-6, 1e-6)
        s2 = C5_PROCESS.sigma_vth(2e-6, 2e-6)
        assert s1 == pytest.approx(2 * s2)

    def test_sigma_vth_magnitude(self):
        # 10 mV*um coefficient -> 10 mV for a 1 um^2 device.
        assert C5_PROCESS.sigma_vth(1e-6, 1e-6) == pytest.approx(10e-3, rel=1e-6)

    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ValueError):
            C5_PROCESS.sigma_vth(0.0, 1e-6)


class TestSampler:
    def test_draw_statistics(self):
        sampler = MismatchSampler(C5_PROCESS, 2e-6, 1e-6)
        dvth, dbeta = sampler.draw_arrays(20000, rng=1)
        assert np.std(dvth) == pytest.approx(sampler.sigma_vth, rel=0.05)
        assert np.std(dbeta) == pytest.approx(sampler.sigma_beta, rel=0.05)
        assert abs(np.mean(dvth)) < 0.2 * sampler.sigma_vth

    def test_draw_many_count(self):
        sampler = MismatchSampler(C5_PROCESS, 2e-6, 1e-6)
        samples = sampler.draw_many(7, rng=2)
        assert len(samples) == 7

    def test_draw_single(self):
        sampler = MismatchSampler(C5_PROCESS, 2e-6, 1e-6)
        sample = sampler.draw(rng=3)
        assert abs(sample.delta_vth) < 6 * sampler.sigma_vth

    def test_correlation_honoured(self):
        sampler = MismatchSampler(C5_PROCESS, 2e-6, 1e-6, correlation=0.9)
        dvth, dbeta = sampler.draw_arrays(20000, rng=4)
        rho = np.corrcoef(dvth, dbeta)[0, 1]
        assert rho == pytest.approx(0.9, abs=0.03)

    def test_invalid_correlation(self):
        with pytest.raises(ValueError):
            MismatchSampler(C5_PROCESS, 1e-6, 1e-6, correlation=1.5)

    def test_negative_count(self):
        sampler = MismatchSampler(C5_PROCESS, 1e-6, 1e-6)
        with pytest.raises(ValueError):
            sampler.draw_many(-1)

    def test_reproducible_with_seed(self):
        sampler = MismatchSampler(C5_PROCESS, 2e-6, 1e-6)
        a = sampler.draw_arrays(10, rng=5)
        b = sampler.draw_arrays(10, rng=5)
        assert np.array_equal(a[0], b[0])


class TestSpreadReport:
    def test_basic_stats(self):
        report = spread_report(np.array([1.0, 2.0, 3.0]))
        assert report["mean"] == pytest.approx(2.0)
        assert report["min"] == 1.0
        assert report["max"] == 3.0

    def test_relative_sigma(self):
        report = spread_report(np.array([9.0, 11.0]))
        assert report["relative_sigma"] == pytest.approx(0.1)

    def test_zero_mean_relative_sigma_inf(self):
        report = spread_report(np.array([-1.0, 1.0]))
        assert report["relative_sigma"] == float("inf")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            spread_report(np.array([]))
