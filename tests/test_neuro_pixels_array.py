"""The calibrated neural pixel (M1/M2/S1) and the vectorised array."""

import numpy as np
import pytest

from repro.core.signals import Trace
from repro.neuro.array import NeuralArrayModel, RecordedMovie
from repro.neuro.culture import ArrayGeometry, Culture
from repro.neuro.sensor_pixel import (
    NeuralPixelDesign,
    NeuralSensorPixel,
    ekv_ids_array,
    ekv_vgs_for_current_array,
)


class TestSinglePixel:
    def test_calibration_stores_voltage(self):
        pixel = NeuralSensorPixel(rng=1)
        stored = pixel.calibrate()
        assert 0.5 < stored < 3.0

    def test_readout_before_calibration_raises(self):
        pixel = NeuralSensorPixel(rng=2)
        with pytest.raises(RuntimeError):
            pixel.readout_current()

    def test_calibration_cancels_mismatch(self):
        offsets_cal, offsets_unc = [], []
        for seed in range(10):
            pixel = NeuralSensorPixel(rng=seed)
            unc = pixel.uncalibrated_current() - pixel.i_m2
            pixel.calibrate()
            offsets_unc.append(abs(unc))
            offsets_cal.append(abs(pixel.offset_current()))
        assert np.median(offsets_cal) < 0.2 * np.median(offsets_unc)

    def test_perfect_calibration_zero_offset(self):
        pixel = NeuralSensorPixel(rng=3)
        pixel.calibrate(include_imperfections=False)
        assert abs(pixel.input_referred_offset()) < 1e-4

    def test_signal_produces_difference_current(self):
        pixel = NeuralSensorPixel(rng=4)
        pixel.calibrate(include_imperfections=False)
        di = pixel.difference_current(1e-3) - pixel.difference_current(0.0)
        gm_eff = pixel.transconductance()
        assert di == pytest.approx(gm_eff * 1e-3, rel=0.05)

    def test_transconductance_positive(self):
        pixel = NeuralSensorPixel(rng=5)
        pixel.calibrate()
        assert pixel.transconductance() > 1e-6

    def test_droop_moves_offset(self):
        pixel = NeuralSensorPixel(rng=6)
        pixel.calibrate(include_imperfections=False)
        before = pixel.offset_current()
        pixel.droop(3600.0)  # an hour without recalibration
        after = pixel.offset_current()
        assert after != before

    def test_droop_requires_calibration(self):
        with pytest.raises(RuntimeError):
            NeuralSensorPixel(rng=7).droop(1.0)

    def test_design_validation(self):
        with pytest.raises(ValueError):
            NeuralPixelDesign(coupling_factor=0.0)
        with pytest.raises(ValueError):
            NeuralPixelDesign(calibration_current=-1.0)


class TestVectorisedEkv:
    def test_matches_object_model(self):
        from repro.core.process import C5_PROCESS
        from repro.devices.mosfet import Mosfet

        device = Mosfet(2e-6, 1e-6)
        beta = np.array([C5_PROCESS.mu_n_cox * 2.0])
        vth = np.array([C5_PROCESS.vth_n])
        for target in (1e-9, 1e-7, 1e-5):
            v_vec = ekv_vgs_for_current_array(np.array([target]), vth, beta, C5_PROCESS)[0]
            v_obj = device.vgs_for_current(target, vds=2.5)
            assert v_vec == pytest.approx(v_obj, abs=0.02)

    def test_ids_inverse_consistency(self):
        from repro.core.process import C5_PROCESS

        vth = np.full(100, C5_PROCESS.vth_n) + np.random.default_rng(1).normal(0, 0.01, 100)
        beta = np.full(100, C5_PROCESS.mu_n_cox * 2.0)
        targets = np.full(100, 5e-6)
        vgs = ekv_vgs_for_current_array(targets, vth, beta, C5_PROCESS)
        currents = ekv_ids_array(vgs, vth, beta, C5_PROCESS)
        assert np.allclose(currents, targets, rtol=1e-9)


class TestArrayModel:
    def test_calibration_reduces_spread(self, small_array):
        unc = small_array.uncalibrated_offset_currents()
        cal = small_array.offset_currents()
        assert np.std(cal) < 0.5 * np.std(unc)

    def test_input_referred_spread_below_signal_max(self, small_array):
        # Residual offsets must sit below the 5 mV maximum signal.
        sigma = np.std(small_array.input_referred_offsets())
        assert sigma < 5e-3

    def test_uncalibrated_spread_above_signal_min(self, small_array):
        # Uncalibrated spread dwarfs the 100 uV minimum signal — the
        # reason the calibration scheme exists.
        sigma = np.std(small_array.uncalibrated_offset_currents() / small_array.transconductance_plane())
        assert sigma > 100e-6 * 10

    def test_perfect_calibration_tiny_offsets(self):
        array = NeuralArrayModel(ArrayGeometry(8, 8, 7.8e-6), rng=1)
        array.calibrate(include_imperfections=False)
        assert np.max(np.abs(array.input_referred_offsets())) < 1e-6

    def test_pixel_currents_respond_to_signal(self, small_array):
        baseline = small_array.pixel_currents(0.0)
        driven = small_array.pixel_currents(1e-3)
        assert np.all(driven > baseline)

    def test_droop_shifts_stored_plane(self):
        array = NeuralArrayModel(ArrayGeometry(8, 8, 7.8e-6), rng=2)
        array.calibrate()
        before = array.stored_vgs.copy()
        array.droop(100.0)
        assert np.all(array.stored_vgs <= before)

    def test_uncalibrated_access_guarded(self):
        array = NeuralArrayModel(ArrayGeometry(8, 8, 7.8e-6), rng=3)
        with pytest.raises(RuntimeError):
            array.pixel_currents(0.0)

    def test_transconductance_plane_positive(self, small_array):
        assert np.all(small_array.transconductance_plane() > 0)


class TestRecording:
    def test_record_places_signal_on_covered_pixels(self):
        geometry = ArrayGeometry(16, 16, 7.8e-6)
        array = NeuralArrayModel(geometry, rng=4)
        array.calibrate()
        culture = Culture.random(1, geometry, diameter_range=(40e-6, 40e-6), rng=5)
        vj = Trace(1e-3 * np.ones(1000), dt=1e-4)
        movie = array.record(culture, {0: vj}, n_frames=50, frame_rate_hz=2000.0)
        neuron = culture.neurons[0]
        covered = culture.pixels_for_neuron(neuron)
        assert covered
        row, col = covered[0]
        assert movie.frames[10, row, col] == pytest.approx(1e-3, rel=0.01)
        # A far corner pixel sees nothing.
        far = (0, 0) if (0, 0) not in covered else (15, 15)
        assert abs(movie.frames[10, far[0], far[1]]) < 1e-9

    def test_noise_added_when_requested(self):
        geometry = ArrayGeometry(8, 8, 7.8e-6)
        array = NeuralArrayModel(geometry, rng=6)
        array.calibrate()
        culture = Culture.random(0, geometry, rng=7)
        movie = array.record(culture, {}, n_frames=100, frame_rate_hz=2000.0,
                             noise_rms_v=50e-6, rng=8)
        assert movie.frames.std() == pytest.approx(50e-6, rel=0.1)

    def test_movie_pixel_trace(self):
        movie = RecordedMovie(frames=np.zeros((10, 4, 4)), frame_rate_hz=2000.0)
        trace = movie.pixel_trace(1, 1)
        assert trace.n == 10
        assert trace.dt == pytest.approx(1 / 2000.0)

    def test_movie_validation(self):
        with pytest.raises(ValueError):
            RecordedMovie(frames=np.zeros((10, 4)), frame_rate_hz=2000.0)
        movie = RecordedMovie(frames=np.zeros((10, 4, 4)), frame_rate_hz=2000.0)
        with pytest.raises(IndexError):
            movie.pixel_trace(9, 9)

    def test_record_validation(self):
        geometry = ArrayGeometry(8, 8, 7.8e-6)
        array = NeuralArrayModel(geometry, rng=9)
        array.calibrate()
        culture = Culture.random(0, geometry, rng=10)
        with pytest.raises(ValueError):
            array.record(culture, {}, n_frames=0)
