"""The seeded, vectorized bootstrap engine."""

import numpy as np
import pytest

from repro.inference import bootstrap_ci, normal_ppf, resample_statistics
from repro.inference.bootstrap import MAX_BLOCK_ELEMENTS, bootstrap_generator


@pytest.fixture(scope="module")
def sample():
    return np.random.default_rng(7).normal(loc=5.0, scale=2.0, size=400)


class TestResampleStatistics:
    def test_deterministic(self, sample):
        a = resample_statistics(sample, "mean", n_resamples=200, seed=3)
        b = resample_statistics(sample, "mean", n_resamples=200, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_seed_and_label_vary_the_stream(self, sample):
        base = resample_statistics(sample, "mean", n_resamples=50, seed=3)
        other_seed = resample_statistics(sample, "mean", n_resamples=50, seed=4)
        other_label = resample_statistics(sample, "mean", n_resamples=50, seed=3, label=("x",))
        assert not np.array_equal(base, other_seed)
        assert not np.array_equal(base, other_label)

    def test_loop_engine_bit_identical(self, sample):
        """The Python-loop baseline must replay the exact same index
        stream — the property the benchmark speedup claim rests on."""
        fast = resample_statistics(sample, "median", n_resamples=100, seed=1)
        slow = resample_statistics(sample, "median", n_resamples=100, seed=1, engine="loop")
        np.testing.assert_array_equal(fast, slow)

    def test_chunking_preserves_the_stream(self, sample, monkeypatch):
        whole = resample_statistics(sample, "mean", n_resamples=64, seed=5)
        monkeypatch.setattr(
            "repro.inference.bootstrap.MAX_BLOCK_ELEMENTS", 5 * len(sample)
        )
        chunked = resample_statistics(sample, "mean", n_resamples=64, seed=5)
        np.testing.assert_array_equal(whole, chunked)
        assert MAX_BLOCK_ELEMENTS > 5 * len(sample)  # the patch actually forced chunks

    def test_callable_without_axis_falls_back(self, sample):
        def iqr(values):
            return float(np.percentile(values, 75) - np.percentile(values, 25))

        def iqr_axis(values, axis=None):
            return np.percentile(values, 75, axis=axis) - np.percentile(values, 25, axis=axis)

        # The statistic's __name__ keys the seed path: align them so
        # both variants draw the same resamples.
        iqr_axis.__name__ = "iqr"
        loop_free = resample_statistics(sample, iqr, n_resamples=30, seed=2)
        vectorized = resample_statistics(sample, iqr_axis, n_resamples=30, seed=2)
        np.testing.assert_allclose(loop_free, vectorized)
        # Both engines must accept the axis-free callable too.
        looped = resample_statistics(sample, iqr, n_resamples=30, seed=2, engine="loop")
        np.testing.assert_array_equal(looped, loop_free)

    def test_distribution_centres_on_estimate(self, sample):
        stats = resample_statistics(sample, "mean", n_resamples=2000, seed=0)
        assert abs(stats.mean() - sample.mean()) < 0.1

    def test_errors(self, sample):
        with pytest.raises(ValueError, match="empty"):
            resample_statistics([], "mean")
        with pytest.raises(ValueError, match="n_resamples"):
            resample_statistics(sample, "mean", n_resamples=0)
        with pytest.raises(ValueError, match="statistic"):
            resample_statistics(sample, "mode")
        with pytest.raises(ValueError, match="engine"):
            resample_statistics(sample, "mean", engine="gpu")

    def test_vector_valued_statistic_rejected(self, sample):
        with pytest.raises(ValueError, match="scalar"):
            resample_statistics(sample, lambda a, axis=None: a, n_resamples=4)


class TestBootstrapCI:
    def test_brackets_the_sample_mean(self, sample):
        ci = bootstrap_ci(sample, "mean", n_resamples=2000, seed=0)
        assert ci.low < sample.mean() < ci.high
        assert abs(ci.estimate - 5.0) < 4 * ci.se  # true mean within reach
        assert ci.low < ci.estimate < ci.high
        assert ci.se > 0
        assert ci.statistic == "mean" and ci.n == len(sample)

    def test_deterministic_dataclass(self, sample):
        a = bootstrap_ci(sample, "std", n_resamples=500, seed=9)
        b = bootstrap_ci(sample, "std", n_resamples=500, seed=9)
        assert a == b

    def test_narrower_at_lower_confidence(self, sample):
        wide = bootstrap_ci(sample, "mean", n_resamples=1000, confidence=0.99, seed=1)
        narrow = bootstrap_ci(sample, "mean", n_resamples=1000, confidence=0.5, seed=1)
        assert narrow.half_width < wide.half_width

    def test_single_value_degenerates_cleanly(self):
        ci = bootstrap_ci([4.2], "mean", n_resamples=50, seed=0)
        assert ci.low == ci.high == ci.estimate == 4.2

    def test_bad_confidence(self, sample):
        with pytest.raises(ValueError, match="confidence"):
            bootstrap_ci(sample, "mean", confidence=1.0)


class TestSeeding:
    def test_generator_is_path_keyed(self):
        a = bootstrap_generator(1, "x", n=10, n_resamples=5, statistic="mean")
        b = bootstrap_generator(1, "x", n=10, n_resamples=5, statistic="mean")
        assert a.integers(0, 100, 8).tolist() == b.integers(0, 100, 8).tolist()


class TestNormalPpf:
    def test_known_quantiles(self):
        assert normal_ppf(0.5) == pytest.approx(0.0, abs=1e-9)
        assert normal_ppf(0.975) == pytest.approx(1.959964, abs=1e-5)
        assert normal_ppf(0.025) == pytest.approx(-1.959964, abs=1e-5)
        assert normal_ppf(0.999) == pytest.approx(3.090232, abs=1e-5)

    def test_symmetry_and_tails(self):
        assert normal_ppf(0.001) == pytest.approx(-normal_ppf(0.999), abs=1e-8)
        assert normal_ppf(1e-8) < -5.0

    def test_domain(self):
        with pytest.raises(ValueError):
            normal_ppf(0.0)
        with pytest.raises(ValueError):
            normal_ppf(1.0)
