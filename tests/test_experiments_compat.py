"""Back-compat: legacy shims warn, and reproduce seed-era numbers.

Each test drives the pre-Runner imperative call sequence by hand (the
"old way", with its numbered seeds) and asserts the corresponding shim
— which routes through the new Runner with stream overrides — produces
the same numbers bit for bit.
"""

import warnings

import numpy as np
import pytest

from repro import DnaMicroarrayChip, MicroarrayAssay, ProbeLayout, Sample
from repro.chip import NeuralRecordingChip
from repro.experiments import run_legacy_dna_assay, run_legacy_neural_recording
from repro.neuro import ArrayGeometry, Culture
from repro.screening import CompoundLibrary, ScreeningFunnel, compare_cmos_vs_conventional
from repro.screening.stages import default_funnel_stages


def test_legacy_dna_assay_matches_imperative_flow():
    chip = DnaMicroarrayChip(rng=1)
    assert chip.configure_bias(0.45, -0.25)
    chip.auto_calibrate(frame_s=0.05, rng=2)
    layout = ProbeLayout.random_panel(4, probe_length=20, replicates=4, rng=3)
    sample = Sample.for_probes(layout.probes(), concentration=1e-5, subset=[0, 1])
    assay = MicroarrayAssay(layout).run(sample)
    counts_old = chip.measure_assay(assay, frame_s=1.0, rng=4)

    with pytest.deprecated_call():
        result = run_legacy_dna_assay(
            chip_rng=1, calibration_rng=2, layout_rng=3, measure_rng=4,
            probe_count=4, replicates=4, subset=(0, 1),
        )
    np.testing.assert_array_equal(result.artifacts["counts"], counts_old)
    assert result.kind == "dna_assay"
    assert result.seeds["streams"]["measure"] == "override"


def test_legacy_neural_recording_matches_imperative_flow():
    geometry = ArrayGeometry(16, 16, 7.8e-6)
    chip = NeuralRecordingChip(geometry=geometry, rng=1)
    chip.calibrate()
    culture = Culture.random(2, chip.geometry, diameter_range=(40e-6, 70e-6), rng=2)
    recording_old = chip.record_culture(
        culture, duration_s=0.05, firing_rate_hz=25.0, rng=3, use_hh=False
    )

    with pytest.deprecated_call():
        result = run_legacy_neural_recording(
            chip_rng=1, culture_rng=2, record_rng=3,
            rows=16, cols=16, n_neurons=2, diameter_range=(40e-6, 70e-6),
            duration_s=0.05, use_hh=False,
        )
    recording_new = result.artifacts["recording"]
    np.testing.assert_array_equal(
        recording_new.electrode_movie.frames, recording_old.electrode_movie.frames
    )
    for index, truth in recording_old.ground_truth.items():
        np.testing.assert_array_equal(recording_new.ground_truth[index], truth)


def test_compare_cmos_vs_conventional_warns_and_matches_seed_era():
    library = CompoundLibrary.generate(size=2000, viable_rate=1e-3, rng=7)

    # Seed-era semantics: one seed drawn from the rng, both funnels
    # paired on it.
    generator = np.random.default_rng(8)
    seed = int(generator.integers(0, 2**32 - 1))
    old_cmos = ScreeningFunnel(default_funnel_stages(cmos=True)).run(library, rng=seed)
    old_conv = ScreeningFunnel(default_funnel_stages(cmos=False)).run(library, rng=seed)

    with pytest.deprecated_call():
        results = compare_cmos_vs_conventional(library, rng=8)

    assert results["cmos"].outcomes == old_cmos.outcomes
    assert results["conventional"].outcomes == old_conv.outcomes
    assert results["cmos"].survivors == old_cmos.survivors
    assert results["conventional"].total_cost == old_conv.total_cost


def test_legacy_dna_defaults_are_the_documented_quickstart():
    """The shim's defaults are exactly the rng=1..4 docstring flow."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        result = run_legacy_dna_assay(probe_count=4, replicates=4)
    assert result.spec["probe_count"] == 4
    assert result.spec["concentration"] == pytest.approx(1e-5)
    assert result.spec["target_subset"] == [0, 1, 2, 3]
    assert all(
        result.seeds["streams"][name] == "override"
        for name in ("chip", "calibration", "layout", "measure")
    )
