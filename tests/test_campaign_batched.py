"""The batched campaign fast path vs serial per-point dispatch.

Contract (repro.campaigns.batched): per-point results are bit-identical
to the serial executor (artifact-free, like the process executor);
non-batchable points fall back to serial inside the same stream; the
streaming stores are unchanged.
"""

import numpy as np
import pytest

from repro.campaigns import (
    EXECUTORS,
    BatchedExecutor,
    CampaignSpec,
    JsonlResultStore,
    batchable_kinds,
    make_executor,
    run_campaign,
)
from repro.campaigns.plan import Plan
from repro.experiments import (
    ArrayScaleSpec,
    NeuralRecordingSpec,
    Runner,
    ScreeningSpec,
)


def assert_results_identical(serial_result, batched_result):
    """Bit-identical per point, NaN-aware (snr is NaN for silent
    neurons; NaN != NaN under plain dict equality)."""
    assert len(serial_result.plan) == len(batched_result.plan)
    for a, b in zip(serial_result.results(), batched_result.results()):
        a = a.without_artifacts()
        b = b.without_artifacts()
        assert a.kind == b.kind
        assert a.spec == b.spec
        assert a.seeds == b.seeds
        assert a.version == b.version
        assert a.record_name == b.record_name
        assert set(a.records) == set(b.records)
        for column in a.records:
            left, right = a.records[column], b.records[column]
            assert left.dtype == right.dtype, column
            # assert_array_equal treats same-position NaNs as equal.
            np.testing.assert_array_equal(left, right, err_msg=column)
        assert set(a.metrics) == set(b.metrics)
        for name in a.metrics:
            left, right = a.metrics[name], b.metrics[name]
            if isinstance(left, float) and np.isnan(left):
                assert np.isnan(right), name
            else:
                assert left == right, name


ARRAY_CAMPAIGN = CampaignSpec(
    base=ArrayScaleSpec(rows=16, cols=8, frame_s=0.05), replicates=12
)


class TestArrayScaleBatch:
    def test_bit_identical_to_serial(self):
        serial = run_campaign(ARRAY_CAMPAIGN, seed=5)
        batched = run_campaign(ARRAY_CAMPAIGN, seed=5, executor="batched")
        assert_results_identical(serial, batched)
        assert batched.manifest["executor"] == "batched"

    def test_bit_identical_with_calibration_and_chip_batch(self):
        campaign = CampaignSpec(
            base=ArrayScaleSpec(rows=8, cols=8, n_chips=2, frame_s=0.05, calibrate=True),
            replicates=4,
        )
        serial = run_campaign(campaign, seed=9)
        batched = run_campaign(campaign, seed=9, executor="batched")
        assert_results_identical(serial, batched)

    def test_grid_axis_forms_independent_groups(self):
        campaign = CampaignSpec(
            base=ArrayScaleSpec(rows=8, cols=8, frame_s=0.05),
            grid={"pattern": ("logspan", "uniform")},
            replicates=3,
        )
        serial = run_campaign(campaign, seed=2)
        batched = run_campaign(campaign, seed=2, executor="batched")
        assert_results_identical(serial, batched)

    def test_chunked_groups_stay_bit_identical(self, monkeypatch):
        from repro.campaigns import batched as batched_module

        monkeypatch.setattr(batched_module, "ARRAY_SCALE_CHUNK_SITES", 16 * 8 * 3)
        serial = run_campaign(ARRAY_CAMPAIGN, seed=5)
        chunked = run_campaign(ARRAY_CAMPAIGN, seed=5, executor="batched")
        assert_results_identical(serial, chunked)

    def test_matches_runner_single_point(self):
        """Point seeds resolve exactly as Runner(point.seed).run(spec)."""
        batched = run_campaign(ARRAY_CAMPAIGN, seed=5, executor="batched")
        point = batched.plan[7]
        reference = Runner(seed=point.seed).run(point.spec).without_artifacts()
        stored = batched.result_for(7)
        assert stored.seeds == reference.seeds
        for column in reference.records:
            np.testing.assert_array_equal(
                stored.records[column], reference.records[column]
            )
        assert stored.metrics == reference.metrics

    def test_object_backend_campaign_falls_back(self):
        campaign = CampaignSpec(
            base=ArrayScaleSpec(rows=8, cols=8, frame_s=0.05, backend="object"),
            replicates=3,
        )
        serial = run_campaign(campaign, seed=4)
        batched = run_campaign(campaign, seed=4, executor="batched")
        assert_results_identical(serial, batched)


NEURAL_CAMPAIGN = CampaignSpec(
    base=NeuralRecordingSpec(rows=16, cols=16, n_neurons=3, duration_s=0.03),
    replicates=5,
    backend="vectorized",
)


class TestNeuralBatch:
    def test_bit_identical_to_serial_hh(self):
        serial = run_campaign(NEURAL_CAMPAIGN, seed=11)
        batched = run_campaign(NEURAL_CAMPAIGN, seed=11, executor="batched")
        assert_results_identical(serial, batched)

    def test_bit_identical_to_serial_template(self):
        campaign = CampaignSpec(
            base=NeuralRecordingSpec(
                rows=16, cols=16, n_neurons=4, duration_s=0.02, use_hh=False
            ),
            replicates=4,
            backend="vectorized",
        )
        serial = run_campaign(campaign, seed=13)
        batched = run_campaign(campaign, seed=13, executor="batched")
        assert_results_identical(serial, batched)

    def test_union_hh_chunking_is_invariant(self, monkeypatch):
        from repro.campaigns import batched as batched_module

        monkeypatch.setattr(batched_module, "NEURAL_CHUNK_NEURONS", 3)
        serial = run_campaign(NEURAL_CAMPAIGN, seed=11)
        chunked = run_campaign(NEURAL_CAMPAIGN, seed=11, executor="batched")
        assert_results_identical(serial, chunked)

    def test_without_backend_flag_neural_falls_back_to_object(self):
        campaign = CampaignSpec(
            base=NeuralRecordingSpec(
                rows=16, cols=16, n_neurons=2, duration_s=0.02, use_hh=False
            ),
            replicates=2,
        )
        serial = run_campaign(campaign, seed=3)
        batched = run_campaign(campaign, seed=3, executor="batched")
        assert_results_identical(serial, batched)
        assert batched.results()[0].metrics["backend"] == "object"


class TestExecutorMechanics:
    def test_registered_in_executor_registry(self):
        assert "batched" in EXECUTORS
        assert isinstance(make_executor("batched"), BatchedExecutor)
        assert batchable_kinds() == ["array_scale", "neural_recording"]

    def test_single_worker_only(self):
        assert make_executor("batched", workers=1).workers == 1
        with pytest.raises(ValueError, match="calling thread"):
            BatchedExecutor(workers=4)

    def test_rejects_inputs_and_runner_factory_eagerly(self):
        executor = BatchedExecutor()
        plan = Plan.for_specs([ArrayScaleSpec(rows=8, cols=8)], seed=1)
        with pytest.raises(ValueError, match="inputs"):
            executor.run(plan, inputs={"chip": object()})
        with pytest.raises(ValueError, match="point seeds"):
            executor.run(plan, runner_factory=lambda seed: Runner(seed))

    def test_non_batchable_kind_falls_back_serially(self):
        campaign = CampaignSpec(base=ScreeningSpec(library_size=500), replicates=3)
        serial = run_campaign(campaign, seed=6)
        batched = run_campaign(campaign, seed=6, executor="batched")
        assert_results_identical(serial, batched)

    def test_streaming_store_unchanged(self, tmp_path):
        serial_dir = tmp_path / "serial"
        batched_dir = tmp_path / "batched"
        run_campaign(ARRAY_CAMPAIGN, seed=5, store="jsonl", out=str(serial_dir))
        run_campaign(
            ARRAY_CAMPAIGN, seed=5, executor="batched", store="jsonl", out=str(batched_dir)
        )
        serial_store = JsonlResultStore.load(serial_dir)
        batched_store = JsonlResultStore.load(batched_dir)
        for (meta_s, result_s), (meta_b, result_b) in zip(
            serial_store.iter_results(), batched_store.iter_results()
        ):
            assert meta_s["point"] == meta_b["point"]
            assert meta_s["metrics"] == meta_b["metrics"]
            assert result_s.to_dict() == result_b.to_dict()

    def test_outcome_wall_times_amortised(self):
        executor = BatchedExecutor()
        plan = ARRAY_CAMPAIGN.compile(5)
        outcomes = list(executor.run(plan, backend=None))
        assert len(outcomes) == len(plan)
        walls = {outcome.wall_s for outcome in outcomes}
        assert all(wall > 0 for wall in walls)

    def test_cli_accepts_batched_executor(self, tmp_path, capsys):
        import json

        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps(ArrayScaleSpec(rows=8, cols=8, frame_s=0.05).to_dict())
        )
        out_dir = tmp_path / "campaign"
        code = main(
            [
                "sweep",
                "--spec",
                str(spec_path),
                "--replicates",
                "4",
                "--executor",
                "batched",
                "--store",
                "jsonl",
                "--out",
                str(out_dir),
                "--flush-every",
                "2",
                "--seed",
                "5",
            ]
        )
        assert code == 0
        assert (out_dir / "manifest.json").exists()
        manifest = json.loads((out_dir / "manifest.json").read_text())
        assert manifest["executor"] == "batched"
        reference = run_campaign(
            CampaignSpec(base=ArrayScaleSpec(rows=8, cols=8, frame_s=0.05), replicates=4),
            seed=5,
        )
        stored = JsonlResultStore.load(out_dir)
        for (meta, result), expected in zip(
            stored.iter_results(), reference.results()
        ):
            assert result.to_dict() == expected.without_artifacts().to_dict()
