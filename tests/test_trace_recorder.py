"""TraceRecorder, TraceEvent and TraceTable: capture, clock, bounds,
round-trip."""

import io
import json

import pytest

from repro.trace import (
    CHIP_TO_HOST,
    HOST_TO_CHIP,
    KINDS,
    REG_REJECT,
    REG_RESET,
    REG_WRITE,
    SCHEMA_VERSION,
    SEQ_SAMPLE,
    SEQ_STATE,
    SERIAL_FRAME,
    TraceEvent,
    TraceRecorder,
    TraceTable,
)


class TestTraceEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            TraceEvent(seq=0, time_s=0.0, kind="bogus", channel="x")

    def test_rejects_negative_seq(self):
        with pytest.raises(ValueError):
            TraceEvent(seq=-1, time_s=0.0, kind=REG_WRITE, channel="reg.x")

    def test_rejects_empty_channel(self):
        with pytest.raises(ValueError):
            TraceEvent(seq=0, time_s=0.0, kind=REG_WRITE, channel="")

    def test_dict_round_trip(self):
        event = TraceEvent(
            seq=3, time_s=1.5e-6, kind=REG_WRITE, channel="reg.generator_dac",
            data={"value": 58, "old": 0, "address": 0, "source": "host"},
        )
        assert TraceEvent.from_dict(event.to_dict()) == event

    def test_canonical_json_is_sorted_and_compact(self):
        event = TraceEvent(seq=0, time_s=0.0, kind=SEQ_STATE, channel="seq.state",
                           data={"state": "measure", "detail": None})
        line = event.to_json()
        assert ": " not in line and ", " not in line
        payload = json.loads(line)
        assert list(payload) == sorted(payload)

    def test_summary_covers_every_kind(self):
        samples = {
            REG_WRITE: {"value": 1, "old": 0, "source": "host"},
            "reg.read": {"value": 7},
            REG_RESET: {"values": {"a": 0, "b": 1}},
            REG_REJECT: {"value": 9, "reason": "read-only register"},
            SEQ_STATE: {"state": "calibrate", "detail": "sweep"},
            SEQ_SAMPLE: {"row": 1, "col": 2, "slot_s": 4.88e-7},
            SERIAL_FRAME: {
                "direction": HOST_TO_CHIP, "command": "WRITE_REG", "address": 0,
                "length": 1, "ok": True, "flipped": [],
            },
            "fault.inject": {"fault": "serial_bitflip", "bits": [5, 9]},
            "readout.detect": {"frame": 0, "attempt": 0, "error": "bad checksum"},
            "readout.retry": {"frame": 0, "attempt": 1, "delay_s": 1e-4},
            "readout.recover": {"frame": 0, "attempts": 2},
            "readout.giveup": {"frame": 0, "attempts": 4, "sites_lost": 16},
        }
        for kind in KINDS:
            event = TraceEvent(seq=0, time_s=0.0, kind=kind, channel="c",
                               data=samples[kind])
            assert isinstance(event.summary(), str) and event.summary()
        reject = TraceEvent(seq=0, time_s=0.0, kind=REG_REJECT, channel="reg.status",
                            data=samples[REG_REJECT])
        assert "REJECTED" in reject.summary()


class TestRecorderClock:
    def test_starts_at_zero_and_advances(self):
        rec = TraceRecorder()
        assert rec.now == 0.0
        rec.advance(1e-3)
        rec.advance(5e-4)
        assert rec.now == pytest.approx(1.5e-3)

    def test_rejects_backwards_time(self):
        rec = TraceRecorder()
        with pytest.raises(ValueError):
            rec.advance(-1e-9)

    def test_emit_stamps_current_time_unless_given(self):
        rec = TraceRecorder()
        rec.advance(2.0)
        at_now = rec.seq_state("measure")
        explicit = rec.seq_sample(0, 0, time_s=2.5, slot_s=1e-6)
        assert at_now.time_s == 2.0
        assert explicit.time_s == 2.5

    def test_clear_rewinds(self):
        rec = TraceRecorder()
        rec.advance(1.0)
        rec.seq_state("measure")
        rec.clear()
        assert rec.now == 0.0 and len(rec) == 0 and rec.n_events == 0


class TestRecorderBounds:
    def test_limit_bounds_memory_and_counts_drops(self):
        rec = TraceRecorder(limit=3)
        for i in range(10):
            rec.emit(SEQ_STATE, "seq.state", {"state": f"s{i}"})
        assert len(rec) == 3
        assert rec.n_events == 10
        assert rec.n_dropped == 7
        trace = rec.trace()
        assert len(trace) == 3 and trace.n_dropped == 7
        # The kept events are the first three, in order.
        assert [e.data["state"] for e in trace] == ["s0", "s1", "s2"]

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder(limit=-1)

    def test_sink_streams_past_the_limit(self):
        sink = io.StringIO()
        rec = TraceRecorder(limit=2, sink=sink)
        for i in range(5):
            rec.emit(SEQ_STATE, "seq.state", {"state": f"s{i}"})
        # The buffer is bounded but the sink saw everything.
        assert len(rec) == 2
        restored = TraceTable.from_jsonl(sink.getvalue())
        assert len(restored) == 5
        assert [e.data["state"] for e in restored] == [f"s{i}" for i in range(5)]

    def test_bit_level_off_drops_bit_streams(self):
        rec = TraceRecorder(bit_level=False)
        event = rec.serial_frame(HOST_TO_CHIP, "WRITE_REG", 0x00, 1,
                                 b"\xa5\x01\x00\x01\x3a\x1f", b"\xa5\x01\x00\x01\x3a\x1f")
        assert "sent_bits" not in event.data and "received_bits" not in event.data


class TestTypedHelpers:
    def test_reg_write_payload(self):
        rec = TraceRecorder()
        event = rec.reg_write("generator_dac", 0x00, 58, 0)
        assert event.kind == REG_WRITE
        assert event.channel == "reg.generator_dac"
        assert event.data == {"address": 0, "value": 58, "old": 0, "source": "host"}

    def test_serial_frame_picks_wire_by_direction(self):
        rec = TraceRecorder()
        down = rec.serial_frame(HOST_TO_CHIP, "WRITE_REG", 0, 1, b"\x00", b"\x00")
        up = rec.serial_frame(CHIP_TO_HOST, "READ_COUNTERS", 0, 1, b"\x00", b"\x00")
        assert down.channel == "serial.din"
        assert up.channel == "serial.dout"

    def test_seq_numbers_are_dense(self):
        rec = TraceRecorder()
        events = [rec.seq_state(f"s{i}") for i in range(4)]
        assert [e.seq for e in events] == [0, 1, 2, 3]


def _small_trace():
    rec = TraceRecorder()
    rec.reg_write("generator_dac", 0x00, 58, 0)
    rec.advance(1e-3)
    rec.reg_write("collector_dac", 0x01, 72, 0)
    rec.seq_state("measure")
    rec.advance(1e-3)
    rec.seq_sample(0, 0, time_s=rec.now, slot_s=2.4e-5)
    return rec.trace()


class TestTraceTable:
    def test_columns(self):
        trace = _small_trace()
        assert trace.column("seq").tolist() == [0, 1, 2, 3]
        assert trace.column("kind").tolist() == [
            REG_WRITE, REG_WRITE, SEQ_STATE, SEQ_SAMPLE,
        ]
        with pytest.raises(KeyError):
            trace.column("bogus")

    def test_channels_first_seen_order(self):
        trace = _small_trace()
        assert trace.channels() == [
            "reg.generator_dac", "reg.collector_dac", "seq.state", "seq.sample",
        ]
        assert trace.kinds() == [REG_WRITE, SEQ_STATE, SEQ_SAMPLE]

    def test_time_extent(self):
        trace = _small_trace()
        assert trace.start_s == 0.0
        assert trace.stop_s == pytest.approx(2e-3)
        assert trace.duration_s == pytest.approx(2e-3)

    def test_stop_includes_frame_duration(self):
        rec = TraceRecorder()
        rec.serial_frame(HOST_TO_CHIP, "WRITE_REG", 0, 1, b"\x00", b"\x00",
                         duration_s=4.8e-5)
        assert rec.trace().stop_s == pytest.approx(4.8e-5)

    def test_empty_trace_extent(self):
        trace = TraceTable([])
        assert trace.start_s == 0.0 and trace.stop_s == 0.0 and len(trace) == 0

    def test_filter_by_kind_channel_time_predicate(self):
        trace = _small_trace()
        assert len(trace.filter(kinds=[REG_WRITE])) == 2
        # 'reg.' is a prefix; 'reg.generator_dac' is exact.
        assert len(trace.filter(channels=["reg."])) == 2
        assert len(trace.filter(channels=["reg.*"])) == 2
        assert len(trace.filter(channels=["reg.generator_dac"])) == 1
        assert len(trace.filter(start_s=1e-3)) == 3
        assert len(trace.filter(stop_s=0.0)) == 1
        assert len(trace.filter(predicate=lambda e: e.data.get("value") == 72)) == 1

    def test_filter_keeps_order_and_drop_count(self):
        rec = TraceRecorder(limit=2)
        for i in range(4):
            rec.seq_state(f"s{i}")
        filtered = rec.trace().filter(kinds=[SEQ_STATE])
        assert filtered.n_dropped == 2
        assert [e.seq for e in filtered] == [0, 1]

    def test_dict_round_trip(self):
        trace = _small_trace()
        assert TraceTable.from_dict(trace.to_dict()) == trace

    def test_schema_mismatch_rejected(self):
        payload = _small_trace().to_dict()
        payload["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema"):
            TraceTable.from_dict(payload)

    def test_jsonl_round_trip_byte_identical(self):
        trace = _small_trace()
        text = trace.to_jsonl()
        restored = TraceTable.from_jsonl(text)
        assert restored == trace
        assert restored.to_jsonl() == text

    def test_jsonl_header_carries_counts(self):
        rec = TraceRecorder(limit=1)
        rec.seq_state("a")
        rec.seq_state("b")
        header = json.loads(rec.trace().to_jsonl().splitlines()[0])
        assert header == {"schema": SCHEMA_VERSION, "n_events": 1, "n_dropped": 1}

    def test_jsonl_schema_mismatch_rejected(self):
        text = json.dumps({"schema": 999, "n_events": 0, "n_dropped": 0}) + "\n"
        with pytest.raises(ValueError, match="schema"):
            TraceTable.from_jsonl(text)

    def test_from_jsonl_empty(self):
        assert len(TraceTable.from_jsonl("")) == 0

    def test_repr_mentions_shape(self):
        text = repr(_small_trace())
        assert "4 events" in text and "channels" in text
