"""Shared fixtures: seeded generators and small chip instances."""

import numpy as np
import pytest

from repro.chip import DnaMicroarrayChip
from repro.neuro import ArrayGeometry, NeuralArrayModel
from repro.neuro.action_potential import HodgkinHuxleyNeuron


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def dna_chip():
    """One DNA chip shared by read-only tests (cheap to build but reused)."""
    chip = DnaMicroarrayChip(rng=777)
    chip.configure_bias(0.45, -0.25)
    return chip


@pytest.fixture(scope="session")
def hh_run():
    """A 30 ms Hodgkin-Huxley run with the default single pulse."""
    return HodgkinHuxleyNeuron().simulate(0.03, dt_s=20e-6)


@pytest.fixture(scope="session")
def small_array():
    """A calibrated 16x16 neural array."""
    array = NeuralArrayModel(ArrayGeometry(16, 16, 7.8e-6), rng=99)
    array.calibrate()
    return array
