"""The Fig. 3 sawtooth current-to-frequency ADC."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.capacitor import Capacitor
from repro.devices.comparator import Comparator
from repro.pixel.sawtooth_adc import SawtoothAdc


@pytest.fixture
def adc():
    return SawtoothAdc()


class TestTiming:
    def test_ramp_time_inverse_in_current(self, adc):
        assert adc.ramp_time(2e-9) == pytest.approx(adc.ramp_time(1e-9) / 2)

    def test_cycle_decomposition(self, adc):
        # tau2 = tau1 + comparator delay + tau_delay (Fig. 3 labels).
        i = 1e-9
        assert adc.cycle_period(i) == pytest.approx(
            adc.ramp_time(i) + adc.comparator.delay_s + adc.tau_delay_s
        )

    def test_dead_time(self, adc):
        assert adc.dead_time() == pytest.approx(150e-9)

    def test_nominal_design_frequencies(self, adc):
        # Cint = 100 fF, 1 V swing: 10 Hz at 1 pA, ~1 MHz at 100 nA.
        assert adc.frequency(1e-12) == pytest.approx(10.0, rel=1e-3)
        assert adc.frequency(100e-9) == pytest.approx(870e3, rel=0.02)

    def test_max_frequency_dead_time_limited(self, adc):
        assert adc.max_frequency() == pytest.approx(1 / 150e-9)

    def test_frequency_zero_below_leakage(self):
        adc = SawtoothAdc(leakage_a=2e-12)
        assert adc.frequency(1e-12) == 0.0
        assert adc.frequency(3e-12) > 0.0

    def test_threshold_above_reset_required(self):
        with pytest.raises(ValueError):
            SawtoothAdc(comparator=Comparator(threshold_v=-0.5))


class TestTransfer:
    def test_approximately_proportional(self, adc):
        # The paper's claim, mid-range: within 2% of proportional.
        f1 = adc.frequency(1e-10)
        f2 = adc.frequency(1e-9)
        assert f2 / f1 == pytest.approx(10.0, rel=0.02)

    def test_compression_at_high_current(self, adc):
        # Dead time compresses the top decade.
        ratio = adc.frequency(100e-9) / adc.frequency(10e-9)
        assert ratio < 9.5

    def test_inverse_transfer_roundtrip(self, adc):
        for i in (1e-12, 1e-10, 1e-8, 1e-7):
            f = adc.frequency(i)
            assert adc.current_from_frequency(f) == pytest.approx(i, rel=1e-6)

    def test_inverse_transfer_rejects_impossible_frequency(self, adc):
        with pytest.raises(ValueError):
            adc.current_from_frequency(2 * adc.max_frequency())

    def test_inverse_transfer_zero(self, adc):
        assert adc.current_from_frequency(0.0) == 0.0

    @given(exp=st.floats(min_value=-12, max_value=-7))
    @settings(max_examples=40, deadline=None)
    def test_frequency_monotone_in_current(self, exp):
        adc = SawtoothAdc()
        i = 10.0**exp
        assert adc.frequency(i * 1.1) > adc.frequency(i)


class TestCounting:
    def test_count_matches_frequency(self, adc):
        count = adc.count_in_frame(1e-9, 1.0, start_phase=0.0)
        assert count == pytest.approx(adc.frequency(1e-9), abs=1.5)

    def test_count_scales_with_frame(self, adc):
        c1 = adc.count_in_frame(1e-9, 0.5, start_phase=0.0)
        c2 = adc.count_in_frame(1e-9, 2.0, start_phase=0.0)
        assert c2 == pytest.approx(4 * c1, rel=0.01)

    def test_count_zero_below_floor(self):
        adc = SawtoothAdc(leakage_a=5e-12)
        assert adc.count_in_frame(1e-12, 1.0) == 0

    def test_quantisation_at_low_current(self, adc):
        # 1 pA at 0.1 s frame: expected count 1 -> severe quantisation.
        counts = {adc.count_in_frame(1e-12, 0.1, rng=i) for i in range(20)}
        assert counts <= {0, 1, 2}

    def test_gaussian_fast_path_consistent(self):
        # Same current through event loop (short frame) and Gaussian
        # path (long frame) must give consistent rates.
        adc = SawtoothAdc(comparator=Comparator(threshold_v=1.0, delay_s=50e-9, noise_rms_v=0.002))
        i = 1e-9
        slow = np.mean([adc.count_in_frame(i, 0.05, rng=s) / 0.05 for s in range(10)])
        fast = np.mean([adc.count_in_frame(i, 2.0, rng=s) / 2.0 for s in range(10)])
        assert fast == pytest.approx(slow, rel=0.05)

    def test_invalid_frame(self, adc):
        with pytest.raises(ValueError):
            adc.count_in_frame(1e-9, 0.0)

    def test_invalid_phase(self, adc):
        with pytest.raises(ValueError):
            adc.count_in_frame(1e-9, 1.0, start_phase=2.0)

    def test_measured_frequency(self, adc):
        f = adc.measured_frequency(1e-9, 1.0, rng=1)
        assert f == pytest.approx(adc.frequency(1e-9), rel=0.01)

    @given(
        exp=st.floats(min_value=-11, max_value=-8),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=30, deadline=None)
    def test_count_monotone_in_current_statistically(self, exp, seed):
        adc = SawtoothAdc()
        i = 10.0**exp
        low = adc.count_in_frame(i, 1.0, rng=seed)
        high = adc.count_in_frame(i * 3, 1.0, rng=seed)
        assert high >= low


class TestWaveform:
    def test_waveform_reaches_threshold(self, adc):
        period = adc.cycle_period(1e-9)
        wave = adc.waveform(1e-9, 3 * period, period / 500)
        assert wave.peak_abs() == pytest.approx(adc.swing_v, rel=0.05)

    def test_waveform_resets(self, adc):
        period = adc.cycle_period(1e-9)
        wave = adc.waveform(1e-9, 3 * period, period / 500)
        # After a reset the waveform returns near v_reset.
        late = wave.samples[int(1.1 * 500):int(1.2 * 500)]
        assert late.min() < 0.3 * adc.swing_v

    def test_reset_pulse_times_spacing(self, adc):
        times = adc.reset_pulse_times(1e-9, 1e-3)
        spacing = np.diff(times)
        assert np.allclose(spacing, adc.cycle_period(1e-9), rtol=1e-9)

    def test_reset_pulse_times_empty_below_floor(self):
        adc = SawtoothAdc(leakage_a=5e-12)
        assert len(adc.reset_pulse_times(1e-12, 1.0)) == 0

    def test_waveform_invalid_args(self, adc):
        with pytest.raises(ValueError):
            adc.waveform(1e-9, 0.0, 1e-9)


class TestLeakageFloor:
    def test_leakage_biases_low_currents(self):
        leaky = SawtoothAdc(leakage_a=0.5e-12)
        clean = SawtoothAdc()
        # At 1 pA, half the current is eaten by leakage.
        assert leaky.frequency(1e-12) == pytest.approx(0.5 * clean.frequency(1e-12), rel=0.01)

    def test_leakage_negligible_at_high_current(self):
        leaky = SawtoothAdc(leakage_a=0.5e-12)
        clean = SawtoothAdc()
        assert leaky.frequency(10e-9) == pytest.approx(clean.frequency(10e-9), rel=1e-3)

    def test_cint_leak_also_floors(self):
        adc = SawtoothAdc(cint=Capacitor(100e-15, leakage_conductance_s=1e-11))
        # G*V at threshold = 10 pA: a 1 pA source can never cross.
        assert adc.frequency(1e-12) == 0.0
