"""Kernel/object parity at the transfer-characteristic edges.

The three regimes the ISSUE singles out:

* the dead-time-compressed top decade (100 nA), where tau_cmp +
  tau_delay eats a visible fraction of every cycle;
* the quantisation-dominated bottom decade (1 pA, ~10 Hz), where the
  counting frame resolves only a handful of pulses;
* leakage at or above the signal current, where the pixel never fires.
"""

import numpy as np
import pytest

from repro.core.units import ns
from repro.devices.comparator import Comparator
from repro.engine import VectorizedDnaChip, kernels
from repro.pixel.sawtooth_adc import SawtoothAdc

PHASES = [0.0, 0.31, 0.77, 1.0]


def noisy_adc(noise_rms_v=0.002, leakage_a=2e-15):
    return SawtoothAdc(
        comparator=Comparator(threshold_v=1.0, delay_s=50 * ns, noise_rms_v=noise_rms_v),
        leakage_a=leakage_a,
    )


def kernel_kwargs(adc, with_noise=False):
    kw = {
        "cint_f": adc.cint.capacitance_f,
        "swing_v": adc.swing_v,
        "leakage_a": adc.leakage_a,
        "comparator_delay_s": adc.comparator.delay_s,
        "tau_delay_s": adc.tau_delay_s,
    }
    if with_noise:
        kw["noise_rms_v"] = adc.comparator.noise_rms_v
    return kw


class TestTopDecadeDeadTime:
    """100 nA: ~1 MHz operation, dead time compresses the top decade."""

    CURRENTS = np.logspace(-8, -7, 9)  # 10 nA .. 100 nA

    @pytest.mark.parametrize("phase", PHASES)
    def test_noiseless_counts_bitwise(self, phase):
        adc = noisy_adc(noise_rms_v=0.0)
        counts = kernels.count_in_frame(
            self.CURRENTS, 0.5, start_phase=phase, **kernel_kwargs(adc)
        )
        expected = [adc.count_in_frame(float(i), 0.5, start_phase=phase) for i in self.CURRENTS]
        assert counts.tolist() == expected

    def test_compression_against_ideal_line(self):
        """At 100 nA the fixed dead time must cost a visible fraction of
        every cycle — and exactly the same fraction in both models."""
        adc = noisy_adc(noise_rms_v=0.0)
        kw = kernel_kwargs(adc)
        measured = kernels.frequency(100e-9, *kw.values())
        ideal = kernels.ideal_frequency(100e-9, adc.cint.capacitance_f, adc.swing_v)
        compression = measured / ideal
        assert compression == pytest.approx(adc.frequency(100e-9) / adc.ideal_frequency(100e-9))
        ramp = adc.ramp_time(100e-9)
        assert compression == pytest.approx(ramp / (ramp + adc.dead_time()))
        assert compression < 0.92  # the top decade is visibly compressed
        assert kernels.frequency(100e-9, *kw.values()) < adc.max_frequency()

    def test_noisy_counts_within_jitter_budget(self):
        adc = noisy_adc()
        kw = kernel_kwargs(adc)
        sigma = kernels.count_noise_sigma(
            self.CURRENTS, 1.0, **kw, noise_rms_v=adc.comparator.noise_rms_v
        )
        noiseless = kernels.count_in_frame(self.CURRENTS, 1.0, start_phase=0.5, **kw)
        rng = np.random.default_rng(21)
        object_counts = np.asarray(
            [adc.count_in_frame(float(i), 1.0, rng=rng) for i in self.CURRENTS]
        )
        vec_counts = kernels.count_in_frame(
            self.CURRENTS, 1.0, rng=22, **kernel_kwargs(adc, with_noise=True)
        )
        budget = 1 + np.ceil(8 * sigma)
        assert np.all(np.abs(object_counts - noiseless) <= budget)
        assert np.all(np.abs(vec_counts - noiseless) <= budget)


class TestBottomDecadeQuantization:
    """1 pA: ~10 Hz sawtooth; the count quantisation dominates."""

    CURRENTS = np.logspace(-12, -11, 9)  # 1 pA .. 10 pA

    @pytest.mark.parametrize("phase", PHASES)
    def test_noiseless_counts_bitwise(self, phase):
        adc = noisy_adc(noise_rms_v=0.0)
        counts = kernels.count_in_frame(
            self.CURRENTS, 1.0, start_phase=phase, **kernel_kwargs(adc)
        )
        expected = [adc.count_in_frame(float(i), 1.0, start_phase=phase) for i in self.CURRENTS]
        assert counts.tolist() == expected
        assert max(expected) <= 110  # genuinely quantisation-dominated

    def test_quantization_dominates_jitter(self):
        """In the bottom decade the +-1 count quantisation step dwarfs
        the accumulated comparator jitter — the regime where the
        vectorized Gaussian model and the object event loop may differ
        by at most the quantisation step itself."""
        adc = noisy_adc()
        sigma = kernels.count_noise_sigma(
            self.CURRENTS, 1.0, **kernel_kwargs(adc), noise_rms_v=adc.comparator.noise_rms_v
        )
        assert np.all(sigma < 0.05)

    def test_noisy_event_loop_vs_gaussian_within_one_step(self):
        adc = noisy_adc()
        noiseless = kernels.count_in_frame(
            self.CURRENTS, 1.0, start_phase=0.5, **kernel_kwargs(adc)
        )
        rng = np.random.default_rng(31)
        object_counts = np.asarray(
            [adc.count_in_frame(float(i), 1.0, rng=rng) for i in self.CURRENTS]
        )
        vec_counts = kernels.count_in_frame(
            self.CURRENTS, 1.0, rng=32, **kernel_kwargs(adc, with_noise=True)
        )
        # Quantisation (phase) accounts for 1 count; jitter < 0.05.
        assert np.all(np.abs(object_counts - noiseless) <= 2)
        assert np.all(np.abs(vec_counts - noiseless) <= 2)

    def test_ten_hertz_at_one_picoamp(self):
        """The module docstring's anchor point, on both backends."""
        adc = noisy_adc(noise_rms_v=0.0)
        kw = kernel_kwargs(adc)
        assert kernels.frequency(1e-12, *kw.values()) == pytest.approx(10.0, rel=0.01)
        assert adc.frequency(1e-12) == pytest.approx(10.0, rel=0.01)


class TestLeakageDominated:
    """Leakage >= signal: the pixel can never reach the threshold."""

    def test_exact_zero_counts_both_models(self):
        adc = noisy_adc(noise_rms_v=0.0, leakage_a=10e-12)
        currents = np.array([1e-13, 5e-12, 10e-12])  # all at/below the floor
        counts = kernels.count_in_frame(currents, 10.0, start_phase=0.9, **kernel_kwargs(adc))
        expected = [adc.count_in_frame(float(i), 10.0, start_phase=0.9) for i in currents]
        assert counts.tolist() == expected == [0, 0, 0]

    def test_mixed_array_only_live_sites_fire(self):
        adc = noisy_adc(noise_rms_v=0.0)
        currents = np.array([1e-15, 2e-15, 1e-9])  # two below floor, one live
        counts = kernels.count_in_frame(currents, 1.0, start_phase=0.0, **kernel_kwargs(adc))
        assert counts[0] == counts[1] == 0
        assert counts[2] > 0

    def test_ramp_infinite_frequency_zero(self):
        adc = noisy_adc(leakage_a=10e-12)
        kw = kernel_kwargs(adc)
        assert np.isinf(kernels.ramp_time(5e-12, adc.cint.capacitance_f, adc.swing_v, 10e-12))
        assert kernels.frequency(5e-12, *kw.values()) == 0.0

    def test_vectorized_chip_dead_pixel_matches_object_semantics(self):
        chip = VectorizedDnaChip(rng=25)
        chip.configure_bias(0.45, -0.25)
        chip.inject_dead_pixel(3, 3)
        counts = chip.measure_currents(np.full((16, 8), 5e-12), frame_s=1.0, rng=8)
        assert counts[3, 3] == 0
        assert counts[0, 0] > 0
        assert chip.dead_pixel_map()[3, 3]
