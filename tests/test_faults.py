"""Fault injection: determinism, executor parity, resilient readout.

The acceptance bar for the faults subsystem: a 64-point
``faults.rate`` campaign is **byte-identical** under serial, thread,
process and batched executors and through a service-cache round trip;
zero-fault specs hash and run exactly as before the subsystem existed;
and every occurrence pattern is a pure function of ``(spec, seed)``.
"""

import json

import numpy as np
import pytest

from repro.campaigns import (
    CampaignSpec,
    SerialExecutor,
    run_campaign,
)
from repro.chip.dna_chip import ChipSpecs, DnaMicroarrayChip
from repro.chip.readout import ReadoutPolicy, read_counters_resilient
from repro.chip.serial_interface import CHIP_TO_HOST, HOST_TO_CHIP
from repro.experiments import DnaAssaySpec, Runner, spec_from_dict
from repro.faults import (
    FaultInjector,
    RegisterCorruptFault,
    SequencerStallFault,
    SerialBitflipFault,
    StuckPixelFault,
    as_fault,
    fault_from_dict,
    fault_kinds,
    normalize_faults,
)
from repro.inference import FaultToleranceAnalysis, default_analysis_for
from repro.service import JobManager
from repro.trace import TraceRecorder, replay_readout

FAULTS = (
    {"kind": "serial_bitflip", "rate": 0.3, "n_flips": 2},
    {"kind": "stuck_pixel", "rate": 0.02},
)
BASE = DnaAssaySpec(
    probe_count=4, replicates=4, target_subset=(0, 1), faults=FAULTS
)
# 4 rates × 16 replicates = 64 points (grid × replicates).
CAMPAIGN = CampaignSpec(
    base=BASE,
    grid={"faults.rate": (0.0, 0.1, 0.3, 0.6)},
    replicates=16,
    name="fault-parity-64",
)


def _jsons(result):
    return [r.to_json() for r in result.results()]


@pytest.fixture(scope="module")
def serial_faulted():
    return run_campaign(CAMPAIGN, seed=11, executor="serial")


# ---------------------------------------------------------------------------
# Fault specs: registry, validation, round trips
# ---------------------------------------------------------------------------
class TestFaultSpecs:
    def test_kinds(self):
        assert fault_kinds() == [
            "register_corrupt", "sequencer_stall", "serial_bitflip", "stuck_pixel"
        ]

    def test_round_trip_every_kind(self):
        specs = [
            SerialBitflipFault(rate=0.4, n_flips=3, direction="host_to_chip"),
            SequencerStallFault(rate=0.2, stall_s=1e-3),
            RegisterCorruptFault(rate=0.1, n_bits=2),
            StuckPixelFault(rate=0.05, mode="full"),
        ]
        for spec in specs:
            back = fault_from_dict(json.loads(json.dumps(spec.to_dict())))
            assert back == spec

    def test_unknown_kind_and_field_rejected(self):
        with pytest.raises((KeyError, ValueError)):
            fault_from_dict({"kind": "cosmic_ray", "rate": 0.1})
        with pytest.raises(ValueError):
            fault_from_dict({"kind": "serial_bitflip", "rate": 0.1, "bogus": 1})

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            SerialBitflipFault(rate=1.5)
        with pytest.raises(ValueError, match="n_flips"):
            SerialBitflipFault(rate=0.1, n_flips=0)
        with pytest.raises(ValueError, match="direction"):
            SerialBitflipFault(rate=0.1, direction="sideways")
        with pytest.raises(ValueError, match="stall_s"):
            SequencerStallFault(rate=0.1, stall_s=0.0)
        with pytest.raises(ValueError, match="n_bits"):
            RegisterCorruptFault(rate=0.1, n_bits=0)
        with pytest.raises(ValueError, match="mode"):
            StuckPixelFault(rate=0.1, mode="half")

    def test_normalize_rejects_non_sequences(self):
        with pytest.raises((TypeError, ValueError)):
            normalize_faults({"kind": "stuck_pixel", "rate": 0.1})
        with pytest.raises((TypeError, ValueError)):
            normalize_faults("stuck_pixel")

    def test_as_fault_accepts_specs_and_mappings(self):
        spec = StuckPixelFault(rate=0.1)
        assert as_fault(spec) == spec
        assert as_fault(spec.to_dict()) == spec


# ---------------------------------------------------------------------------
# Zero-fault identity: the subsystem is invisible until used
# ---------------------------------------------------------------------------
class TestZeroFaultIdentity:
    def test_empty_faults_absent_from_dict(self):
        spec = DnaAssaySpec(probe_count=4, replicates=4, target_subset=(0, 1))
        assert "faults" not in spec.to_dict()
        assert spec.content_hash() == DnaAssaySpec(
            probe_count=4, replicates=4, target_subset=(0, 1), faults=()
        ).content_hash()

    def test_faulted_spec_round_trips(self):
        back = spec_from_dict(json.loads(BASE.to_json()))
        assert back == BASE
        assert back.content_hash() == BASE.content_hash()

    def test_faults_change_the_content_hash(self):
        clean = BASE.replace(faults=())
        assert clean.content_hash() != BASE.content_hash()

    def test_zero_fault_run_identical_to_clean_run(self):
        clean = DnaAssaySpec(probe_count=4, replicates=4, target_subset=(0, 1))
        explicit = clean.replace(faults=())
        a = Runner(seed=5).run(clean, backend="object").to_json()
        b = Runner(seed=5).run(explicit, backend="object").to_json()
        assert a == b


# ---------------------------------------------------------------------------
# Injector: typed rng, stream purity, direction gating
# ---------------------------------------------------------------------------
class TestFaultInjector:
    def test_requires_a_generator(self):
        with pytest.raises(TypeError, match="Generator"):
            FaultInjector((StuckPixelFault(rate=0.1),), rng=42)

    def test_same_seed_same_draws(self):
        faults = (
            SerialBitflipFault(rate=0.7, n_flips=2),
            SequencerStallFault(rate=0.5, stall_s=1e-4),
            StuckPixelFault(rate=0.1),
        )
        def draws(seed):
            inj = FaultInjector(faults, rng=np.random.default_rng(seed))
            return (
                [inj.frame_flips(64, CHIP_TO_HOST) for _ in range(8)],
                [inj.stall_s(i) for i in range(8)],
                inj.stuck_sites(128, 65535),
            )
        assert draws(7) == draws(7)
        assert draws(7) != draws(8)

    def test_direction_gating(self):
        inj = FaultInjector(
            (SerialBitflipFault(rate=1.0, n_flips=2, direction="host_to_chip"),),
            rng=np.random.default_rng(3),
        )
        assert inj.frame_flips(64, HOST_TO_CHIP)
        assert inj.frame_flips(64, CHIP_TO_HOST) == ()


# ---------------------------------------------------------------------------
# Runner determinism and fault accounting
# ---------------------------------------------------------------------------
class TestFaultedRuns:
    def test_same_spec_seed_byte_identical(self):
        a = Runner(seed=9).run(BASE, backend="object").to_json()
        b = Runner(seed=9).run(BASE, backend="object").to_json()
        assert a == b

    def test_fault_metrics_and_site_columns(self):
        result = Runner(seed=9).run(BASE, backend="object")
        record = result.results()[0] if hasattr(result, "results") else result
        metrics = record.metrics if hasattr(record, "metrics") else result.metrics
        for name in FaultToleranceAnalysis.REQUIRED:
            assert name in metrics, name
        records = record.records if hasattr(record, "records") else result.records
        assert "site_dead" in records and "site_silent" in records

    def test_clean_runs_lack_fault_columns(self):
        clean = BASE.replace(faults=())
        result = Runner(seed=9).run(clean, backend="object")
        record = result.results()[0] if hasattr(result, "results") else result
        metrics = record.metrics if hasattr(record, "metrics") else result.metrics
        assert "fault_detection_rate" not in metrics

    def test_vectorized_backend_rejected(self):
        with pytest.raises(ValueError, match="vectorized"):
            Runner(seed=9).run(BASE, backend="vectorized")


# ---------------------------------------------------------------------------
# Campaign axes: dotted keys, 64-point executor parity, cache round trip
# ---------------------------------------------------------------------------
class TestFaultCampaigns:
    def test_dotted_axis_rewrites_every_entry(self):
        plan = CAMPAIGN.compile(seed=11)
        rates = {point.spec.faults[0]["rate"] for point in plan.points}
        assert rates == {0.0, 0.1, 0.3, 0.6}
        for point in plan.points:
            assert point.spec.faults[1]["rate"] == point.spec.faults[0]["rate"]

    def test_dotted_axis_validation(self):
        clean = BASE.replace(faults=())
        with pytest.raises(ValueError, match="non-empty tuple of mappings"):
            CampaignSpec(base=clean, grid={"faults.rate": (0.1,)})
        with pytest.raises(ValueError, match="stall_s"):
            CampaignSpec(base=BASE, grid={"faults.stall_s": (1e-3,)})
        with pytest.raises(ValueError, match="not on DnaAssaySpec"):
            CampaignSpec(base=BASE, grid={"bogus.rate": (0.1,)})

    def test_64_points(self, serial_faulted):
        assert len(serial_faulted) == CAMPAIGN.n_points == 64

    @pytest.mark.parametrize("executor,workers", [
        ("thread", 3), ("process", 2), ("batched", None)
    ])
    def test_executor_parity(self, serial_faulted, executor, workers):
        other = run_campaign(CAMPAIGN, seed=11, executor=executor, workers=workers)
        assert _jsons(other) == _jsons(serial_faulted)

    def test_cache_round_trip_byte_identical(self, serial_faulted, tmp_path):
        cold = run_campaign(CAMPAIGN, seed=11, cache=tmp_path / "cache")
        assert cold.manifest["cache"]["computed"] == 64
        warm = run_campaign(CAMPAIGN, seed=11, cache=tmp_path / "cache")
        assert warm.manifest["cache"]["hits"] == 64
        assert warm.manifest["cache"]["computed"] == 0
        reference = _jsons(serial_faulted)
        assert _jsons(cold) == reference
        assert _jsons(warm) == reference

    def test_axis_name_flows_into_manifest(self, serial_faulted):
        assert "faults.rate" in serial_faulted.manifest["campaign"]["grid"]
        assignments = [
            entry["assignment"] for entry in serial_faulted.manifest["points"]
        ]
        assert all("faults.rate" in assignment for assignment in assignments)


# ---------------------------------------------------------------------------
# Failure capture: executors, cache, job manager
# ---------------------------------------------------------------------------
FAILING = CampaignSpec(
    base=BASE, grid={"faults.rate": (0.1, 0.2)}, replicates=1,
    name="faults-vectorized", backend="vectorized",
)


class TestFailureCapture:
    def test_executor_raises_without_capture(self):
        plan = FAILING.compile(seed=1)
        with pytest.raises(ValueError, match="vectorized"):
            list(SerialExecutor().run(plan, backend="vectorized"))

    def test_executor_captures_errors(self):
        plan = FAILING.compile(seed=1)
        outcomes = list(
            SerialExecutor().run(plan, backend="vectorized", capture_errors=True)
        )
        assert len(outcomes) == 2
        for outcome in outcomes:
            assert not outcome.ok
            assert outcome.result is None
            assert "ValueError" in outcome.error

    def test_job_manager_routes_failures_into_status(self, tmp_path):
        manager = JobManager(
            workers=1, cache=tmp_path / "cache", root=tmp_path / "jobs"
        )
        try:
            job = manager.submit(FAILING, seed=1, backend="vectorized")
            manager.wait(job.id, timeout=60)
            status = manager.status(job.id)
            assert status["status"] == "done"
            assert status["n_failed"] == 2
            assert len(status["failed_points"]) == 2
            for entry in status["failed_points"]:
                assert "ValueError" in entry["error"]
                assert {"point", "seed", "error"} <= set(entry)
            assert status["cache"]["failed"] == 2
            assert status["cache"]["computed"] == 0
        finally:
            manager.shutdown()


# ---------------------------------------------------------------------------
# Resilient readout controller
# ---------------------------------------------------------------------------
def _fresh_chip(seed=3, recorder=None):
    chip = DnaMicroarrayChip(
        ChipSpecs(rows=16, cols=8), rng=np.random.default_rng(seed),
        recorder=recorder,
    )
    chip.measure_currents(
        np.full((chip.specs.rows, chip.specs.cols), 1e-9), frame_s=1e-3,
        rng=np.random.default_rng(seed + 1),
    )
    return chip


class TestResilientReadout:
    def test_clean_path_matches_plain_readout(self):
        chip = _fresh_chip()
        outcome = read_counters_resilient(chip)
        assert outcome.counters == chip.read_counters_serial()
        assert outcome.dead_sites == ()
        assert outcome.frames_corrupted == outcome.frames_lost == 0

    def test_recovers_from_transient_flips(self):
        chip = _fresh_chip(recorder=TraceRecorder())
        chip.link.injector = FaultInjector(
            (SerialBitflipFault(rate=0.5, n_flips=2),),
            rng=np.random.default_rng(9), recorder=chip.recorder,
        )
        outcome = read_counters_resilient(chip, ReadoutPolicy(max_retries=4))
        assert outcome.frames_corrupted > 0
        assert outcome.frames_recovered + outcome.frames_lost == (
            outcome.frames_corrupted
        )
        assert len(outcome.counters) == chip.specs.sites
        kinds = {event.kind for event in chip.recorder.trace()}
        assert "fault.inject" in kinds
        assert "readout.detect" in kinds and "readout.retry" in kinds

    def test_giveup_degrades_to_dead_sites(self):
        chip = _fresh_chip(recorder=TraceRecorder())
        chip.link.injector = FaultInjector(
            (SerialBitflipFault(rate=1.0, n_flips=1),),
            rng=np.random.default_rng(9), recorder=chip.recorder,
        )
        outcome = read_counters_resilient(chip, ReadoutPolicy(max_retries=1))
        assert outcome.frames_lost > 0
        assert outcome.dead_sites
        assert all(outcome.counters[i] == 0 for i in outcome.dead_sites)
        kinds = {event.kind for event in chip.recorder.trace()}
        assert "readout.giveup" in kinds

    def test_register_corruption_detected_and_restored(self):
        chip = _fresh_chip(recorder=TraceRecorder())
        chip.link.injector = FaultInjector(
            (RegisterCorruptFault(rate=1.0, n_bits=1),),
            rng=np.random.default_rng(9), recorder=chip.recorder,
        )
        outcome = read_counters_resilient(chip)
        assert outcome.registers_checked > 0
        assert outcome.registers_corrupted > 0
        assert outcome.registers_restored <= outcome.registers_corrupted

    def test_trace_is_deterministic(self):
        def capture():
            chip = _fresh_chip(recorder=TraceRecorder())
            chip.link.injector = FaultInjector(
                (SerialBitflipFault(rate=0.5, n_flips=2),),
                rng=np.random.default_rng(9), recorder=chip.recorder,
            )
            read_counters_resilient(chip)
            return chip.recorder.trace().to_jsonl()
        assert capture() == capture()


# ---------------------------------------------------------------------------
# Replay: failing-frame attribution, multi-frame corruption
# ---------------------------------------------------------------------------
REPLAY_SPEC = DnaAssaySpec(probe_count=4, replicates=2, target_subset=(0, 1))


class TestReplayAttribution:
    def test_clean_replay(self):
        replay = replay_readout(REPLAY_SPEC, seed=0)
        assert replay.ok and replay.failed_frame is None

    def test_single_frame_failure_is_attributed(self):
        replay = replay_readout(REPLAY_SPEC, seed=0, flip_bits=[5, 9], flip_frame=1)
        assert not replay.ok
        assert replay.failed_frame == 1
        assert replay.readout_error.startswith("response chunk 1:")

    def test_multi_frame_corruption_reports_first_failure(self):
        replay = replay_readout(
            REPLAY_SPEC, seed=0, flip_bits=[5, 9],
            flip_frames={0: [5, 9], 1: [7]},
        )
        assert not replay.ok
        assert replay.failed_frame == 0
        assert replay.readout_error.startswith("response chunk 0:")


# ---------------------------------------------------------------------------
# fault_tolerance analysis
# ---------------------------------------------------------------------------
class TestFaultToleranceAnalysis:
    def test_default_analysis_picks_fault_tolerance(self, serial_faulted):
        report = serial_faulted.analyze()
        assert report.analysis["kind"] == "fault_tolerance"

    def test_report_is_deterministic(self, serial_faulted):
        first = serial_faulted.analyze("fault_tolerance").to_json()
        second = serial_faulted.analyze("fault_tolerance").to_json()
        assert first == second

    def test_scalars_and_table(self, serial_faulted):
        report = serial_faulted.analyze("fault_tolerance")
        scalars = report.scalars
        assert scalars["frames_total"] > 0
        assert scalars["n_points"] == 64
        for name, ci in (
            ("detection_rate", "detection"),
            ("site_survival", "site_survival"),
            ("recovery_yield", "recovery"),
        ):
            assert 0.0 <= scalars[name] <= 1.0
            assert scalars[f"{ci}_ci_low"] <= scalars[name] + 1e-12
            assert scalars[name] <= scalars[f"{ci}_ci_high"] + 1e-12
        table = report.tables[0]
        assert table.headers[0] == "faults.rate"
        assert len(table.rows) == 4

    def test_missing_metrics_rejected(self, tmp_path):
        clean = CampaignSpec(
            base=BASE.replace(faults=()),
            grid={"concentration": (1e-7, 1e-6)}, replicates=1,
        )
        result = run_campaign(clean, seed=1)
        with pytest.raises(ValueError, match="fault_"):
            result.analyze("fault_tolerance")
