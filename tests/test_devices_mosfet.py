"""MOSFET model: operating regions, monotonicity, inverse solve."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mismatch import MismatchSample
from repro.core.process import C5_PROCESS
from repro.devices.mosfet import Mosfet


@pytest.fixture
def nmos():
    return Mosfet(width=2e-6, length=1e-6)


class TestRegions:
    def test_strong_inversion_magnitude(self, nmos):
        # beta*(Vgs-Vth)^2/2n-ish: ~40-60 uA at Vgs=1.5, W/L=2.
        current = nmos.ids(1.5, 2.5)
        assert 20e-6 < current < 100e-6

    def test_subthreshold_is_exponential(self, nmos):
        i1 = nmos.ids(0.45, 2.5)
        i2 = nmos.ids(0.45 + 0.1, 2.5)
        # One decade per ~n*Vt*ln(10) = 86 mV: 100 mV -> > 8x.
        assert 5 < i2 / i1 < 25

    def test_cutoff_tiny(self, nmos):
        assert nmos.ids(0.0, 2.5) < 1e-12

    def test_triode_less_than_saturation(self, nmos):
        assert nmos.ids(2.0, 0.05) < nmos.ids(2.0, 2.5)

    def test_saturation_flat(self, nmos):
        # Channel-length modulation only: a few % per volt.
        i1 = nmos.ids(1.5, 2.0)
        i2 = nmos.ids(1.5, 3.0)
        assert 1.0 < i2 / i1 < 1.1

    def test_negative_vds_antisymmetric(self, nmos):
        # Swapping source/drain flips the current sign.
        forward = nmos.ids(1.5, 0.3)
        backward = nmos.ids(1.2, -0.3)
        assert backward == pytest.approx(-forward, rel=1e-9)

    def test_monotone_in_vgs(self, nmos):
        vgs = np.linspace(0.0, 5.0, 60)
        currents = [nmos.ids(v, 2.5) for v in vgs]
        assert all(b > a for a, b in zip(currents, currents[1:]))


class TestGeometryAndMismatch:
    def test_wider_device_more_current(self):
        narrow = Mosfet(1e-6, 1e-6)
        wide = Mosfet(4e-6, 1e-6)
        assert wide.ids(1.5, 2.5) == pytest.approx(4 * narrow.ids(1.5, 2.5), rel=0.01)

    def test_vth_shift_shifts_current(self):
        shifted = Mosfet(2e-6, 1e-6, mismatch=MismatchSample(delta_vth=0.05, delta_beta_rel=0.0))
        nominal = Mosfet(2e-6, 1e-6)
        assert shifted.ids(1.5, 2.5) < nominal.ids(1.5, 2.5)
        assert shifted.ids(1.55, 2.5) == pytest.approx(nominal.ids(1.5, 2.5), rel=0.02)

    def test_beta_error_scales_current(self):
        fat = Mosfet(2e-6, 1e-6, mismatch=MismatchSample(delta_vth=0.0, delta_beta_rel=0.1))
        nominal = Mosfet(2e-6, 1e-6)
        assert fat.ids(1.5, 2.5) == pytest.approx(1.1 * nominal.ids(1.5, 2.5), rel=0.001)

    def test_pmos_uses_pmos_parameters(self):
        pmos = Mosfet(2e-6, 1e-6, polarity="p")
        nmos = Mosfet(2e-6, 1e-6, polarity="n")
        assert pmos.ids(1.5, 2.5) < nmos.ids(1.5, 2.5)  # lower mobility

    def test_invalid_polarity(self):
        with pytest.raises(ValueError):
            Mosfet(1e-6, 1e-6, polarity="x")

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Mosfet(0.0, 1e-6)

    def test_gate_capacitance(self, nmos):
        expected = C5_PROCESS.c_ox * 2e-6 * 1e-6
        assert nmos.gate_capacitance == pytest.approx(expected)

    def test_junction_leakage_positive(self, nmos):
        assert nmos.junction_leakage() > 0


class TestSmallSignal:
    def test_gm_positive_and_sane(self, nmos):
        gm = nmos.gm(1.5, 2.5)
        # gm = dI/dVgs ~ 2I/(Vov) ~ 120 uS here.
        assert 50e-6 < gm < 300e-6

    def test_gm_over_id_weak_inversion_limit(self, nmos):
        # In weak inversion gm/Id -> 1/(n*Vt) ~ 26.7 1/V.
        ratio = nmos.gm_over_id(0.4, 2.5)
        assert 20 < ratio < 28

    def test_gm_over_id_strong_lower(self, nmos):
        assert nmos.gm_over_id(2.5, 2.5) < nmos.gm_over_id(0.5, 2.5)

    def test_gds_positive(self, nmos):
        assert nmos.gds(1.5, 2.5) > 0

    def test_flicker_corner_positive(self, nmos):
        corner = nmos.flicker_corner_hz(1.2, 2.5)
        assert 1e2 < corner < 1e8


class TestInverseSolve:
    @pytest.mark.parametrize("target", [1e-12, 1e-9, 1e-6, 1e-4])
    def test_roundtrip(self, nmos, target):
        vgs = nmos.vgs_for_current(target, vds=2.5)
        assert nmos.ids(vgs, 2.5) == pytest.approx(target, rel=1e-5)

    def test_rejects_nonpositive(self, nmos):
        with pytest.raises(ValueError):
            nmos.vgs_for_current(0.0)

    def test_rejects_unreachable(self, nmos):
        with pytest.raises(ValueError):
            nmos.vgs_for_current(1.0)  # 1 A is beyond this device

    @given(exp=st.floats(min_value=-11.5, max_value=-4.5))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, exp):
        device = Mosfet(2e-6, 1e-6)
        target = 10.0**exp
        vgs = device.vgs_for_current(target, vds=2.5)
        assert device.ids(vgs, 2.5) == pytest.approx(target, rel=1e-4)
