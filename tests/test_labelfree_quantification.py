"""Label-free sensing (Section 2 extension) and concentration quantification."""

import numpy as np
import pytest

from repro.chip import DnaMicroarrayChip
from repro.dna import (
    CalibrationCurve,
    CalibrationPoint,
    ConcentrationEstimator,
    ProbeLayout,
    Sample,
    perfect_target_for,
)
from repro.electrochem.labelfree import (
    ImpedanceSensor,
    MassResonator,
    compare_detection_limits,
)


class TestImpedanceSensor:
    def test_capacitance_drops_with_coverage(self):
        sensor = ImpedanceSensor()
        assert sensor.capacitance(0.5) < sensor.capacitance(0.0)
        assert sensor.capacitance(1.0) < sensor.capacitance(0.5)

    def test_signal_monotone(self):
        sensor = ImpedanceSensor()
        signals = [sensor.signal(theta) for theta in (0.0, 0.1, 0.5, 1.0)]
        assert all(b > a for a, b in zip(signals, signals[1:]))

    def test_zero_coverage_zero_signal(self):
        assert ImpedanceSensor().signal(0.0) == 0.0

    def test_full_coverage_large_signal(self):
        # A nm-thick DNA layer over a 1 nm double layer: tens of % change.
        assert ImpedanceSensor().signal(1.0) > 0.3

    def test_detection_limit_scales_with_resolution(self):
        fine = ImpedanceSensor(capacitance_resolution=1e-4)
        coarse = ImpedanceSensor(capacitance_resolution=1e-2)
        assert fine.detection_limit_occupancy() < coarse.detection_limit_occupancy()

    def test_bare_capacitance_magnitude(self):
        # ~30 eps0 / 1 nm over 1e-8 m^2: nF scale.
        assert 1e-9 < ImpedanceSensor().bare_capacitance() < 1e-5

    def test_invalid_occupancy(self):
        with pytest.raises(ValueError):
            ImpedanceSensor().capacitance(1.5)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ImpedanceSensor(electrode_area=0.0)
        with pytest.raises(ValueError):
            ImpedanceSensor(capacitance_resolution=2.0)


class TestMassResonator:
    def test_shift_is_downward(self):
        assert MassResonator().frequency_shift(0.5) < 0

    def test_shift_linear_in_occupancy(self):
        res = MassResonator()
        assert res.signal(1.0) == pytest.approx(2 * res.signal(0.5))

    def test_longer_targets_more_signal(self):
        short = MassResonator(target_length_bases=20)
        long = MassResonator(target_length_bases=2000)
        assert long.signal(0.1) == pytest.approx(100 * short.signal(0.1))

    def test_detection_limit_small(self):
        # GHz resonator with Hz-scale resolution: ppm-level coverage.
        assert MassResonator().detection_limit_occupancy() < 1e-4

    def test_areal_mass_magnitude(self):
        # Full coverage of 200-mers at 3e16 /m^2: ~ mg/m^2 scale.
        mass = MassResonator().areal_mass(1.0)
        assert 1e-6 < mass < 1e-2

    def test_invalid_occupancy(self):
        with pytest.raises(ValueError):
            MassResonator().areal_mass(-0.1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            MassResonator(resonance_hz=0.0)


class TestComparison:
    def test_all_principles_reported(self):
        limits = compare_detection_limits()
        assert len(limits) == 3
        assert all(0 < v <= 1 for v in limits.values())

    def test_labelled_redox_most_sensitive(self):
        # The paper's chips use labels because cycling + enzyme
        # amplification beats the label-free floors (for now).
        limits = compare_detection_limits()
        redox = limits["redox cycling (enzyme label)"]
        assert redox <= limits["impedance (label-free)"]
        assert redox <= limits["mass resonator (label-free)"]

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            compare_detection_limits(redox_background_a=1e-9, redox_full_scale_a=1e-12)


class TestCalibrationCurve:
    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            CalibrationCurve([CalibrationPoint(1e-6, 100.0)])

    def test_needs_monotone_concentrations(self):
        with pytest.raises(ValueError):
            CalibrationCurve([
                CalibrationPoint(1e-6, 100.0),
                CalibrationPoint(1e-7, 200.0),
            ])

    def test_needs_monotone_counts(self):
        with pytest.raises(ValueError):
            CalibrationCurve([
                CalibrationPoint(1e-7, 300.0),
                CalibrationPoint(1e-6, 100.0),
            ])

    def test_interpolates_log_log(self):
        curve = CalibrationCurve([
            CalibrationPoint(1e-7, 100.0),
            CalibrationPoint(1e-5, 10_000.0),
        ])
        # Count 1000 sits one decade up: concentration 1e-6.
        assert curve.concentration_for_count(1000.0) == pytest.approx(1e-6, rel=1e-6)

    def test_zero_count(self):
        curve = CalibrationCurve([
            CalibrationPoint(1e-7, 100.0),
            CalibrationPoint(1e-5, 10_000.0),
        ])
        assert curve.concentration_for_count(0.0) == 0.0

    def test_in_range(self):
        curve = CalibrationCurve([
            CalibrationPoint(1e-7, 100.0),
            CalibrationPoint(1e-5, 10_000.0),
        ])
        assert curve.in_range(500.0)
        assert not curve.in_range(50.0)


class TestConcentrationEstimator:
    @pytest.fixture(scope="class")
    def setup(self):
        chip = DnaMicroarrayChip(rng=71)
        chip.configure_bias(0.45, -0.25)
        chip.auto_calibrate(frame_s=0.1, rng=72)
        layout = ProbeLayout.random_panel(4, replicates=16, rng=73)
        estimator = ConcentrationEstimator(chip, layout)
        probe = layout.probes()[0]
        estimator.calibrate(probe, [1e-7, 1e-6, 1e-5, 1e-4], rng=74)
        return estimator, probe

    def test_recovers_known_concentration(self, setup):
        estimator, probe = setup
        sample = Sample({perfect_target_for(probe, total_length=2000): 3e-6})
        result = estimator.quantify(probe, sample, rng=75)
        assert result.estimated_concentration == pytest.approx(3e-6, rel=0.15)
        assert result.in_calibrated_range

    def test_confidence_interval_brackets_estimate(self, setup):
        estimator, probe = setup
        sample = Sample({perfect_target_for(probe, total_length=2000): 1e-5})
        result = estimator.quantify(probe, sample, rng=76)
        assert result.ci_low <= result.estimated_concentration <= result.ci_high
        assert result.relative_uncertainty < 0.5

    def test_absent_target_reads_below_loq(self, setup):
        # Background counts clamp to the lowest standard and are flagged
        # as outside the calibrated range (below limit of quantification).
        estimator, probe = setup
        result = estimator.quantify(probe, Sample(), rng=77)
        assert result.estimated_concentration <= 1e-7
        assert not result.in_calibrated_range

    def test_unknown_probe_rejected(self, setup):
        estimator, probe = setup
        from repro.dna import DnaSequence, Probe

        stranger = Probe("stranger", DnaSequence.random(20, np.random.default_rng(1)))
        with pytest.raises(ValueError):
            estimator.calibrate(stranger, [1e-7, 1e-6], rng=78)
        with pytest.raises(KeyError):
            estimator.quantify(stranger, Sample(), rng=79)

    def test_calibration_requires_standards(self, setup):
        estimator, probe = setup
        with pytest.raises(ValueError):
            estimator.calibrate(probe, [], rng=80)


class TestCalibrationCurveExtrapolation:
    CURVE_POINTS = [
        CalibrationPoint(1e-7, 100.0),
        CalibrationPoint(1e-6, 1000.0),
        CalibrationPoint(1e-5, 10_000.0),
    ]

    def test_clamp_is_the_explicit_default(self):
        curve = CalibrationCurve(list(self.CURVE_POINTS))
        assert curve.extrapolation == "clamp"
        # Out-of-range counts pin to the edge standards (the historical
        # implicit np.interp behaviour, now spelled out).
        assert curve.concentration_for_count(50.0) == pytest.approx(1e-7)
        assert curve.concentration_for_count(50_000.0) == pytest.approx(1e-5)

    def test_raise_mode_names_the_window(self):
        curve = CalibrationCurve(list(self.CURVE_POINTS), extrapolation="raise")
        with pytest.raises(ValueError, match="calibrated window"):
            curve.concentration_for_count(50.0)
        with pytest.raises(ValueError, match="calibrated window"):
            curve.concentration_for_count(50_000.0)
        # In-range inversion is unaffected.
        assert curve.concentration_for_count(1000.0) == pytest.approx(1e-6)

    def test_fit_mode_extends_the_loglog_line(self):
        curve = CalibrationCurve(list(self.CURVE_POINTS), extrapolation="fit")
        # The standards lie exactly on count = 1e9 * conc, so the global
        # fit extrapolates it: count 10 -> 1e-8, count 1e5 -> 1e-4.
        assert curve.concentration_for_count(10.0) == pytest.approx(1e-8, rel=1e-6)
        assert curve.concentration_for_count(1e5) == pytest.approx(1e-4, rel=1e-6)

    def test_per_call_override(self):
        curve = CalibrationCurve(list(self.CURVE_POINTS))  # clamp by default
        with pytest.raises(ValueError, match="calibrated window"):
            curve.concentration_for_count(50.0, extrapolation="raise")
        assert curve.concentration_for_count(
            10.0, extrapolation="fit"
        ) == pytest.approx(1e-8, rel=1e-6)

    def test_zero_count_is_zero_in_every_mode(self):
        for mode in ("clamp", "raise", "fit"):
            curve = CalibrationCurve(list(self.CURVE_POINTS), extrapolation=mode)
            assert curve.concentration_for_count(0.0) == 0.0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="extrapolation"):
            CalibrationCurve(list(self.CURVE_POINTS), extrapolation="panic")
        curve = CalibrationCurve(list(self.CURVE_POINTS))
        with pytest.raises(ValueError, match="extrapolation"):
            curve.concentration_for_count(1000.0, extrapolation="panic")

    def test_fit_routes_through_inference(self):
        """The curve's regression is the shared inference fit — one
        log-linear implementation in the library."""
        from repro.inference.doseresponse import LogLinearFit

        curve = CalibrationCurve(list(self.CURVE_POINTS))
        fit = curve.fit()
        assert isinstance(fit, LogLinearFit)
        assert fit.log_y
        assert fit.slope == pytest.approx(1.0)
        assert curve.count_range == (100.0, 10_000.0)
