"""End-to-end HTTP service: submit, poll, results, analysis, errors."""

import json

import pytest

from repro.campaigns import CampaignSpec
from repro.experiments import DnaAssaySpec
from repro.service import ServiceClient, ServiceError, start_server

BASE = DnaAssaySpec(probe_count=4, replicates=4, target_subset=(0, 1))
CAMPAIGN = CampaignSpec(
    base=BASE, grid={"concentration": (1e-7, 1e-6)}, replicates=2, name="server-test"
)


@pytest.fixture()
def service(tmp_path):
    server, thread = start_server(
        port=0, cache=tmp_path / "cache", root=tmp_path / "jobs"
    )
    yield ServiceClient(server.url)
    server.shutdown()
    server.server_close()
    server.manager.shutdown()
    thread.join(timeout=10)


def test_health_reports_the_library_version(service):
    import repro

    assert service.health() == {"ok": True, "version": repro.__version__}


def test_submit_poll_results_round_trip(service):
    job = service.submit(CAMPAIGN, seed=1)
    assert job["status"] in ("queued", "running", "done")
    final = service.wait(job["id"])
    assert final["status"] == "done"
    assert final["n_done"] == 4
    payload = service.results(job["id"])
    assert payload["manifest"]["name"] == "server-test"
    assert [line["point"] for line in payload["results"]] == [0, 1, 2, 3]
    assert all("records" in line["result"] for line in payload["results"])
    listed = service.jobs()
    assert [entry["id"] for entry in listed] == [job["id"]]


def test_resubmission_serves_from_cache_byte_identically(service):
    cold = service.submit(CAMPAIGN, seed=1)
    cold_status = service.wait(cold["id"])
    warm = service.submit(CAMPAIGN, seed=1)
    warm_status = service.wait(warm["id"])
    assert cold_status["cache"]["computed"] == 4
    assert warm_status["cache"] == {
        "n_points": 4, "n_unique": 4, "hits": 4, "computed": 0, "replayed": 0, "failed": 0,
    }
    cold_results = {l["point"]: l["result"] for l in service.results(cold["id"])["results"]}
    warm_results = {l["point"]: l["result"] for l in service.results(warm["id"])["results"]}
    assert json.dumps(warm_results, sort_keys=True) == json.dumps(cold_results, sort_keys=True)
    # The derived statistical report is byte-identical too.
    cold_report = service.analysis(cold["id"])["analysis"]
    warm_report = service.analysis(warm["id"])["analysis"]
    assert json.dumps(warm_report, sort_keys=True) == json.dumps(cold_report, sort_keys=True)
    stats = service.cache_stats()
    assert stats["enabled"] is True
    assert stats["cache"]["hits"] >= 4


def test_analysis_accepts_an_explicit_kind(service):
    job = service.submit(CAMPAIGN, seed=1)
    service.wait(job["id"])
    report = service.analysis(job["id"], analysis="dose_response")["analysis"]
    assert report["analysis"]["kind"] == "dose_response"


def test_cancel_endpoint_flags_the_job(service):
    job = service.submit(CAMPAIGN, seed=1)
    cancelled = service.cancel(job["id"])
    assert cancelled["id"] == job["id"]
    final = service.wait(job["id"])
    assert final["status"] in ("done", "cancelled")  # raced the worker


def test_error_paths_return_structured_json(service):
    with pytest.raises(ServiceError) as not_found:
        service.status("job-9999")
    assert not_found.value.status == 404
    with pytest.raises(ServiceError) as bad_submit:
        service._request("POST", "/jobs", {"nope": 1})
    assert bad_submit.value.status == 400
    with pytest.raises(ServiceError) as bad_kind:
        service.submit({"base": {"kind": "bogus"}})
    assert bad_kind.value.status == 400
    with pytest.raises(ServiceError) as bad_option:
        service._request("POST", "/jobs", {"campaign": CAMPAIGN.to_dict(), "evil": 1})
    assert bad_option.value.status == 400
    with pytest.raises(ServiceError) as bad_route:
        service._request("GET", "/nope")
    assert bad_route.value.status == 404


def test_unknown_analysis_kind_is_a_client_error(service):
    job = service.submit(CAMPAIGN, seed=1)
    service.wait(job["id"])
    with pytest.raises(ServiceError) as bad_kind:
        service.analysis(job["id"], analysis="bogus")
    assert bad_kind.value.status == 400
    assert "unknown analysis" in str(bad_kind.value)


def test_unexpected_server_fault_returns_json_500(tmp_path):
    server, thread = start_server(port=0)
    try:
        client = ServiceClient(server.url)

        def boom():
            raise RuntimeError("stats backend exploded")

        server.manager.cache_stats = boom
        with pytest.raises(ServiceError) as fault:
            client.cache_stats()
        # A server-side fault is a JSON 500, not a dropped connection —
        # and not a 400 blaming the client.
        assert fault.value.status == 500
        assert "stats backend exploded" in str(fault.value)
    finally:
        server.shutdown()
        server.server_close()
        server.manager.shutdown()
        thread.join(timeout=10)


def test_results_of_an_unfinished_job_conflict(service, tmp_path):
    # A queued-then-cancelled job has no results to serve.
    job = service.submit(CAMPAIGN, seed=1)
    service.cancel(job["id"])
    final = service.wait(job["id"])
    if final["status"] == "cancelled" and final["n_done"] == 0:
        with pytest.raises(ServiceError) as conflict:
            service.results(job["id"])
        assert conflict.value.status == 409


def test_server_without_cache_reports_disabled(tmp_path):
    server, thread = start_server(port=0)
    try:
        client = ServiceClient(server.url)
        stats = client.cache_stats()
        assert stats == {"cache": None, "enabled": False}
        job = client.submit(CAMPAIGN, seed=1)
        final = client.wait(job["id"])
        assert final["status"] == "done"
        assert final["cache"] is None
    finally:
        server.shutdown()
        server.server_close()
        server.manager.shutdown()
        thread.join(timeout=10)
