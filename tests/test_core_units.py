"""Unit helpers: formatting, parsing, physical constants."""

import math

import pytest

from repro.core import units


class TestConstants:
    def test_prefix_values(self):
        assert units.pA == 1e-12
        assert units.nA == 1e-9
        assert units.fF == 1e-15
        assert units.um == 1e-6
        assert units.MHz == 1e6

    def test_thermal_voltage_at_room_temperature(self):
        vt = units.thermal_voltage(300.0)
        assert 0.0258 < vt < 0.0259

    def test_thermal_voltage_scales_linearly(self):
        assert units.thermal_voltage(600.0) == pytest.approx(2 * units.thermal_voltage(300.0))

    def test_thermal_voltage_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.thermal_voltage(0.0)

    def test_faraday_and_avogadro_consistent(self):
        assert units.FARADAY == pytest.approx(
            units.ELEMENTARY_CHARGE * units.AVOGADRO, rel=1e-6
        )


class TestSiFormat:
    def test_nanoamp(self):
        assert units.si_format(2.35e-9, "A") == "2.35 nA"

    def test_picoamp(self):
        assert units.si_format(1e-12, "A") == "1 pA"

    def test_megahertz(self):
        assert units.si_format(32e6, "Hz") == "32 MHz"

    def test_unity(self):
        assert units.si_format(5.0, "V") == "5 V"

    def test_zero(self):
        assert units.si_format(0.0, "A") == "0 A"

    def test_negative_value_keeps_sign(self):
        assert units.si_format(-3e-3, "V") == "-3 mV"

    def test_no_unit(self):
        assert units.si_format(1500.0) == "1.5 k"

    def test_digits_control(self):
        assert units.si_format(1.23456e-9, "A", digits=5) == "1.2346 nA"

    def test_very_small_value_uses_atto(self):
        assert "a" in units.si_format(3e-18, "A")

    def test_infinity_passthrough(self):
        assert "inf" in units.si_format(float("inf"), "A")


class TestSiParse:
    def test_parse_nanoamp(self):
        assert units.si_parse("100 nA") == pytest.approx(100e-9)

    def test_parse_no_space(self):
        assert units.si_parse("1.5pF") == pytest.approx(1.5e-12)

    def test_parse_plain_number(self):
        assert units.si_parse("42") == 42.0

    def test_parse_micro_sign(self):
        assert units.si_parse("3 µV") == pytest.approx(3e-6)

    def test_parse_bare_meter_is_unit_not_milli(self):
        assert units.si_parse("5 m") == 5.0

    def test_parse_milli_with_unit(self):
        assert units.si_parse("5 mV") == pytest.approx(5e-3)

    def test_parse_empty_raises(self):
        with pytest.raises(ValueError):
            units.si_parse("")

    def test_parse_garbage_raises(self):
        with pytest.raises(ValueError):
            units.si_parse("abc")

    def test_roundtrip(self):
        for value in (1e-12, 3.3e-9, 4.7e-6, 2.2e-3, 1.0, 5e3, 32e6):
            formatted = units.si_format(value, "X", digits=9)
            assert units.si_parse(formatted) == pytest.approx(value, rel=1e-6)


class TestDecibels:
    def test_db_of_ten(self):
        assert units.db(10.0) == pytest.approx(10.0)

    def test_db20_of_ten(self):
        assert units.db20(10.0) == pytest.approx(20.0)

    def test_from_db_inverse(self):
        assert units.from_db(units.db(123.0)) == pytest.approx(123.0)

    def test_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.db(0.0)

    def test_decades(self):
        assert units.decades(1e-12, 1e-7) == pytest.approx(5.0)

    def test_decades_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.decades(0.0, 1.0)
