"""campaigns/report.py: tables, delegation to inference, edge cases."""

import pytest

from repro.campaigns import (
    CampaignSpec,
    JsonlResultStore,
    MemoryResultStore,
    manifest_summary,
    metrics_table,
    report_rows,
    run_campaign,
)
from repro.experiments import DnaAssaySpec
from repro.inference.tabulate import CampaignFrame
from repro.inference.tabulate import report_rows as frame_report_rows

CAMPAIGN = CampaignSpec(
    base=DnaAssaySpec(probe_count=4, replicates=4, target_subset=(0, 1)),
    grid={"concentration": (1e-7, 1e-6)},
    replicates=2,
    name="report-test",
)


@pytest.fixture(scope="module")
def result():
    return run_campaign(CAMPAIGN, seed=5)


class TestReportRows:
    def test_column_layout(self, result):
        headers, rows = report_rows(result)
        assert headers[:2] == ["point", "replicate"]
        assert "concentration" in headers
        assert "wall_s" in headers
        assert "discrimination_ratio" in headers  # shared scalar metric
        assert len(rows) == 4
        assert [row[0] for row in rows] == [0, 1, 2, 3]

    def test_requested_metrics_only(self, result):
        headers, rows = report_rows(result, metrics=["n_sites"])
        assert headers[-1] == "n_sites"
        assert all(row[-1] == 128 for row in rows)

    def test_missing_metric_renders_blank(self, result):
        headers, rows = report_rows(result, metrics=["not_a_metric"])
        assert all(row[-1] == "" for row in rows)

    def test_delegates_to_inference(self, result):
        """The campaign facade and the inference implementation must be
        the same function — tables can never drift from the frames the
        analyses read."""
        assert report_rows(result) == frame_report_rows(result)

    def test_live_and_reloaded_tables_identical(self, tmp_path):
        stored = run_campaign(CAMPAIGN, seed=5, store="jsonl", out=tmp_path / "c")
        live = metrics_table(stored)
        reloaded = metrics_table(JsonlResultStore.load(tmp_path / "c"))
        assert live == reloaded

    def test_store_and_campaign_result_interchangeable(self, result):
        assert report_rows(result) == report_rows(result.store)


class TestEdgeCases:
    def test_empty_store(self):
        store = MemoryResultStore()
        assert report_rows(store) == (["point"], [])
        assert metrics_table(store) == "(no stored results)"
        assert metrics_table(store, title="t") == "t"

    def test_partial_store_without_manifest(self, tmp_path):
        """A crashed run (results.jsonl, no manifest) still reports."""
        out = tmp_path / "partial"
        run_campaign(CAMPAIGN, seed=5, store="jsonl", out=out)
        (out / "manifest.json").unlink()
        store = JsonlResultStore.load(out)
        assert store.manifest is None
        headers, rows = report_rows(store)
        assert len(rows) == 4
        assert "discrimination_ratio" in headers

    def test_rows_sorted_even_from_completion_order(self, tmp_path):
        process = run_campaign(
            CAMPAIGN, seed=5, executor="process", workers=2, store="jsonl",
            out=tmp_path / "p",
        )
        _, rows = report_rows(JsonlResultStore.load(tmp_path / "p"))
        assert [row[0] for row in rows] == [0, 1, 2, 3]


class TestCampaignFrame:
    def test_columns(self, result):
        frame = CampaignFrame.from_store(result)
        assert frame.n_points == 4
        assert frame.axis_names == ["concentration"]
        assert frame.kinds() == ["dna_assay"]
        assert frame.points().tolist() == [0, 1, 2, 3]
        assert frame.replicates().tolist() == [0, 1, 0, 1]
        assert frame.axis("concentration").tolist() == [1e-7, 1e-7, 1e-6, 1e-6]
        assert frame.metric("n_sites").tolist() == [128.0] * 4
        assert frame.has_metric("discrimination_ratio")
        assert not frame.has_metric("nope")

    def test_group_indices(self, result):
        frame = CampaignFrame.from_store(result)
        groups = frame.group_indices("concentration")
        assert [value for value, _ in groups] == [1e-7, 1e-6]
        assert [indices.tolist() for _, indices in groups] == [[0, 1], [2, 3]]

    def test_errors(self, result):
        frame = CampaignFrame.from_store(result)
        with pytest.raises(KeyError, match="axis"):
            frame.axis("voltage")
        with pytest.raises(KeyError, match="metric"):
            frame.metric("voltage")
        with pytest.raises(TypeError, match="ResultStore"):
            CampaignFrame.from_store(42)


class TestManifestSummary:
    def test_contents(self, result):
        text = manifest_summary(result.manifest)
        assert "report-test" in text
        assert "dna_assay" in text
        assert "serial" in text

    def test_tolerates_sparse_manifest(self):
        assert "(unnamed)" in manifest_summary({})
