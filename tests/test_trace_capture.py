"""End-to-end traced replays: determinism, corruption localization,
result attachment."""

import numpy as np
import pytest

from repro.experiments import ArrayScaleSpec, DnaAssaySpec, NeuralRecordingSpec, Runner
from repro.trace import (
    SEQ_SAMPLE,
    SERIAL_FRAME,
    TraceAssertionError,
    TraceRecorder,
    assert_trace,
    check_trace,
    readout_invariants,
    record_scan_frame,
    render_frame_bits,
    replay_readout,
)
from repro.chip.sequencer import ScanTiming

SMALL_SPEC = DnaAssaySpec(probe_count=4, replicates=4, target_subset=(0, 1))


@pytest.fixture(scope="module")
def clean_replay():
    return replay_readout(SMALL_SPEC, seed=3)


@pytest.fixture(scope="module")
def corrupt_replay():
    return replay_readout(SMALL_SPEC, seed=3, flip_bits=[42, 43])


class TestReplayClean:
    def test_readout_succeeds(self, clean_replay):
        assert clean_replay.ok
        assert clean_replay.readout_error is None
        assert len(clean_replay.counters) == 128

    def test_trace_covers_the_digital_path(self, clean_replay):
        kinds = set(clean_replay.trace.kinds())
        assert {"reg.write", "seq.state", "seq.sample", "serial.frame"} <= kinds

    def test_counters_match_untraced_run(self, clean_replay):
        # The replayed chip is stream-identical to the workload's own,
        # so records agree with a plain run of the same (spec, seed).
        plain = Runner(seed=3).run(SMALL_SPEC)
        for name, column in plain.records.items():
            np.testing.assert_array_equal(
                clean_replay.result.records[name], column, err_msg=name
            )

    def test_invariants_hold(self, clean_replay):
        assert_trace(clean_replay.trace, readout_invariants())

    def test_timestamps_monotonic_per_seq(self, clean_replay):
        times = clean_replay.trace.column("time_s")
        # seq.sample events carry in-stream offsets; the capture-ordered
        # stream itself never goes backwards by more than one readout.
        assert clean_replay.trace.column("seq").tolist() == sorted(
            e.seq for e in clean_replay.trace
        )
        assert times.min() >= 0.0

    def test_run_frame_follows_calibration(self, clean_replay):
        events = clean_replay.trace.events
        cal = next(
            i for i, e in enumerate(events)
            if e.kind == "reg.write"
            and e.channel == "reg.calibration_enable"
            and e.data["value"] == 1
        )
        run = next(
            i for i, e in enumerate(events)
            if e.kind == SERIAL_FRAME and e.data["command"] == "RUN_FRAME"
        )
        assert cal < run


class TestReplayDeterminism:
    def test_same_spec_seed_is_byte_identical(self, clean_replay):
        again = replay_readout(SMALL_SPEC, seed=3)
        assert again.trace.to_jsonl() == clean_replay.trace.to_jsonl()

    def test_different_seed_differs(self, clean_replay):
        other = replay_readout(SMALL_SPEC, seed=4)
        assert other.trace.to_jsonl() != clean_replay.trace.to_jsonl()

    def test_round_trip_preserves_bytes(self, clean_replay):
        from repro.trace import TraceTable

        text = clean_replay.trace.to_jsonl()
        assert TraceTable.from_jsonl(text).to_jsonl() == text


class TestReplayCorrupt:
    def test_readout_fails_with_recorded_frame(self, corrupt_replay):
        assert not corrupt_replay.ok
        assert "checksum" in corrupt_replay.readout_error
        assert corrupt_replay.counters is None

    def test_corrupt_frame_localizes_flips(self, corrupt_replay):
        bad = [
            e for e in corrupt_replay.trace
            if e.kind == SERIAL_FRAME and not e.data["ok"]
        ]
        assert len(bad) == 1
        event = bad[0]
        assert event.data["flipped"] == [42, 43]
        sent, received = event.data["sent_bits"], event.data["received_bits"]
        assert [i for i, (s, r) in enumerate(zip(sent, received)) if s != r] == [42, 43]
        dump = render_frame_bits(event)
        assert "CORRUPT" in dump and dump.count("^") == 2

    def test_assertion_fails_with_structured_violation(self, corrupt_replay):
        with pytest.raises(TraceAssertionError) as excinfo:
            assert_trace(corrupt_replay.trace, readout_invariants())
        rules = [v.rule for v in excinfo.value.violations]
        assert "frames-intact" in rules
        violation = next(
            v for v in excinfo.value.violations if v.rule == "frames-intact"
        )
        assert violation.data["flipped"] == [42, 43]
        assert violation.channel == "serial.dout"

    def test_events_before_corruption_identical_to_clean(
        self, clean_replay, corrupt_replay
    ):
        # Corruption hits the first readout response chunk; everything
        # recorded before it is bit-for-bit the clean capture.
        clean_lines = clean_replay.trace.to_jsonl().splitlines()[1:]
        corrupt_lines = corrupt_replay.trace.to_jsonl().splitlines()[1:]
        first_diff = next(
            i for i, (a, b) in enumerate(zip(clean_lines, corrupt_lines)) if a != b
        )
        assert first_diff > 0
        assert clean_lines[:first_diff] == corrupt_lines[:first_diff]


class TestReplaySpecs:
    def test_array_scale_single_chip(self):
        spec = ArrayScaleSpec(rows=16, cols=8, backend="object")
        replay = replay_readout(spec, seed=1)
        assert replay.ok and len(replay.counters) == 128
        assert replay.result.kind == "array_scale"

    def test_array_scale_multi_chip_rejected(self):
        with pytest.raises(ValueError, match="n_chips"):
            replay_readout(ArrayScaleSpec(rows=16, cols=8, n_chips=2), seed=1)

    def test_unsupported_kind_rejected(self):
        spec = NeuralRecordingSpec(rows=16, cols=16, n_neurons=1, duration_s=0.01)
        with pytest.raises(ValueError, match="replay_readout supports"):
            replay_readout(spec, seed=1)

    def test_flip_out_of_range_propagates(self):
        with pytest.raises(IndexError):
            replay_readout(SMALL_SPEC, seed=3, flip_bits=[10_000_000])


class TestResultAttachment:
    def test_result_carries_trace(self, clean_replay):
        trace = clean_replay.result.trace
        assert trace is not None and len(trace) > 0

    def test_result_round_trips_with_trace(self, clean_replay):
        from repro.experiments import ResultSet

        back = ResultSet.from_json(clean_replay.result.to_json())
        assert back.trace == clean_replay.result.trace
        assert back.to_json() == clean_replay.result.to_json()

    def test_untraced_run_has_no_trace(self):
        result = Runner(seed=3).run(SMALL_SPEC)
        assert result.trace is None
        assert "trace" not in result.to_dict()


class TestScanFrameCapture:
    def test_covers_requested_rows_at_scan_times(self):
        scan = ScanTiming(rows=8, cols=8, channels=4, frame_rate_hz=1000.0)
        rec = TraceRecorder()
        trace = record_scan_frame(rec, scan=scan)
        samples = trace.filter(kinds=[SEQ_SAMPLE])
        assert len(samples) == 64
        # Every pixel exactly once, stamped with its in-frame offset.
        seen = {(e.data["row"], e.data["col"]) for e in samples}
        assert seen == {(r, c) for r in range(8) for c in range(8)}
        for event in samples:
            expected = scan.sample_time_s(event.data["row"], event.data["col"])
            assert event.time_s == pytest.approx(expected)
            assert event.data["slot_s"] == pytest.approx(scan.slot_time_s)
        # The clock advanced by exactly one frame.
        assert rec.now == pytest.approx(scan.frame_time_s)

    def test_row_limit(self):
        scan = ScanTiming(rows=8, cols=8, channels=4, frame_rate_hz=1000.0)
        trace = record_scan_frame(TraceRecorder(), scan=scan, rows=2)
        samples = trace.filter(kinds=[SEQ_SAMPLE])
        assert len(samples) == 16
        assert {e.data["row"] for e in samples} == {0, 1}

    def test_settling_assertion_on_captured_slots(self):
        from repro.trace import SlotSettles

        scan = ScanTiming(rows=128, cols=128, channels=16, frame_rate_hz=2000.0)
        trace = record_scan_frame(TraceRecorder(), scan=scan, rows=1)
        # The paper's 4 MHz amplifier settles the 488 ns slot...
        assert check_trace(trace, [SlotSettles(4e6)]) == []
        # ... but a 100 kHz amplifier cannot.
        slow = check_trace(trace, [SlotSettles(1e5)])
        assert len(slow) == len(trace.filter(kinds=[SEQ_SAMPLE]))
