"""ResultSet dtype-faithful serialization and concat/merge helpers."""

import json

import numpy as np
import pytest

from repro.experiments import (
    AdcTransferSpec,
    DnaAssaySpec,
    NeuralRecordingSpec,
    ResultSet,
    Runner,
    ScreeningSpec,
    stack_metrics,
)

SMALL_SPECS = [
    DnaAssaySpec(probe_count=4, replicates=4, target_subset=(0, 1)),
    NeuralRecordingSpec(
        rows=16, cols=16, n_neurons=2, diameter_range_m=(40e-6, 70e-6),
        duration_s=0.05, use_hh=False,
    ),
    ScreeningSpec(library_size=2000),
    AdcTransferSpec(points_per_decade=2),
]


# ---------------------------------------------------------------------------
# Dtype fidelity round-trip (all four workload kinds)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("spec", SMALL_SPECS, ids=lambda s: s.kind)
def test_round_trip_preserves_dtypes_and_values(spec):
    result = Runner(seed=2).run(spec)
    back = ResultSet.from_json(result.to_json())
    assert back.records.keys() == result.records.keys()
    for name, column in result.records.items():
        assert back.records[name].dtype == column.dtype, name
        np.testing.assert_array_equal(back.records[name], column, err_msg=name)
    assert back.metrics == result.metrics
    # Stability under a second round-trip (what the JSONL store relies on).
    assert back.to_json() == result.to_json()


def test_object_and_narrow_dtypes_survive():
    """The regression this guards: np.asarray on load used to flip the
    probe-name column from object to '<U..' and narrow ints to int64."""
    result = ResultSet(
        kind="x", spec={"kind": "x"}, seeds={"root": 0}, version="0",
        records={
            "name": np.asarray(["a", "bb", ""], dtype=object),
            "small": np.asarray([1, 2, 3], dtype=np.int8),
            "single": np.asarray([0.5, 1.5, 2.5], dtype=np.float32),
            "flag": np.asarray([True, False, True]),
        },
    )
    back = ResultSet.from_json(result.to_json())
    assert back.records["name"].dtype == object
    assert back.records["small"].dtype == np.int8
    assert back.records["single"].dtype == np.float32
    assert back.records["flag"].dtype == bool
    naive = np.asarray(json.loads(result.to_json())["records"]["name"])
    assert naive.dtype != object  # the old behaviour really was lossy


def test_payloads_without_dtypes_still_load():
    result = Runner(seed=2).run(SMALL_SPECS[3])
    payload = json.loads(result.to_json())
    del payload["dtypes"]
    back = ResultSet.from_dict(payload)
    np.testing.assert_array_equal(back.column("count"), result.column("count"))


def test_without_artifacts_drops_only_artifacts():
    result = Runner(seed=2).run(SMALL_SPECS[0])
    assert result.artifacts
    bare = result.without_artifacts()
    assert bare.artifacts == {}
    assert bare.to_json() == result.to_json()
    assert result.artifacts  # original untouched


# ---------------------------------------------------------------------------
# concat / stack_metrics
# ---------------------------------------------------------------------------
def test_concat_stacks_records_with_point_column():
    runner = Runner(seed=4)
    spec = SMALL_SPECS[0]
    results = runner.run_batch([spec.replace(concentration=c) for c in (1e-7, 1e-6)])
    combined = ResultSet.concat(results)
    assert combined.n_records == sum(r.n_records for r in results)
    np.testing.assert_array_equal(
        combined.column("point"), np.repeat([0, 1], results[0].n_records)
    )
    np.testing.assert_array_equal(
        combined.column("count"),
        np.concatenate([r.column("count") for r in results]),
    )
    assert combined.column("count").dtype == results[0].column("count").dtype
    assert combined.metrics == {"n_sources": 2, "n_records": combined.n_records}
    assert combined.seeds == {"roots": [4]}

    plain = ResultSet.concat(results, point_column=None)
    assert "point" not in plain.records


def test_concat_error_cases():
    runner = Runner(seed=4)
    dna = runner.run(SMALL_SPECS[0])
    adc = runner.run(SMALL_SPECS[3])
    with pytest.raises(ValueError, match="zero ResultSets"):
        ResultSet.concat([])
    with pytest.raises(ValueError, match="cannot concat kinds"):
        ResultSet.concat([dna, adc])
    with pytest.raises(ValueError, match="collides"):
        ResultSet.concat([dna, dna], point_column="count")


def test_stack_metrics_defaults_to_common_scalars():
    runner = Runner(seed=4)
    spec = SMALL_SPECS[0]
    results = runner.run_batch(
        [spec.replace(concentration=c) for c in (1e-7, 1e-6, 1e-5)]
    )
    stacked = stack_metrics(results)
    assert stacked["n_sites"].tolist() == [128, 128, 128]
    ratios = stack_metrics(results, names=["discrimination_ratio"])
    assert (np.diff(ratios["discrimination_ratio"]) > 0).all()
    with pytest.raises(KeyError, match="missing"):
        stack_metrics(results, names=["nope"])
    with pytest.raises(ValueError):
        stack_metrics([])


# ---------------------------------------------------------------------------
# Trace attachment (the digital-path capture IS provenance)
# ---------------------------------------------------------------------------
def test_traceless_payload_has_no_trace_key():
    """Results without a trace serialize exactly as before the trace
    field existed — stored payloads stay stable."""
    result = Runner(seed=2).run(SMALL_SPECS[0])
    assert result.trace is None
    payload = result.to_dict()
    assert "trace" not in payload


def test_trace_round_trips_with_the_result():
    from repro.trace import TraceRecorder

    result = Runner(seed=2).run(SMALL_SPECS[0])
    rec = TraceRecorder()
    rec.reg_write("generator_dac", 0x00, 58, 0)
    rec.seq_state("measure")
    traced = ResultSet(
        kind=result.kind, spec=result.spec, seeds=result.seeds,
        version=result.version, record_name=result.record_name,
        records=result.records, metrics=result.metrics, trace=rec.trace(),
    )
    back = ResultSet.from_json(traced.to_json())
    assert back.trace == traced.trace
    assert back.to_json() == traced.to_json()
    # Equality ignores the trace, like artifacts.
    assert traced == result


def test_trace_schema_mismatch_fails_loudly():
    result = Runner(seed=2).run(SMALL_SPECS[0])
    payload = result.to_dict()
    payload["trace"] = {"schema": 999, "n_events": 0, "n_dropped": 0, "events": []}
    with pytest.raises(ValueError, match="schema"):
        ResultSet.from_dict(payload)
