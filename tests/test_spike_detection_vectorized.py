"""Vectorised truth-matching / SNR masking vs the original per-spike
loops — bit-identical by construction (satellite of the neuro-backend
PR).  The reference implementations below are the pre-vectorisation
algorithms, kept verbatim for randomized equivalence checks.
"""

import numpy as np
import pytest

from repro.core.signals import Trace
from repro.neuro.spike_detection import (
    DetectionScore,
    score_detection,
    spike_free_mask,
    spike_snr,
)


def reference_score(detected, truth, tolerance_s):
    """The original O(n_truth * n_detected) greedy matcher."""
    detected = np.sort(np.asarray(detected, dtype=float))
    truth = np.sort(np.asarray(truth, dtype=float))
    used = np.zeros(len(detected), dtype=bool)
    tp = 0
    for t in truth:
        candidates = np.nonzero(~used & (np.abs(detected - t) <= tolerance_s))[0]
        if len(candidates):
            nearest = candidates[np.argmin(np.abs(detected[candidates] - t))]
            used[nearest] = True
            tp += 1
    return DetectionScore(tp, int(np.sum(~used)), len(truth) - tp)


def reference_mask(trace, spike_times, window_s):
    """The original per-spike slice-blanking loop."""
    mask = np.ones(trace.n, dtype=bool)
    for t in np.asarray(spike_times, dtype=float):
        i0 = max(0, int((t - window_s - trace.t0) / trace.dt))
        i1 = min(trace.n, int((t + window_s - trace.t0) / trace.dt) + 1)
        mask[i0:i1] = False
    return mask


class TestScoreDetection:
    def test_randomized_equivalence_with_reference(self):
        rng = np.random.default_rng(42)
        for _ in range(200):
            n_detected = int(rng.integers(0, 30))
            n_truth = int(rng.integers(0, 30))
            detected = rng.uniform(0.0, 0.2, size=n_detected)
            truth = rng.uniform(0.0, 0.2, size=n_truth)
            # Force boundary collisions: duplicate times and exact
            # tolerance-distant pairs.
            if n_truth and n_detected:
                detected[0] = truth[0] + 2e-3
                if n_detected > 1:
                    detected[1] = truth[0]
            fast = score_detection(detected, truth, tolerance_s=2e-3)
            slow = reference_score(detected, truth, tolerance_s=2e-3)
            assert fast == slow

    def test_dense_tie_breaking(self):
        """Many detections in one window: the greedy nearest-unused
        order must match the reference exactly."""
        truth = np.asarray([0.010, 0.0105, 0.011, 0.0115])
        detected = np.asarray([0.0098, 0.0102, 0.0104, 0.0108, 0.0112, 0.030])
        fast = score_detection(detected, truth, tolerance_s=1e-3)
        assert fast == reference_score(detected, truth, tolerance_s=1e-3)
        assert fast.true_positives == 4

    def test_empty_inputs_and_validation(self):
        empty = score_detection([], [], tolerance_s=1e-3)
        assert (empty.true_positives, empty.false_positives, empty.false_negatives) == (0, 0, 0)
        assert score_detection([0.01], [], tolerance_s=1e-3).false_positives == 1
        assert score_detection([], [0.01], tolerance_s=1e-3).false_negatives == 1
        with pytest.raises(ValueError, match="tolerance"):
            score_detection([0.01], [0.01], tolerance_s=0.0)

    def test_exact_tolerance_boundary(self):
        # |d - t| == tolerance counts as a match (<=), including under
        # the windowed search.
        assert score_detection([0.012], [0.010], tolerance_s=2e-3).true_positives == 1


class TestSpikeFreeMask:
    def test_randomized_equivalence_with_reference(self):
        rng = np.random.default_rng(7)
        for _ in range(100):
            n = int(rng.integers(8, 400))
            trace = Trace(rng.normal(size=n), dt=5e-4, t0=float(rng.uniform(-0.01, 0.01)))
            spikes = rng.uniform(-0.05, n * 5e-4 + 0.05, size=int(rng.integers(0, 12)))
            mask = spike_free_mask(trace, spikes, window_s=1.5e-3)
            np.testing.assert_array_equal(mask, reference_mask(trace, spikes, 1.5e-3))

    def test_overlapping_windows_merge(self):
        trace = Trace(np.zeros(100), dt=1e-3)
        mask = spike_free_mask(trace, [0.010, 0.011, 0.012], window_s=2e-3)
        np.testing.assert_array_equal(
            mask, reference_mask(trace, [0.010, 0.011, 0.012], 2e-3)
        )
        assert not mask[8:15].any()

    def test_spike_snr_unchanged_numbers(self):
        rng = np.random.default_rng(3)
        samples = rng.normal(scale=1e-5, size=500)
        samples[250] = 5e-4
        trace = Trace(samples, dt=5e-4)
        snr = spike_snr(trace, np.asarray([250 * 5e-4]))
        # Same value the loop-based implementation produced.
        mask = reference_mask(trace, [250 * 5e-4], 1.5e-3)
        quiet = trace.samples[mask]
        sigma = float(np.median(np.abs(quiet - np.median(quiet))) / 0.6745)
        peak = float(np.max(np.abs((trace.samples - np.median(quiet))[~mask])))
        assert snr == peak / sigma

    def test_spike_snr_guards(self):
        trace = Trace(np.zeros(16), dt=1e-3)
        with pytest.raises(ValueError, match="window"):
            spike_snr(trace, [0.001], window_s=0.0)
        with pytest.raises(ValueError, match="spike-free"):
            spike_snr(trace, np.arange(16) * 1e-3, window_s=5e-3)
