"""Hodgkin-Huxley action potentials and the cell-chip junction (Fig. 5)."""

import numpy as np
import pytest

from repro.neuro.action_potential import (
    HodgkinHuxleyNeuron,
    StimulusProtocol,
    detect_spike_times,
    template_action_potential,
)
from repro.neuro.junction import CellChipJunction


class TestHodgkinHuxley:
    def test_resting_potential_stable(self):
        quiet = StimulusProtocol(pulses=[])
        hh = HodgkinHuxleyNeuron().simulate(0.02, dt_s=20e-6, stimulus=quiet)
        v = hh.membrane_voltage
        assert abs(v.samples[-1] - (-65e-3)) < 2e-3
        assert len(hh.spike_times) == 0

    def test_suprathreshold_pulse_fires(self, hh_run):
        assert len(hh_run.spike_times) == 1
        assert hh_run.membrane_voltage.peak_abs() > 60e-3  # overshoot past 0

    def test_subthreshold_pulse_silent(self):
        weak = StimulusProtocol(pulses=[(2e-3, 0.5e-3, 2.0)])
        hh = HodgkinHuxleyNeuron().simulate(0.02, dt_s=20e-6, stimulus=weak)
        assert len(hh.spike_times) == 0

    def test_spike_amplitude_classic(self, hh_run):
        # ~100 mV swing from -65 mV rest to ~+40 mV peak.
        v = hh_run.membrane_voltage.samples
        assert v.max() > 20e-3
        assert v.min() < -60e-3

    def test_currents_sum_near_zero_off_stimulus(self, hh_run):
        # Point-neuron charge balance: capacitive + ionic ~ stimulus.
        total = hh_run.total_current_density()
        late = total.slice_time(0.015, 0.03)  # far from the 2 ms pulse
        assert late.peak_abs() < 0.05 * hh_run.ionic_current_density.peak_abs()

    def test_sodium_activates_before_potassium(self, hh_run):
        # The m-gate is fast, the n-gate slow: sodium current crosses
        # 20% of its own peak before potassium does.
        i_na = np.abs(hh_run.sodium_current_density.samples)
        i_k = np.abs(hh_run.potassium_current_density.samples)
        onset_na = np.argmax(i_na > 0.2 * i_na.max())
        onset_k = np.argmax(i_k > 0.2 * i_k.max())
        assert onset_na < onset_k

    def test_spike_train_stimulus(self):
        protocol = StimulusProtocol.spike_train(rate_hz=100.0, duration_s=0.05, rng=1)
        assert len(protocol.pulses) > 0
        assert all(0 <= p[0] < 0.05 for p in protocol.pulses)

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            HodgkinHuxleyNeuron().simulate(0.0)


class TestSpikeTimeDetection:
    def test_refractory_merges_close_events(self, hh_run):
        times = detect_spike_times(hh_run.membrane_voltage, refractory_s=1.0)
        assert len(times) <= 1

    def test_empty_for_quiet_trace(self):
        from repro.core.signals import Trace

        quiet = Trace(np.full(1000, -65e-3), 1e-5)
        assert len(detect_spike_times(quiet)) == 0


class TestTemplateAp:
    def test_shape(self):
        ap = template_action_potential(amplitude_v=0.1)
        assert ap.peak_abs() == pytest.approx(0.1, rel=0.05)
        assert ap.samples.min() < 0  # undershoot present

    def test_peak_near_spike_time(self):
        ap = template_action_potential(t_spike_s=2e-3, duration_s=6e-3)
        t_peak = ap.times[np.argmax(ap.samples)]
        assert t_peak == pytest.approx(2e-3, abs=0.3e-3)

    def test_invalid(self):
        with pytest.raises(ValueError):
            template_action_potential(duration_s=0.0)


class TestJunction:
    def test_seal_resistance_megaohm_range(self):
        j = CellChipJunction()
        assert 1e5 < j.seal_resistance < 1e7

    def test_seal_scales_inverse_with_cleft(self):
        j60 = CellChipJunction(cleft_height=60e-9)
        j120 = CellChipJunction(cleft_height=120e-9)
        assert j60.seal_resistance == pytest.approx(2 * j120.seal_resistance)

    def test_junction_area_scales_with_cell(self):
        small = CellChipJunction(cell_diameter=10e-6)
        large = CellChipJunction(cell_diameter=100e-6)
        assert large.junction_area == pytest.approx(100 * small.junction_area)

    def test_amplitudes_in_paper_window(self, hh_run):
        # 10-100 um cells -> peak V_J inside (or near) 100 uV ... 5 mV.
        for diameter, lo, hi in ((20e-6, 50e-6, 1e-3), (100e-6, 1e-3, 10e-3)):
            j = CellChipJunction(cell_diameter=diameter)
            peak = j.junction_voltage(hh_run).peak_abs()
            assert lo < peak < hi

    def test_vj_zero_without_channel_asymmetry_and_stimulus(self, hh_run):
        # mu = 1: capacitive and ionic terms cancel except the stimulus.
        j_sym = CellChipJunction(ion_channel_factor=1.0)
        j_asym = CellChipJunction(ion_channel_factor=2.0)
        assert j_sym.junction_voltage(hh_run).peak_abs() < 0.35 * j_asym.junction_voltage(
            hh_run
        ).peak_abs()

    def test_template_path(self):
        ap = template_action_potential(amplitude_v=0.1)
        j = CellChipJunction(cell_diameter=40e-6)
        vj = j.junction_voltage_from_template(ap)
        assert 1e-5 < vj.peak_abs() < 5e-3

    def test_peak_estimate_order_of_magnitude(self, hh_run):
        j = CellChipJunction(cell_diameter=20e-6)
        estimate = j.peak_amplitude_estimate()
        actual = j.junction_voltage(hh_run).peak_abs()
        assert 0.1 * actual < estimate < 10 * actual

    def test_with_cleft_copies(self):
        j = CellChipJunction()
        j2 = j.with_cleft(100e-9)
        assert j2.cleft_height == 100e-9
        assert j2.cell_diameter == j.cell_diameter

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            CellChipJunction(cell_diameter=0.0)
        with pytest.raises(ValueError):
            CellChipJunction(attachment_fraction=0.0)
