"""Trace: construction, arithmetic, slicing, resampling, filtering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.signals import Trace, concatenate, time_axis


def make_sine(freq=1e3, duration=0.01, dt=1e-6, amplitude=1.0):
    t = np.arange(0, duration, dt)
    return Trace(amplitude * np.sin(2 * np.pi * freq * t), dt)


class TestConstruction:
    def test_basic(self):
        trace = Trace(np.zeros(100), dt=1e-6)
        assert trace.n == 100
        assert trace.duration == pytest.approx(100e-6)
        assert trace.sample_rate == pytest.approx(1e6)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            Trace(np.zeros((4, 4)), dt=1e-6)

    def test_rejects_bad_dt(self):
        with pytest.raises(ValueError):
            Trace(np.zeros(4), dt=0.0)
        with pytest.raises(ValueError):
            Trace(np.zeros(4), dt=float("nan"))

    def test_from_function(self):
        trace = Trace.from_function(lambda t: 2 * t, duration=1.0, dt=0.25)
        assert trace.n == 4
        assert trace.samples[1] == pytest.approx(0.5)

    def test_zeros(self):
        trace = Trace.zeros(1e-3, 1e-6)
        assert trace.n == 1000
        assert np.all(trace.samples == 0)

    def test_times_axis(self):
        trace = Trace(np.zeros(3), dt=0.5, t0=1.0)
        assert list(trace.times) == [1.0, 1.5, 2.0]


class TestArithmetic:
    def test_add_scalar(self):
        trace = Trace(np.ones(5), 1.0)
        assert np.all((trace + 2.0).samples == 3.0)

    def test_add_traces(self):
        a = Trace(np.ones(5), 1.0)
        b = Trace(2 * np.ones(5), 1.0)
        assert np.all((a + b).samples == 3.0)

    def test_subtract(self):
        a = Trace(np.ones(5), 1.0)
        assert np.all((a - a).samples == 0.0)

    def test_multiply(self):
        trace = Trace(np.ones(5), 1.0)
        assert np.all((3.0 * trace).samples == 3.0)
        assert np.all((trace * 3.0).samples == 3.0)

    def test_incompatible_dt_raises(self):
        a = Trace(np.ones(5), 1.0)
        b = Trace(np.ones(5), 2.0)
        with pytest.raises(ValueError):
            a + b

    def test_incompatible_length_raises(self):
        a = Trace(np.ones(5), 1.0)
        b = Trace(np.ones(6), 1.0)
        with pytest.raises(ValueError):
            a + b


class TestMetrics:
    def test_rms_of_sine(self):
        assert make_sine().rms() == pytest.approx(1 / np.sqrt(2), rel=1e-3)

    def test_peak_to_peak(self):
        assert make_sine().peak_to_peak() == pytest.approx(2.0, rel=1e-3)

    def test_peak_abs(self):
        trace = Trace(np.array([-3.0, 1.0, 2.0]), 1.0)
        assert trace.peak_abs() == 3.0

    def test_mean_std(self):
        trace = Trace(np.array([1.0, 3.0]), 1.0)
        assert trace.mean() == 2.0
        assert trace.std() == 1.0


class TestTransformations:
    def test_slice_time(self):
        trace = Trace(np.arange(10, dtype=float), 1.0)
        part = trace.slice_time(2.0, 5.0)
        assert list(part.samples) == [2.0, 3.0, 4.0]
        assert part.t0 == 2.0

    def test_slice_empty_raises(self):
        trace = Trace(np.arange(10, dtype=float), 1.0)
        with pytest.raises(ValueError):
            trace.slice_time(5.0, 5.0)

    def test_resample_downsamples(self):
        trace = make_sine()
        coarse = trace.resample(4e-6)
        assert coarse.dt == pytest.approx(4e-6)
        assert coarse.n == pytest.approx(trace.n / 4, abs=2)

    def test_resample_identity(self):
        trace = make_sine()
        same = trace.resample(trace.dt)
        assert np.allclose(same.samples, trace.samples)

    def test_decimate(self):
        trace = Trace(np.arange(10, dtype=float), 1.0)
        dec = trace.decimate(3)
        assert list(dec.samples) == [0.0, 3.0, 6.0, 9.0]
        assert dec.dt == 3.0

    def test_clipped(self):
        trace = Trace(np.array([-2.0, 0.0, 2.0]), 1.0)
        assert list(trace.clipped(-1.0, 1.0).samples) == [-1.0, 0.0, 1.0]

    def test_clip_invalid_range(self):
        with pytest.raises(ValueError):
            Trace(np.zeros(3), 1.0).clipped(1.0, -1.0)

    def test_lowpass_attenuates_above_cutoff(self):
        fast = make_sine(freq=100e3, duration=2e-3, dt=1e-7)
        out = fast.lowpass_fast(1e3)
        assert out.rms() < 0.05 * fast.rms()

    def test_lowpass_passes_below_cutoff(self):
        slow = make_sine(freq=100.0, duration=0.05, dt=1e-5)
        out = slow.lowpass_fast(100e3)
        assert out.rms() == pytest.approx(slow.rms(), rel=0.02)

    def test_lowpass_iterative_matches_vectorised(self):
        trace = make_sine(freq=5e3, duration=2e-3, dt=1e-6)
        a = trace.lowpass(20e3)
        b = trace.lowpass_fast(20e3)
        assert np.allclose(a.samples, b.samples, atol=1e-9)

    def test_highpass_blocks_dc(self):
        trace = Trace(np.ones(5000), 1e-5) + make_sine(freq=10e3, duration=0.05, dt=1e-5)
        out = trace.highpass(100.0)
        assert abs(out.slice_time(0.02, 0.05).mean()) < 0.05

    def test_derivative_of_ramp(self):
        trace = Trace(np.arange(100, dtype=float), 0.5)
        deriv = trace.derivative()
        assert np.allclose(deriv.samples, 2.0)

    def test_delayed_shifts(self):
        trace = Trace(np.array([1.0, 2.0, 3.0, 4.0]), 1.0)
        shifted = trace.delayed(2.0)
        assert list(shifted.samples) == [0.0, 0.0, 1.0, 2.0]

    def test_delayed_rejects_negative(self):
        with pytest.raises(ValueError):
            Trace(np.zeros(3), 1.0).delayed(-1.0)


class TestModuleHelpers:
    def test_concatenate(self):
        a = Trace(np.ones(3), 1.0)
        b = Trace(2 * np.ones(2), 1.0)
        joined = concatenate([a, b])
        assert list(joined.samples) == [1.0, 1.0, 1.0, 2.0, 2.0]

    def test_concatenate_dt_mismatch(self):
        with pytest.raises(ValueError):
            concatenate([Trace(np.ones(2), 1.0), Trace(np.ones(2), 2.0)])

    def test_concatenate_empty(self):
        with pytest.raises(ValueError):
            concatenate([])

    def test_time_axis(self):
        axis = time_axis(1.0, 0.25)
        assert len(axis) == 4
        assert axis[-1] == pytest.approx(0.75)


class TestProperties:
    @given(
        n=st.integers(min_value=2, max_value=300),
        dt=st.floats(min_value=1e-9, max_value=1.0),
        scale=st.floats(min_value=-100, max_value=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_scaling_scales_rms(self, n, dt, scale):
        rng = np.random.default_rng(n)
        trace = Trace(rng.normal(size=n), dt)
        assert (trace * scale).rms() == pytest.approx(abs(scale) * trace.rms(), rel=1e-9, abs=1e-12)

    @given(n=st.integers(min_value=4, max_value=200), factor=st.integers(min_value=1, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_decimate_preserves_duration_approximately(self, n, factor):
        trace = Trace(np.arange(n, dtype=float), 1.0)
        dec = trace.decimate(factor)
        assert abs(dec.duration - trace.duration) < factor
