"""The wafer-yield analysis axis: die binning, wafer maps, cross-wafer CIs."""

import json

import pytest

from repro.campaigns import CampaignSpec, run_campaign
from repro.inference import (
    WaferYieldAnalysis,
    analysis_from_dict,
    analysis_kinds,
    analyze,
    default_analysis_for,
    render_wafer_map,
    wafer_map_diagram,
)
from repro.wafer import WaferSpec

SPEC = WaferSpec(
    wafer_diameter_mm=60.0, die_width_mm=12.0, die_height_mm=12.0, rows=8, cols=8
)


@pytest.fixture(scope="module")
def wafer_campaign():
    campaign = CampaignSpec(
        base=SPEC, grid={"reticle_sigma": (0.0, 0.3)}, replicates=2
    )
    return run_campaign(campaign, seed=3)


# ---------------------------------------------------------------------------
# Renderer
# ---------------------------------------------------------------------------
def test_render_wafer_map_basic():
    lines = render_wafer_map([0, 1, 1], [0, 0, 1], [True, False, True])
    assert lines == ["# x", ". #"]


def test_render_wafer_map_pins_the_extent():
    lines = render_wafer_map([1], [1], [True], n_grid_x=3, n_grid_y=3)
    assert lines == [". . .", ". # .", ". . ."]


def test_render_wafer_map_rejects_out_of_extent_coordinates():
    with pytest.raises(ValueError, match="outside the grid extent"):
        render_wafer_map([3], [0], [True], n_grid_x=2, n_grid_y=2)
    with pytest.raises(ValueError, match="equal length"):
        render_wafer_map([0, 1], [0], [True])


def test_render_wafer_map_empty_input():
    assert render_wafer_map([], [], []) == []


def test_wafer_map_diagram_carries_title_and_legend():
    diagram = wafer_map_diagram([0], [0], [False], title="wafer 0")
    assert diagram["title"] == "wafer 0"
    assert diagram["lines"][0] == "#=pass x=fail .=no die"
    assert diagram["lines"][1] == "x"


# ---------------------------------------------------------------------------
# Analysis spec
# ---------------------------------------------------------------------------
def test_wafer_yield_is_registered():
    assert "wafer_yield" in analysis_kinds()
    rebuilt = analysis_from_dict(WaferYieldAnalysis(threshold=0.05).to_dict())
    assert rebuilt == WaferYieldAnalysis(threshold=0.05)


@pytest.mark.parametrize(
    "kwargs, message",
    [
        (dict(op="!="), "unknown criterion"),
        (dict(confidence=1.0), "strictly between"),
        (dict(n_resamples=0), "n_resamples"),
        (dict(max_maps=-1), "max_maps"),
    ],
)
def test_invalid_analysis_parameters_raise(kwargs, message):
    with pytest.raises(ValueError, match=message):
        WaferYieldAnalysis(**kwargs)


def test_default_analysis_for_wafer_campaigns(wafer_campaign):
    assert isinstance(default_analysis_for(wafer_campaign), WaferYieldAnalysis)


# ---------------------------------------------------------------------------
# Report
# ---------------------------------------------------------------------------
def test_wafer_yield_report(wafer_campaign):
    report = analyze(wafer_campaign)
    assert report.kind == "wafer_yield"
    assert report.scalars["n_wafers"] == 4
    assert report.scalars["n_dies"] == 4 * 12
    assert 0.0 <= report.scalars["die_yield"] <= 1.0
    assert report.scalars["die_yield_ci_low"] <= report.scalars["die_yield"]
    assert report.scalars["die_yield"] <= report.scalars["die_yield_ci_high"]
    # Cross-wafer bootstrap CI is present (more than one wafer stored).
    assert "wafer_yield_mean_ci_low" in report.scalars
    (table,) = report.tables
    assert len(table.rows) == 4
    assert "reticle_sigma" in table.headers
    assert len(report.diagrams) == 4


def test_report_renders_wafer_maps_in_every_format(wafer_campaign):
    report = analyze(wafer_campaign)
    text = report.to_text()
    assert "#=pass x=fail .=no die" in text
    assert "wafer map — point 0" in text
    markdown = report.to_markdown()
    assert "### wafer map — point 0" in markdown
    assert "```" in markdown
    payload = json.loads(report.to_json())
    assert len(payload["diagrams"]) == 4
    assert payload["diagrams"][0]["lines"][0] == "#=pass x=fail .=no die"


def test_max_maps_truncates_with_a_note(wafer_campaign):
    report = analyze(wafer_campaign, WaferYieldAnalysis(max_maps=1))
    assert len(report.diagrams) == 1
    assert any("first 1 of 4" in note for note in report.notes)
    # max_maps=0 -> no diagrams, and the JSON payload omits the key so
    # analyses without diagrams keep their pre-existing bytes.
    bare = analyze(wafer_campaign, WaferYieldAnalysis(max_maps=0))
    assert "diagrams" not in bare.to_dict()


def test_analysis_is_deterministic(wafer_campaign):
    first = analyze(wafer_campaign).to_json()
    second = analyze(wafer_campaign).to_json()
    assert first == second


def test_missing_metric_column_raises(wafer_campaign):
    with pytest.raises(ValueError, match="no per-die column 'nope'"):
        analyze(wafer_campaign, WaferYieldAnalysis(metric="nope"))


def test_non_wafer_campaigns_are_rejected():
    from repro.experiments import ArrayScaleSpec

    campaign = CampaignSpec(
        base=ArrayScaleSpec(rows=4, cols=4, n_chips=1, backend="vectorized"),
        replicates=2,
    )
    result = run_campaign(campaign, seed=1)
    with pytest.raises(ValueError, match="grid coordinates"):
        analyze(result, WaferYieldAnalysis(metric="zero_sites"))
