"""The integrated 128x128 neural-recording chip."""

import numpy as np
import pytest

from repro.chip.neuro_chip import NeuralRecordingChip
from repro.neuro.culture import ArrayGeometry, Culture


@pytest.fixture(scope="module")
def small_chip():
    chip = NeuralRecordingChip(geometry=ArrayGeometry(32, 32, 7.8e-6), rng=31)
    chip.calibrate()
    return chip


class TestSetup:
    def test_default_geometry_is_paper(self):
        chip = NeuralRecordingChip(rng=1)
        assert chip.geometry.rows == 128
        assert chip.geometry.cols == 128
        assert chip.geometry.pitch == pytest.approx(7.8e-6)
        assert chip.scan.channels == 16

    def test_recording_requires_calibration(self):
        chip = NeuralRecordingChip(geometry=ArrayGeometry(16, 16, 7.8e-6), rng=2)
        culture = Culture.random(1, chip.geometry, diameter_range=(40e-6, 40e-6), rng=3)
        with pytest.raises(RuntimeError):
            chip.record_culture(culture, duration_s=0.01)

    def test_calibrate_sets_status(self, small_chip):
        assert small_chip.calibrated
        assert small_chip.registers.read("status") == 1

    def test_noise_floor_below_max_signal(self, small_chip):
        assert small_chip.input_referred_noise_v() < 5e-3

    def test_calibration_sweep_time(self, small_chip):
        assert small_chip.calibration_sweep_time_s() > 0


class TestTimingReport:
    def test_paper_timing_report(self):
        chip = NeuralRecordingChip(rng=4)
        report = chip.timing_report()
        assert report["frame_rate_hz"] == 2000.0
        assert report["channel_pixel_rate_hz"] == pytest.approx(2.048e6)
        assert report["aggregate_pixel_rate_hz"] == pytest.approx(32.768e6)
        assert report["readout_amp_settles"] == 1.0
        assert report["driver_settles"] == 1.0
        assert report["total_gain"] == 5600.0


class TestRecording:
    def test_record_produces_frames(self, small_chip):
        culture = Culture.random(2, small_chip.geometry, diameter_range=(40e-6, 60e-6), rng=5)
        result = small_chip.record_culture(culture, duration_s=0.05, firing_rate_hz=50.0,
                                           rng=6)
        assert result.electrode_movie.n_frames == 100
        assert result.output_movie.n_frames == 100
        assert set(result.ground_truth) == {0, 1}

    def test_output_is_amplified_electrode_signal(self, small_chip):
        culture = Culture.random(1, small_chip.geometry, diameter_range=(60e-6, 60e-6), rng=7)
        result = small_chip.record_culture(culture, duration_s=0.03, firing_rate_hz=60.0,
                                           rng=8)
        row, col = result.best_pixel_for(0)
        electrode = result.electrode_movie.pixel_trace(row, col)
        output = result.output_movie.pixel_trace(row, col)
        if electrode.peak_abs() > 0:
            gain = output.peak_abs() / electrode.peak_abs()
            # Chain gain x coupling (0.55): a few thousand, unless clipped.
            assert 1000 < gain < 6000

    def test_template_path_faster_recording(self, small_chip):
        culture = Culture.random(2, small_chip.geometry, diameter_range=(40e-6, 60e-6), rng=9)
        result = small_chip.record_culture(culture, duration_s=0.05, firing_rate_hz=40.0,
                                           rng=10, use_hh=False)
        assert result.electrode_movie.n_frames == 100
        assert all(len(v) >= 0 for v in result.ground_truth.values())

    def test_best_pixel_requires_coverage(self, small_chip):
        culture = Culture.random(1, small_chip.geometry, diameter_range=(40e-6, 40e-6), rng=11)
        result = small_chip.record_culture(culture, duration_s=0.02, rng=12)
        row, col = result.best_pixel_for(0)
        assert 0 <= row < 32 and 0 <= col < 32

    def test_invalid_duration(self, small_chip):
        culture = Culture.random(1, small_chip.geometry, diameter_range=(40e-6, 40e-6), rng=13)
        with pytest.raises(ValueError):
            small_chip.record_culture(culture, duration_s=0.0)
