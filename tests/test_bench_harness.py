"""benchmarks/_harness.py — the machine-readable timing spine."""

import json
import sys
import types
from pathlib import Path

import pytest

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"
if str(BENCHMARKS_DIR) not in sys.path:
    sys.path.insert(0, str(BENCHMARKS_DIR))

from _harness import SCHEMA, BenchRecord, BenchSuite, NullBenchmark  # noqa: E402


class TestBenchSuite:
    def test_time_records_and_returns_result(self):
        suite = BenchSuite("engine")
        result, record = suite.time(
            "measure", lambda: sum(range(1000)), backend="vectorized", rows=16, cols=8
        )
        assert result == sum(range(1000))
        assert record.wall_s > 0
        assert record.sites == 128
        assert record.size_label == "16x8"
        assert suite.records == [record]

    def test_repeats_keep_best(self):
        suite = BenchSuite()
        _, record = suite.time("noop", lambda: None, backend="object", repeats=3)
        assert record.repeats == 3
        with pytest.raises(ValueError):
            suite.time("noop", lambda: None, backend="object", repeats=0)

    def test_speedups_pair_backends(self):
        suite = BenchSuite()
        suite.records.append(BenchRecord("measure", "object", 128, 128, wall_s=2.0))
        suite.records.append(BenchRecord("measure", "vectorized", 128, 128, wall_s=0.1))
        suite.records.append(BenchRecord("measure", "vectorized", 64, 64, wall_s=0.1))
        speedups = suite.speedups()
        assert speedups["measure@128x128"]["speedup"] == pytest.approx(20.0)
        assert "measure@64x64" not in speedups  # unpaired: no object baseline
        assert suite.speedup_at("measure", 128, 128) == pytest.approx(20.0)
        assert suite.speedup_at("measure", 8, 8) is None

    def test_batch_size_label(self):
        record = BenchRecord("end_to_end", "vectorized", 128, 128, n_chips=8, wall_s=1.0)
        assert record.size_label == "128x128x8"
        assert record.sites == 128 * 128 * 8

    def test_write_and_load_roundtrip(self, tmp_path):
        suite = BenchSuite("engine")
        suite.time("measure", lambda: None, backend="object", rows=16, cols=8)
        path = suite.write(tmp_path / "BENCH_engine.json")
        data = BenchSuite.load(path)
        assert data["schema"] == SCHEMA
        assert data["label"] == "engine"
        assert data["records"][0]["rows"] == 16
        assert "speedups" in data
        # File really is plain JSON for CI artifact tooling.
        assert json.loads(path.read_text())["schema"] == SCHEMA

    def test_load_rejects_foreign_json(self, tmp_path):
        alien = tmp_path / "other.json"
        alien.write_text(json.dumps({"schema": "not-bench"}))
        with pytest.raises(ValueError):
            BenchSuite.load(alien)


class TestNullBenchmark:
    def test_call_and_pedantic(self):
        shim = NullBenchmark()
        assert shim(lambda x: x + 1, 41) == 42
        assert shim.last_wall_s is not None
        assert shim.pedantic(lambda: "ok", rounds=5, iterations=3) == "ok"

    def test_time_entry_points_handles_both_signatures(self):
        module = types.ModuleType("bench_dummy")
        calls = []

        def bench_with_fixture(benchmark):
            calls.append("fixture")
            return benchmark(lambda: 1)

        def bench_plain():
            calls.append("plain")

        module.bench_with_fixture = bench_with_fixture
        module.bench_plain = bench_plain
        module.not_a_bench = lambda: calls.append("nope")

        suite = BenchSuite()
        records = suite.time_entry_points(module)
        assert sorted(calls) == ["fixture", "plain"]
        assert {r.name for r in records} == {
            "bench_dummy.bench_with_fixture",
            "bench_dummy.bench_plain",
        }
