"""Runner.run(NeuralRecordingSpec, backend="vectorized") vs the object
backend — the neural-recording acceptance-criterion parity tests.

Documented tolerance (see repro.engine.vneuro): the chip stream,
culture, stimuli and noise realisation are shared bit-identically; the
template-AP path is bit-identical end to end; the Hodgkin-Huxley path
matches to floating-point accumulation error (frames within an
electrode-voltage epsilon, ground truth and detection columns equal).
"""

import numpy as np
import pytest

from repro.experiments import NeuralRecordingSpec, Runner
from repro.neuro.culture import ArrayGeometry, Culture, PlacedNeuron
from repro.neuro.junction import CellChipJunction

FIG5_TEMPLATE_SPEC = NeuralRecordingSpec(
    rows=32, cols=32, n_neurons=8, duration_s=0.1, use_hh=False
)
FIG5_HH_SPEC = NeuralRecordingSpec(rows=32, cols=32, n_neurons=4, duration_s=0.05)

INT_COLUMNS = ("neuron", "best_row", "best_col", "true_spikes", "detected_spikes")
FLOAT_COLUMNS = ("diameter_m", "peak_v", "precision", "recall", "snr")


def run_pair(spec, seed=17, **kwargs):
    result_obj = Runner(seed=seed).run(spec, **kwargs)
    result_vec = Runner(seed=seed).run(spec, backend="vectorized", **kwargs)
    return result_obj, result_vec


def assert_columns_match(result_obj, result_vec, float_atol=0.0):
    for column in INT_COLUMNS:
        np.testing.assert_array_equal(
            result_obj.column(column), result_vec.column(column), err_msg=column
        )
    for column in FLOAT_COLUMNS:
        np.testing.assert_allclose(
            result_obj.column(column),
            result_vec.column(column),
            rtol=0,
            atol=float_atol,
            equal_nan=True,
            err_msg=column,
        )


class TestTemplatePathBitIdentical:
    @pytest.fixture(scope="class")
    def pair(self):
        return run_pair(FIG5_TEMPLATE_SPEC)

    def test_backend_stamped(self, pair):
        result_obj, result_vec = pair
        assert result_obj.metrics["backend"] == "object"
        assert result_vec.metrics["backend"] == "vectorized"

    def test_frames_bitwise(self, pair):
        result_obj, result_vec = pair
        np.testing.assert_array_equal(
            result_obj.artifacts["recording"].electrode_movie.frames,
            result_vec.artifacts["recording"].electrode_movie.frames,
        )
        np.testing.assert_array_equal(
            result_obj.artifacts["recording"].output_movie.frames,
            result_vec.artifacts["recording"].output_movie.frames,
        )

    def test_records_bitwise(self, pair):
        assert_columns_match(*pair, float_atol=0.0)

    def test_metrics_match(self, pair):
        result_obj, result_vec = pair
        for name, value in result_obj.metrics.items():
            if name == "backend":
                continue
            assert result_vec.metrics[name] == value, name

    def test_ground_truth_bitwise(self, pair):
        result_obj, result_vec = pair
        truth_obj = result_obj.artifacts["recording"].ground_truth
        truth_vec = result_vec.artifacts["recording"].ground_truth
        assert truth_obj.keys() == truth_vec.keys()
        for key in truth_obj:
            np.testing.assert_array_equal(truth_obj[key], truth_vec[key])


class TestHodgkinHuxleyPathTolerance:
    @pytest.fixture(scope="class")
    def pair(self):
        return run_pair(FIG5_HH_SPEC)

    def test_frames_within_documented_tolerance(self, pair):
        result_obj, result_vec = pair
        frames_obj = result_obj.artifacts["recording"].electrode_movie.frames
        frames_vec = result_vec.artifacts["recording"].electrode_movie.frames
        # Documented budget: floating-point accumulation over the RK4
        # sweep — sub-nano-volt against a >=100 uV signal window.
        assert np.max(np.abs(frames_obj - frames_vec)) < 1e-9

    def test_ground_truth_equal(self, pair):
        result_obj, result_vec = pair
        truth_obj = result_obj.artifacts["recording"].ground_truth
        truth_vec = result_vec.artifacts["recording"].ground_truth
        for key in truth_obj:
            np.testing.assert_array_equal(truth_obj[key], truth_vec[key])

    def test_detection_columns_equal(self, pair):
        assert_columns_match(*pair, float_atol=1e-6)

    def test_vectorized_rerun_is_bit_identical(self):
        a = Runner(seed=4).run(FIG5_HH_SPEC, backend="vectorized")
        b = Runner(seed=4).run(FIG5_HH_SPEC, backend="vectorized")
        np.testing.assert_array_equal(
            a.artifacts["recording"].electrode_movie.frames,
            b.artifacts["recording"].electrode_movie.frames,
        )
        for column in a.records:
            np.testing.assert_array_equal(
                a.column(column), b.column(column), err_msg=column
            )


class TestRunnerMechanics:
    def test_backend_caches_are_separate(self):
        runner = Runner(seed=3)
        spec = FIG5_HH_SPEC.replace(duration_s=0.01)
        runner.run(spec)
        runner.run(spec, backend="vectorized")
        assert runner.stats.chips_built == 2

    def test_chip_reused_across_analysis_sweep(self):
        runner = Runner(seed=3)
        spec = FIG5_HH_SPEC.replace(duration_s=0.01)
        runner.run(spec, backend="vectorized")
        runner.run(spec.replace(threshold_sigma=8.0), backend="vectorized")
        assert runner.stats.chips_built == 1
        assert runner.stats.chips_reused == 1


# ---------------------------------------------------------------------------
# Edge-case parity (satellite: zero-neuron, off-array, clipped, 1-frame)
# ---------------------------------------------------------------------------
def _edge_geometry(spec):
    return ArrayGeometry(spec.rows, spec.cols, spec.pitch_m)


class TestParityEdges:
    def test_zero_neuron_culture(self):
        spec = FIG5_TEMPLATE_SPEC.replace(duration_s=0.01)
        culture = Culture(geometry=_edge_geometry(spec), neurons=[])
        result_obj, result_vec = run_pair(spec, inputs={"culture": culture})
        for result in (result_obj, result_vec):
            assert result.n_records == 0
            assert result.metrics["n_neurons"] == 0
            assert result.metrics["coverage_fraction"] == 0.0
            assert result.metrics["total_detected_spikes"] == 0
        np.testing.assert_array_equal(
            result_obj.artifacts["recording"].electrode_movie.frames,
            result_vec.artifacts["recording"].electrode_movie.frames,
        )

    def test_neuron_fully_off_array(self):
        spec = FIG5_TEMPLATE_SPEC.replace(duration_s=0.01)
        geometry = _edge_geometry(spec)
        on_chip = PlacedNeuron(
            index=0,
            x=geometry.width / 2,
            y=geometry.height / 2,
            diameter=40e-6,
            junction=CellChipJunction(cell_diameter=40e-6),
        )
        off_chip = PlacedNeuron(
            index=1,
            x=geometry.width * 3,
            y=geometry.height * 3,
            diameter=40e-6,
            junction=CellChipJunction(cell_diameter=40e-6),
        )
        culture = Culture(geometry=geometry, neurons=[on_chip, off_chip])
        result_obj, result_vec = run_pair(spec, inputs={"culture": culture})
        for result in (result_obj, result_vec):
            assert list(result.column("best_row")) == [
                result.column("best_row")[0],
                -1,
            ]
            assert result.column("peak_v")[1] == 0.0
            assert np.isnan(result.column("snr")[1])
        assert_columns_match(result_obj, result_vec)

    def test_single_frame_recording(self):
        # One frame at 2 kframes/s: duration just above a frame time.
        spec = FIG5_TEMPLATE_SPEC.replace(duration_s=0.75e-3, n_neurons=2)
        result_obj, result_vec = run_pair(spec)
        movie = result_vec.artifacts["recording"].electrode_movie
        assert movie.n_frames == 1
        np.testing.assert_array_equal(
            result_obj.artifacts["recording"].electrode_movie.frames, movie.frames
        )
        assert_columns_match(result_obj, result_vec)

    def test_clipped_output_pixels(self):
        """mV-scale junction signals x5600 exceed the output rails: the
        clipped (dead-at-rail) pixels must clip identically."""
        result_obj, result_vec = run_pair(FIG5_TEMPLATE_SPEC)
        out_obj = result_obj.artifacts["recording"].output_movie.frames
        out_vec = result_vec.artifacts["recording"].output_movie.frames
        rail = np.max(np.abs(out_obj))
        clipped_obj = np.abs(out_obj) >= rail
        assert clipped_obj.any()  # the edge is actually exercised
        np.testing.assert_array_equal(out_obj, out_vec)
        np.testing.assert_array_equal(clipped_obj, np.abs(out_vec) >= rail)
