"""Noise synthesis: densities, sampled traces, budgets."""

import math

import numpy as np
import pytest

from repro.core import noise
from repro.core.units import BOLTZMANN, ELEMENTARY_CHARGE


class TestDensities:
    def test_thermal_current_density(self):
        g = 1e-3
        assert noise.thermal_current_noise_density(g, 300.0) == pytest.approx(
            4 * BOLTZMANN * 300.0 * g
        )

    def test_thermal_voltage_density_1k_resistor(self):
        # 4 nV/rtHz for 1 kOhm at room temperature.
        density = noise.thermal_voltage_noise_density(1000.0, 300.0)
        assert math.sqrt(density) == pytest.approx(4.07e-9, rel=0.02)

    def test_shot_noise_density(self):
        assert noise.shot_noise_density(1e-9) == pytest.approx(2 * ELEMENTARY_CHARGE * 1e-9)

    def test_shot_noise_uses_magnitude(self):
        assert noise.shot_noise_density(-1e-9) == noise.shot_noise_density(1e-9)

    def test_negative_conductance_rejected(self):
        with pytest.raises(ValueError):
            noise.thermal_current_noise_density(-1.0)

    def test_kt_over_c(self):
        # ~64 uV rms on 1 pF.
        assert noise.kt_over_c_noise(1e-12) == pytest.approx(64.4e-6, rel=0.02)

    def test_kt_over_c_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            noise.kt_over_c_noise(0.0)

    def test_integrate_white_noise(self):
        assert noise.integrate_white_noise(1e-18, 1e6) == pytest.approx(1e-6)

    def test_single_pole_enbw(self):
        assert noise.single_pole_enbw(4e6) == pytest.approx(math.pi / 2 * 4e6)


class TestTraces:
    def test_white_noise_variance_matches_density(self):
        density = 1e-12
        dt = 1e-6
        trace = noise.white_noise_trace(density, duration=0.2, dt=dt, rng=1)
        expected_var = density / (2 * dt)
        assert trace.samples.var() == pytest.approx(expected_var, rel=0.05)

    def test_white_noise_zero_density(self):
        trace = noise.white_noise_trace(0.0, duration=1e-3, dt=1e-6, rng=1)
        assert np.all(trace.samples == 0)

    def test_white_noise_reproducible(self):
        a = noise.white_noise_trace(1e-12, 1e-3, 1e-6, rng=42)
        b = noise.white_noise_trace(1e-12, 1e-3, 1e-6, rng=42)
        assert np.array_equal(a.samples, b.samples)

    def test_flicker_noise_spectrum_slope(self):
        # PSD should fall roughly as 1/f: compare low vs high octave power.
        trace = noise.flicker_noise_trace(1e-12, 1e3, duration=1.0, dt=1e-4, rng=3)
        spectrum = np.abs(np.fft.rfft(trace.samples)) ** 2
        freqs = np.fft.rfftfreq(trace.n, d=trace.dt)
        low = spectrum[(freqs > 5) & (freqs < 50)].mean()
        high = spectrum[(freqs > 500) & (freqs < 5000)].mean()
        ratio = low / high
        assert 10 < ratio < 1000  # ~100 expected for exact 1/f

    def test_flicker_rejects_bad_corner(self):
        with pytest.raises(ValueError):
            noise.flicker_noise_trace(1e-12, 0.0, 1e-3, 1e-6)

    def test_shot_noise_trace_rms(self):
        current = 1e-9
        dt = 1e-6
        trace = noise.shot_noise_trace(current, duration=0.1, dt=dt, rng=2)
        expected_rms = math.sqrt(noise.shot_noise_density(current) / (2 * dt))
        assert trace.rms() == pytest.approx(expected_rms, rel=0.05)


class TestNoiseBudget:
    def test_quadrature_sum(self):
        budget = noise.NoiseBudget()
        budget.add("a", 3.0)
        budget.add("b", 4.0)
        assert budget.total_rms() == pytest.approx(5.0)

    def test_dominant(self):
        budget = noise.NoiseBudget()
        budget.add("thermal", 1.0)
        budget.add("flicker", 10.0)
        assert budget.dominant() == "flicker"

    def test_duplicate_rejected(self):
        budget = noise.NoiseBudget()
        budget.add("x", 1.0)
        with pytest.raises(KeyError):
            budget.add("x", 2.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            noise.NoiseBudget().add("x", -1.0)

    def test_empty_dominant_raises(self):
        with pytest.raises(ValueError):
            noise.NoiseBudget().dominant()

    def test_rows_sorted_descending(self):
        budget = noise.NoiseBudget()
        budget.add("small", 1.0)
        budget.add("big", 2.0)
        rows = budget.as_rows()
        assert rows[0][0] == "big"
