"""ResultCache correctness: accounting, dedup, corruption, concurrency."""

import json
import threading

import pytest

from repro.campaigns import CampaignSpec, run_campaign
from repro.experiments import DnaAssaySpec, Runner
from repro.service import (
    CACHE_SCHEMA,
    CachedDispatch,
    ResultCache,
    make_cache,
    plan_keys,
    point_key,
)

BASE = DnaAssaySpec(probe_count=4, replicates=4, target_subset=(0, 1))
CAMPAIGN = CampaignSpec(
    base=BASE, grid={"concentration": (1e-7, 1e-6)}, replicates=2, name="cache-test"
)


def _payloads(result):
    return json.dumps(
        {meta["point"]: res.to_dict() for meta, res in result.iter_results()},
        sort_keys=True,
    )


# ---------------------------------------------------------------------------
# Hit/miss accounting
# ---------------------------------------------------------------------------
def test_get_put_get_counts_hits_and_misses(tmp_path):
    cache = ResultCache(root=tmp_path / "cache")
    result = Runner(seed=1).run(BASE)
    key = point_key(BASE.to_dict(), 1, None, "x")
    assert cache.get(key) is None
    cache.put(key, result)
    assert cache.get(key) is not None
    assert key in cache
    stats = cache.stats_dict()
    assert (stats["hits"], stats["misses"], stats["puts"]) == (1, 1, 1)
    assert stats["entries"] == 1


def test_memory_only_cache_needs_no_directory():
    cache = ResultCache()  # root=None
    result = Runner(seed=1).run(BASE)
    cache.put("k", result)
    assert cache.get("k") is not None
    assert cache.n_entries() == 1
    assert cache.stats_dict()["root"] is None


def test_memory_lru_evicts_but_disk_still_serves(tmp_path):
    cache = ResultCache(root=tmp_path / "cache", max_memory=1)
    result = Runner(seed=1).run(BASE)
    cache.put("a" * 64, result)
    cache.put("b" * 64, result)  # evicts "a..." from memory
    assert cache.stats.evictions == 1
    assert cache.get("a" * 64) is not None  # served from disk
    assert cache.stats.disk_hits == 1


def test_disk_cache_survives_reopen(tmp_path):
    result = Runner(seed=1).run(BASE)
    ResultCache(root=tmp_path / "cache").put("k" * 64, result)
    reopened = ResultCache(root=tmp_path / "cache")
    restored = reopened.get("k" * 64)
    assert restored is not None
    assert restored.to_dict() == result.without_artifacts().to_dict()


def test_schema_mismatch_refuses_the_directory(tmp_path):
    root = tmp_path / "cache"
    ResultCache(root=root)
    (root / "cache.json").write_text(json.dumps({"schema": "repro-cache/999"}))
    with pytest.raises(ValueError, match="schema"):
        ResultCache(root=root)


def test_make_cache_resolution(tmp_path):
    assert make_cache(None) is None
    cache = ResultCache(root=tmp_path / "cache")
    assert make_cache(cache) is cache
    assert make_cache(tmp_path / "other").root == tmp_path / "other"
    with pytest.raises(TypeError, match="cache"):
        make_cache(42)


# ---------------------------------------------------------------------------
# Cross-campaign dedup + bit-identical replay
# ---------------------------------------------------------------------------
def test_identical_resubmission_is_all_hits_and_bit_identical(tmp_path):
    cache = ResultCache(root=tmp_path / "cache")
    cold = run_campaign(CAMPAIGN, seed=1, cache=cache)
    warm = run_campaign(CAMPAIGN, seed=1, cache=cache)
    assert cold.manifest["cache"] == {
        "n_points": 4, "n_unique": 4, "hits": 0, "computed": 4, "replayed": 0, "failed": 0,
    }
    assert warm.manifest["cache"] == {
        "n_points": 4, "n_unique": 4, "hits": 4, "computed": 0, "replayed": 0, "failed": 0,
    }
    assert _payloads(warm) == _payloads(cold)


def test_overlapping_grids_share_work_across_campaigns(tmp_path):
    cache = ResultCache(root=tmp_path / "cache")
    first = CampaignSpec(base=BASE, grid={"concentration": (1e-7, 1e-6)})
    second = CampaignSpec(base=BASE, grid={"concentration": (1e-6, 1e-5)})
    run_campaign(first, seed=1, cache=cache)
    overlap = run_campaign(second, seed=1, cache=cache)
    # 1e-6 was computed by the first campaign; only 1e-5 is new.
    assert overlap.manifest["cache"]["hits"] == 1
    assert overlap.manifest["cache"]["computed"] == 1


def test_duplicate_points_within_a_campaign_compute_once(tmp_path):
    # A zip axis repeating the same value yields identical points.
    duplicated = CampaignSpec(base=BASE, zip={"concentration": (1e-6, 1e-6, 1e-6)})
    result = run_campaign(duplicated, seed=1, cache=ResultCache(root=tmp_path / "c"))
    assert result.manifest["cache"] == {
        "n_points": 3, "n_unique": 1, "hits": 0, "computed": 1, "replayed": 2, "failed": 0,
    }
    payloads = [res.to_dict() for res in result.results()]
    assert payloads[0] == payloads[1] == payloads[2]


def test_cached_run_matches_uncached_run(tmp_path):
    plain = run_campaign(CAMPAIGN, seed=2)
    cached = run_campaign(CAMPAIGN, seed=2, cache=ResultCache(root=tmp_path / "c"))
    assert _payloads(cached) == _payloads(plain)


def test_different_seed_backend_or_version_never_hits(tmp_path):
    plan = CAMPAIGN.compile(1)
    keys_a = plan_keys(plan)
    assert set(plan_keys(plan, engine_version="0.0").values()).isdisjoint(keys_a.values())
    assert set(plan_keys(CAMPAIGN.compile(2)).values()).isdisjoint(keys_a.values())
    assert set(plan_keys(plan, backend="vectorized").values()).isdisjoint(keys_a.values())


def test_cache_entries_record_meta(tmp_path):
    cache = ResultCache(root=tmp_path / "cache")
    run_campaign(CAMPAIGN, seed=1, cache=cache)
    entries = sorted((tmp_path / "cache" / "objects").glob("??/*.json"))
    assert len(entries) == 4
    entry = json.loads(entries[0].read_text())
    assert entry["schema"] == CACHE_SCHEMA
    assert entry["key"] == entries[0].stem
    assert entry["meta"]["kind"] == "dna_assay"
    assert entry["meta"]["spec_hash"]


# ---------------------------------------------------------------------------
# Corruption: recompute, never crash, never a wrong number
# ---------------------------------------------------------------------------
def _corrupt_one_entry(root, mutate):
    path = sorted(root.glob("objects/??/*.json"))[0]
    entry = json.loads(path.read_text())
    mutate(path, entry)
    return path


@pytest.mark.parametrize(
    "mutate",
    [
        lambda path, entry: path.write_text("not json {"),
        lambda path, entry: path.write_text(json.dumps({**entry, "key": "0" * 64})),
        lambda path, entry: path.write_text(json.dumps({**entry, "result_sha256": "0" * 64})),
        lambda path, entry: path.write_text(json.dumps({"schema": "bogus/1"})),
        lambda path, entry: path.write_text(path.read_text()[: len(path.read_text()) // 2]),
    ],
    ids=["unparseable", "wrong-key", "bad-digest", "wrong-schema", "truncated"],
)
def test_corrupt_entry_is_a_miss_and_gets_recomputed(tmp_path, mutate):
    root = tmp_path / "cache"
    cold = run_campaign(CAMPAIGN, seed=1, cache=ResultCache(root=root, max_memory=0))
    _corrupt_one_entry(root, mutate)
    # Fresh instance: nothing in memory, every read verifies the disk.
    cache = ResultCache(root=root, max_memory=0)
    warm = run_campaign(CAMPAIGN, seed=1, cache=cache)
    assert warm.manifest["cache"]["hits"] == 3
    assert warm.manifest["cache"]["computed"] == 1  # the corrupted one
    assert cache.stats.corrupt == 1
    assert _payloads(warm) == _payloads(cold)
    # put() repaired the entry: a third run is all hits.
    repaired = run_campaign(CAMPAIGN, seed=1, cache=ResultCache(root=root, max_memory=0))
    assert repaired.manifest["cache"]["hits"] == 4


def test_missing_entry_file_is_a_plain_miss_not_corrupt(tmp_path):
    cache = ResultCache(root=tmp_path / "cache")
    assert cache.get("f" * 64) is None
    assert cache.stats.corrupt == 0
    assert cache.stats.misses == 1


# ---------------------------------------------------------------------------
# Concurrent writers
# ---------------------------------------------------------------------------
def test_concurrent_writers_on_one_cache_dir(tmp_path):
    root = tmp_path / "cache"
    result = Runner(seed=1).run(BASE).without_artifacts()
    keys = [format(n, "064x") for n in range(8)]
    errors = []

    def writer():
        try:
            cache = ResultCache(root=root, max_memory=0)
            for key in keys:
                cache.put(key, result)
                got = cache.get(key)
                assert got is not None
                assert got.to_dict() == result.to_dict()
        except Exception as error:  # noqa: BLE001 — collected for the assert
            errors.append(error)

    threads = [threading.Thread(target=writer) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    survivor = ResultCache(root=root)
    assert survivor.n_entries() == len(keys)
    for key in keys:
        assert survivor.get(key).to_dict() == result.to_dict()
    # No temp-file litter from the atomic writes.
    assert not list(root.glob("objects/??/*.tmp"))


def test_dispatch_requires_matching_plan_and_summary(tmp_path):
    cache = ResultCache(root=tmp_path / "cache")
    plan = CAMPAIGN.compile(1)
    from repro.campaigns import SerialExecutor

    dispatch = CachedDispatch(plan, SerialExecutor(), cache)
    outcomes = list(dispatch.outcomes())
    assert sorted(outcome.point.index for outcome in outcomes) == [0, 1, 2, 3]
    assert dispatch.summary()["computed"] == 4


def test_cache_rejects_injected_inputs(tmp_path):
    # Injected substrates change results without changing the content
    # key, so every cache-aware entry point must refuse the combination
    # eagerly — before any store or directory is touched.
    from repro.campaigns import SerialExecutor

    cache = ResultCache(root=tmp_path / "cache")
    with pytest.raises(ValueError, match="inputs"):
        CachedDispatch(
            CAMPAIGN.compile(1), SerialExecutor(), cache, inputs={"substrate": object()}
        )
    out = tmp_path / "out"
    with pytest.raises(ValueError, match="inputs"):
        run_campaign(
            CAMPAIGN, seed=1, cache=cache, inputs={"substrate": object()}, out=str(out)
        )
    assert not out.exists()  # rejected before make_store ran
    # Without a cache the same inputs argument stays legal.
    uncached = run_campaign(CAMPAIGN, seed=1, inputs=None)
    assert uncached.manifest["n_points"] == 4
