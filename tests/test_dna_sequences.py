"""DNA sequence algebra, including hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dna.sequences import DnaSequence, Probe, Target, perfect_target_for

dna_strings = st.text(alphabet="ACGT", min_size=1, max_size=60)


class TestBasics:
    def test_construction_normalises_case(self):
        assert str(DnaSequence("acgt")) == "ACGT"

    def test_rejects_invalid_bases(self):
        with pytest.raises(ValueError):
            DnaSequence("ACGX")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DnaSequence("")

    def test_equality_and_hash(self):
        assert DnaSequence("ACGT") == DnaSequence("acgt")
        assert len({DnaSequence("ACGT"), DnaSequence("ACGT")}) == 1

    def test_indexing(self):
        assert DnaSequence("ACGT")[1] == "C"

    def test_gc_content(self):
        assert DnaSequence("GGCC").gc_content() == 1.0
        assert DnaSequence("AATT").gc_content() == 0.0
        assert DnaSequence("ACGT").gc_content() == 0.5


class TestComplement:
    def test_complement(self):
        assert str(DnaSequence("ACGT").complement()) == "TGCA"

    def test_reverse_complement(self):
        assert str(DnaSequence("AACG").reverse_complement()) == "CGTT"

    @given(dna_strings)
    @settings(max_examples=80, deadline=None)
    def test_complement_is_involution(self, s):
        seq = DnaSequence(s)
        assert seq.complement().complement() == seq

    @given(dna_strings)
    @settings(max_examples=80, deadline=None)
    def test_reverse_complement_is_involution(self, s):
        seq = DnaSequence(s)
        assert seq.reverse_complement().reverse_complement() == seq

    @given(dna_strings)
    @settings(max_examples=50, deadline=None)
    def test_gc_content_invariant_under_complement(self, s):
        # A<->T and G<->C both preserve the GC class of each base.
        seq = DnaSequence(s)
        assert seq.complement().gc_content() == pytest.approx(seq.gc_content())


class TestMeltingTemperature:
    def test_wallace_rule_short(self):
        # 2*AT + 4*GC for <14-mers.
        assert DnaSequence("AATTGGCC").melting_temperature_c() == pytest.approx(2 * 4 + 4 * 4)

    def test_gc_rich_melts_higher(self):
        at = DnaSequence("ATATATATATATATATATAT")
        gc = DnaSequence("GCGCGCGCGCGCGCGCGCGC")
        assert gc.melting_temperature_c() > at.melting_temperature_c()


class TestMismatches:
    def test_perfect_match_zero(self):
        probe = Probe("p", DnaSequence("ACGTACGTACGTACGTACGT"))
        target = perfect_target_for(probe)
        assert target.mismatches_with(probe) == 0

    def test_point_mutation_counts_one(self):
        rng = np.random.default_rng(1)
        probe_seq = DnaSequence.random(20, rng)
        probe = Probe("p", probe_seq)
        mutated = probe_seq.with_mismatches(1, rng)
        target = Target("t", mutated.reverse_complement())
        assert target.mismatches_with(probe) <= 1

    def test_sliding_alignment_finds_embedded_site(self):
        rng = np.random.default_rng(2)
        probe = Probe("p", DnaSequence.random(20, rng))
        site = probe.sequence.reverse_complement()
        flank_left = DnaSequence.random(30, rng)
        flank_right = DnaSequence.random(30, rng)
        embedded = DnaSequence(str(flank_left) + str(site) + str(flank_right))
        target = Target("t", embedded)
        assert target.mismatches_with(probe) == 0

    def test_unrelated_sequences_many_mismatches(self):
        rng = np.random.default_rng(3)
        probe = Probe("p", DnaSequence.random(20, rng))
        unrelated = Target("t", DnaSequence.random(20, rng))
        # Random 20-mers differ in ~3/4 of positions under best alignment.
        assert unrelated.mismatches_with(probe) >= 5

    def test_probe_longer_than_target(self):
        probe = Probe("p", DnaSequence("ACGTACGTACGTACGTACGT"))
        short_target = Target("t", DnaSequence("ACGTA"))
        assert short_target.mismatches_with(probe) >= 15

    @given(dna_strings.filter(lambda s: 5 <= len(s) <= 40))
    @settings(max_examples=50, deadline=None)
    def test_perfect_target_always_zero_mismatches(self, s):
        probe = Probe("p", DnaSequence(s))
        assert perfect_target_for(probe).mismatches_with(probe) == 0

    def test_with_mismatches_exact_count(self):
        rng = np.random.default_rng(4)
        seq = DnaSequence.random(20, rng)
        for n in (0, 1, 3, 5):
            mutated = seq.with_mismatches(n, rng)
            hamming = sum(1 for a, b in zip(str(seq), str(mutated)) if a != b)
            assert hamming == n

    def test_with_mismatches_rejects_too_many(self):
        with pytest.raises(ValueError):
            DnaSequence("ACGT").with_mismatches(5)


class TestProbeTarget:
    def test_probe_length_limits(self):
        with pytest.raises(ValueError):
            Probe("bad", DnaSequence("ACG"))

    def test_target_length_accounting(self):
        rng = np.random.default_rng(5)
        region = DnaSequence.random(20, rng)
        target = Target("t", region, total_length=2000)
        assert target.length == 2000
        bare = Target("t2", region)
        assert bare.length == 20

    def test_target_rejects_short_total(self):
        rng = np.random.default_rng(6)
        with pytest.raises(ValueError):
            Target("t", DnaSequence.random(20, rng), total_length=10)

    def test_random_reproducible(self):
        assert DnaSequence.random(20, rng=7) == DnaSequence.random(20, rng=7)
