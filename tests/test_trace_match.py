"""Trace assertions: predicates, pattern checks, structured violations."""

import math

import pytest

from repro.trace import (
    REG_REJECT,
    REG_WRITE,
    SEQ_SAMPLE,
    SERIAL_FRAME,
    Ever,
    Never,
    Precedes,
    SlotSettles,
    TraceAssertionError,
    TraceRecorder,
    Violation,
    assert_trace,
    check_trace,
    readout_invariants,
    where,
)


def _event(rec=None, **kwargs):
    rec = rec if rec is not None else TraceRecorder()
    return rec.reg_write(
        kwargs.get("name", "generator_dac"), 0x00, kwargs.get("value", 58), 0
    )


class TestWhere:
    def test_kind_match(self):
        event = _event()
        assert where(kind=REG_WRITE)(event)
        assert not where(kind=SEQ_SAMPLE)(event)

    def test_channel_exact_and_prefix(self):
        event = _event()
        assert where(channel="reg.generator_dac")(event)
        assert not where(channel="reg.collector_dac")(event)
        assert where(channel="reg.")(event)
        assert where(channel="reg.*")(event)
        assert not where(channel="serial.")(event)

    def test_data_equality(self):
        event = _event(value=58)
        assert where(value=58)(event)
        assert not where(value=59)(event)
        assert not where(missing_field=1)(event)

    def test_conjunction(self):
        event = _event()
        assert where(kind=REG_WRITE, channel="reg.", value=58)(event)
        assert not where(kind=REG_WRITE, channel="reg.", value=0)(event)


class TestViolation:
    def test_render_anchors_to_event(self):
        v = Violation(rule="r", message="m", seq=7, time_s=1.5e-3)
        text = v.render()
        assert "r: m" in text and "event 7" in text and "0.0015 s" in text

    def test_render_positionless(self):
        assert Violation(rule="r", message="m").render() == "r: m"

    def test_to_dict(self):
        v = Violation(rule="r", message="m", seq=1, channel="c", data={"k": 2})
        assert v.to_dict() == {
            "rule": "r", "message": "m", "seq": 1, "time_s": None,
            "channel": "c", "data": {"k": 2},
        }


class TestAssertions:
    def test_never_flags_each_match(self):
        rec = TraceRecorder()
        rec.reg_reject("status", 0x05, 1, "read-only register")
        rec.reg_reject("chip_id", 0x06, 2, "read-only register")
        violations = Never(where(kind=REG_REJECT), rule="no-rejects").check(rec.trace())
        assert len(violations) == 2
        assert violations[0].seq == 0 and violations[1].seq == 1
        assert violations[0].channel == "reg.status"

    def test_never_passes_clean(self):
        rec = TraceRecorder()
        _event(rec)
        assert Never(where(kind=REG_REJECT), rule="no-rejects").check(rec.trace()) == []

    def test_ever_requires_one_match(self):
        rec = TraceRecorder()
        _event(rec)
        trace = rec.trace()
        assert Ever(where(kind=REG_WRITE), rule="wrote").check(trace) == []
        missing = Ever(where(kind=SEQ_SAMPLE), rule="sampled").check(trace)
        assert len(missing) == 1 and missing[0].seq is None

    def test_precedes_satisfied(self):
        rec = TraceRecorder()
        rec.reg_write("calibration_enable", 0x03, 1, 0)
        rec.advance(1e-3)
        rec.serial_frame("->", "RUN_FRAME", 0, 0, b"", b"")
        violations = Precedes(
            cause=where(kind=REG_WRITE, value=1),
            effect=where(kind=SERIAL_FRAME, command="RUN_FRAME"),
            rule="calibrate-first",
        ).check(rec.trace())
        assert violations == []

    def test_precedes_violated_when_cause_missing_or_late(self):
        rec = TraceRecorder()
        rec.serial_frame("->", "RUN_FRAME", 0, 0, b"", b"")
        rec.advance(1e-3)
        rec.reg_write("calibration_enable", 0x03, 1, 0)  # too late
        violations = Precedes(
            cause=where(kind=REG_WRITE, value=1),
            effect=where(kind=SERIAL_FRAME, command="RUN_FRAME"),
            rule="calibrate-first",
        ).check(rec.trace())
        assert len(violations) == 1
        assert violations[0].rule == "calibrate-first"
        assert violations[0].seq == 0

    def test_precedes_within_window(self):
        rec = TraceRecorder()
        rec.reg_write("calibration_enable", 0x03, 1, 0)
        rec.advance(10.0)
        rec.serial_frame("->", "RUN_FRAME", 0, 0, b"", b"")
        check = Precedes(
            cause=where(kind=REG_WRITE, value=1),
            effect=where(kind=SERIAL_FRAME, command="RUN_FRAME"),
            rule="fresh-calibration",
            within_s=1.0,
        )
        assert len(check.check(rec.trace())) == 1  # cause is stale

    def test_slot_settles_thresholds(self):
        # 3 taus at 4 MHz -> ~119 ns minimum slot.
        check = SlotSettles(4e6)
        assert check.min_slot_s == pytest.approx(3.0 / (2 * math.pi * 4e6))
        rec = TraceRecorder()
        rec.seq_sample(0, 0, time_s=0.0, slot_s=4.88e-7)   # paper slot: fine
        rec.seq_sample(0, 1, time_s=1e-6, slot_s=5e-8)     # too short
        violations = check.check(rec.trace())
        assert len(violations) == 1
        assert violations[0].data["col"] == 1
        assert "settling minimum" in violations[0].message

    def test_slot_settles_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            SlotSettles(0.0)


class TestDrivers:
    def _trace_with_two_problems(self):
        rec = TraceRecorder()
        rec.serial_frame("->", "RUN_FRAME", 0, 0, b"", b"")       # no prior cal
        rec.advance(1e-3)
        rec.reg_reject("status", 0x05, 1, "read-only register")   # rejected write
        return rec.trace()

    def test_check_trace_orders_by_event(self):
        violations = check_trace(self._trace_with_two_problems(), readout_invariants())
        assert [v.rule for v in violations] == ["calibrate-before-run", "writes-accepted"]
        assert [v.seq for v in violations] == [0, 1]

    def test_positionless_violations_sort_last(self):
        rec = TraceRecorder()
        rec.reg_reject("status", 0x05, 1, "read-only register")
        violations = check_trace(
            rec.trace(),
            [Ever(where(kind=SEQ_SAMPLE), rule="sampled"),
             Never(where(kind=REG_REJECT), rule="no-rejects")],
        )
        assert [v.rule for v in violations] == ["no-rejects", "sampled"]

    def test_assert_trace_raises_with_structured_list(self):
        trace = self._trace_with_two_problems()
        with pytest.raises(TraceAssertionError) as excinfo:
            assert_trace(trace, readout_invariants())
        error = excinfo.value
        assert isinstance(error, AssertionError)
        assert len(error.violations) == 2
        assert "2 trace violation(s)" in str(error)
        assert all(isinstance(v, Violation) for v in error.violations)

    def test_assert_trace_passes_clean(self):
        rec = TraceRecorder()
        rec.reg_write("calibration_enable", 0x03, 1, 0)
        rec.serial_frame("->", "RUN_FRAME", 0, 0, b"", b"")
        assert_trace(rec.trace(), readout_invariants())

    def test_readout_invariants_optional_settling(self):
        rules = {inv.rule for inv in readout_invariants()}
        assert rules == {"frames-intact", "writes-accepted", "calibrate-before-run"}
        with_bw = readout_invariants(amplifier_bw_hz=4e6)
        assert {inv.rule for inv in with_bw} == rules | {"slot-settling"}

    def test_frames_intact_catches_corruption(self):
        rec = TraceRecorder()
        rec.reg_write("calibration_enable", 0x03, 1, 0)
        rec.serial_frame("<-", "READ_COUNTERS", 0, 3, b"\x01\x02\x03",
                         b"\x01\x02\x07", flipped=(21,), ok=False,
                         error="checksum mismatch")
        violations = check_trace(rec.trace(), readout_invariants())
        assert [v.rule for v in violations] == ["frames-intact"]
        assert violations[0].data["flipped"] == [21]
