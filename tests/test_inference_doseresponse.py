"""Dose–response fitting: log-linear, Hill, LoD and the pairs bootstrap."""

import math

import numpy as np
import pytest

from repro.inference import (
    analyze_dose_response,
    bootstrap_loglinear,
    hill_fit,
    loglinear_fit,
)


def synthetic_loglog(slope=1.0, intercept=-3.0, sigma=0.0, n=24, seed=0):
    rng = np.random.default_rng(seed)
    x = np.logspace(-9, -5, n)
    log_y = intercept + slope * np.log10(x) + rng.normal(0.0, sigma, size=n)
    return x, 10.0**log_y


class TestLogLinearFit:
    def test_recovers_exact_parameters(self):
        x, y = synthetic_loglog(slope=0.8, intercept=-2.5)
        fit = loglinear_fit(x, y, log_y=True)
        assert fit.slope == pytest.approx(0.8, abs=1e-12)
        assert fit.intercept == pytest.approx(-2.5, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.rmse == pytest.approx(0.0, abs=1e-12)

    def test_semilog_variant(self):
        x = np.logspace(-8, -5, 10)
        y = 4.0 + 2.0 * np.log10(x)
        fit = loglinear_fit(x, y, log_y=False)
        assert fit.slope == pytest.approx(2.0)
        np.testing.assert_allclose(fit.predict(x), y)

    def test_predict_invert_roundtrip(self):
        x, y = synthetic_loglog(sigma=0.05)
        fit = loglinear_fit(x, y, log_y=True)
        probe = np.array([3e-8, 7e-7])
        np.testing.assert_allclose(fit.invert(fit.predict(probe)), probe, rtol=1e-10)

    def test_invert_edge_cases(self):
        x, y = synthetic_loglog()
        fit = loglinear_fit(x, y, log_y=True)
        assert math.isnan(float(fit.invert(-1.0)))
        assert math.isnan(float(fit.invert(0.0)))

    def test_standard_errors_shrink_with_noise(self):
        x, noisy = synthetic_loglog(sigma=0.2, seed=1)
        _, quiet = synthetic_loglog(sigma=0.01, seed=1)
        assert loglinear_fit(x, quiet, log_y=True).slope_se < loglinear_fit(
            x, noisy, log_y=True
        ).slope_se

    def test_covariance_matches_se(self):
        x, y = synthetic_loglog(sigma=0.1, seed=2)
        fit = loglinear_fit(x, y, log_y=True)
        assert fit.covariance[1][1] == pytest.approx(fit.slope_se**2)
        assert fit.covariance[0][0] == pytest.approx(fit.intercept_se**2)

    def test_residuals(self):
        x, y = synthetic_loglog(sigma=0.1, seed=3)
        fit = loglinear_fit(x, y, log_y=True)
        residuals = fit.residuals(x, y)
        assert residuals.std(ddof=2) == pytest.approx(fit.rmse, rel=1e-9)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="two points"):
            loglinear_fit([1e-6], [1.0])
        with pytest.raises(ValueError, match="positive"):
            loglinear_fit([0.0, 1e-6], [1.0, 2.0])
        with pytest.raises(ValueError, match="log_y"):
            loglinear_fit([1e-7, 1e-6], [-1.0, 2.0], log_y=True)
        with pytest.raises(ValueError, match="distinct"):
            loglinear_fit([1e-6, 1e-6], [1.0, 2.0])


class TestHillFit:
    def make_hill(self, bottom=1.0, top=9.0, ec50=1e-7, n=1.5, sigma=0.0, seed=0, points=20):
        rng = np.random.default_rng(seed)
        x = np.logspace(-10, -4, points)
        y = bottom + (top - bottom) / (1.0 + (ec50 / x) ** n)
        return x, y + rng.normal(0.0, sigma, size=len(x))

    def test_recovers_parameters(self):
        x, y = self.make_hill()
        fit = hill_fit(x, y)
        assert fit.converged
        assert fit.bottom == pytest.approx(1.0, abs=1e-4)
        assert fit.top == pytest.approx(9.0, abs=1e-4)
        assert fit.ec50 == pytest.approx(1e-7, rel=1e-3)
        assert fit.hill_n == pytest.approx(1.5, abs=1e-3)
        assert fit.r_squared > 0.999999

    def test_langmuir_pins_the_exponent(self):
        x, y = self.make_hill(n=1.0, sigma=0.01, seed=4)
        fit = hill_fit(x, y, fix_hill_n=1.0)
        assert fit.hill_n == 1.0
        assert fit.param_se[3] == 0.0
        assert fit.ec50 == pytest.approx(1e-7, rel=0.1)

    def test_noisy_fit_reports_uncertainty(self):
        x, y = self.make_hill(sigma=0.2, seed=5)
        fit = hill_fit(x, y)
        assert fit.rmse > 0
        assert fit.param_se[2] > 0  # ec50 SE

    def test_invert(self):
        x, y = self.make_hill()
        fit = hill_fit(x, y)
        mid = fit.bottom + 0.5 * (fit.top - fit.bottom)
        assert float(fit.invert(mid)) == pytest.approx(fit.ec50, rel=1e-6)
        assert math.isnan(float(fit.invert(fit.top + 1.0)))

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError, match="at least"):
            hill_fit([1e-8, 1e-7, 1e-6], [1, 2, 3])
        x = np.logspace(-8, -5, 8)
        with pytest.raises(ValueError, match="constant"):
            hill_fit(x, np.ones(8))


class TestAnalyzeDoseResponse:
    def test_lod_with_explicit_blanks(self):
        x, y = synthetic_loglog(slope=1.0, intercept=-3.0)
        blanks = [1e-12, 1.2e-12, 0.9e-12, 1.1e-12]
        result = analyze_dose_response(x, y, model="loglog", blank_responses=blanks)
        assert result.blank_source == "blank"
        assert result.blank_n == 4
        # y = 1e-3 * c exactly, so LoD inverts the 3σ-blank level.
        y_crit = result.blank_mean + 3 * result.blank_sigma
        assert result.lod == pytest.approx(y_crit / 1e-3, rel=1e-9)
        assert result.lod < result.loq
        assert result.dynamic_range_decades > 1.0
        assert result.increasing

    def test_zero_concentration_points_become_blanks(self):
        x, y = synthetic_loglog()
        x_full = np.concatenate([[0.0, 0.0, 0.0], x])
        y_full = np.concatenate([[1e-12, 1.3e-12, 0.8e-12], y])
        result = analyze_dose_response(x_full, y_full, model="loglog")
        assert result.blank_source == "zero-concentration"
        assert result.blank_n == 3
        assert result.fit.n_points == len(x)  # blanks excluded from the fit

    def test_residual_fallback(self):
        x, y = synthetic_loglog(sigma=0.05, seed=6)
        result = analyze_dose_response(x, y, model="loglog")
        assert result.blank_source == "fit-residual"
        assert result.blank_sigma > 0
        assert math.isfinite(result.lod)

    def test_hill_model_end_to_end(self):
        rng = np.random.default_rng(7)
        x = np.logspace(-9, -5, 30)
        y = 0.5 + 8.0 / (1.0 + (1e-7 / x)) + rng.normal(0, 0.02, 30)
        result = analyze_dose_response(
            x, y, model="langmuir", blank_responses=[0.5, 0.52, 0.48]
        )
        assert result.model == "langmuir"
        assert x.min() < result.range_high < x.max()  # saturating curve tops out
        assert result.dynamic_range_decades > 0

    def test_errors(self):
        x, y = synthetic_loglog()
        with pytest.raises(ValueError, match="model"):
            analyze_dose_response(x, y, model="spline")
        with pytest.raises(ValueError, match="lod_sigma"):
            analyze_dose_response(x, y, lod_sigma=5.0, loq_sigma=3.0)
        with pytest.raises(ValueError, match="positive-concentration"):
            analyze_dose_response([0.0, 0.0], [1.0, 2.0])


class TestBootstrapLoglinear:
    def test_deterministic(self):
        x, y = synthetic_loglog(sigma=0.1, seed=8)
        a = bootstrap_loglinear(x, y, log_y=True, seed=3)
        b = bootstrap_loglinear(x, y, log_y=True, seed=3)
        assert a == b

    def test_brackets_point_estimates(self):
        x, y = synthetic_loglog(sigma=0.05, seed=9)
        blanks = [1e-12, 1.4e-12, 0.7e-12, 1.2e-12, 0.9e-12]
        fit = loglinear_fit(x, y, log_y=True)
        point = analyze_dose_response(x, y, model="loglog", blank_responses=blanks)
        boot = bootstrap_loglinear(
            x, y, log_y=True, blank_responses=blanks, n_resamples=1000, seed=0
        )
        assert boot.slope[0] < fit.slope < boot.slope[1]
        assert boot.lod[0] < point.lod < boot.lod[1]
        assert boot.n_valid > 900

    def test_zero_dose_blank_pool_matches_point_estimate(self):
        """The CI must bracket the same LoD definition the estimate
        used: zero-concentration points are the blank pool for both."""
        x, y = synthetic_loglog(sigma=0.02, seed=10)
        x_full = np.concatenate([[0.0, 0.0, 0.0, 0.0], x])
        y_full = np.concatenate([[1e-12, 1.4e-12, 0.8e-12, 1.1e-12], y])
        point = analyze_dose_response(x_full, y_full, model="loglog")
        assert point.blank_source == "zero-concentration"
        boot = bootstrap_loglinear(x_full, y_full, log_y=True, n_resamples=1000, seed=0)
        assert boot.lod[0] < point.lod < boot.lod[1]

    def test_single_blank_anchors_the_level(self):
        """One zero-dose point: the estimate uses it as the blank level
        (σ from residuals) — the CI must do the same, not fall back to
        a different blank level and exclude its own point estimate."""
        x, y = synthetic_loglog(sigma=0.02, seed=11)
        x_full = np.concatenate([[0.0], x])
        y_full = np.concatenate([[1e-12], y])
        point = analyze_dose_response(x_full, y_full, model="loglog")
        assert point.blank_mean == 1e-12
        boot = bootstrap_loglinear(x_full, y_full, log_y=True, n_resamples=1000, seed=0)
        assert boot.lod[0] < point.lod < boot.lod[1]

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError, match="positive-concentration"):
            bootstrap_loglinear([0.0], [1.0])
        x, y = synthetic_loglog()
        with pytest.raises(ValueError, match="confidence"):
            bootstrap_loglinear(x, y, confidence=2.0)
        with pytest.raises(ValueError, match="n_resamples"):
            bootstrap_loglinear(x, y, n_resamples=0)
