"""CampaignSpec validation, axis expansion, serialization, seed stability."""

import json

import pytest

from repro.campaigns import CampaignSpec, Plan, campaign_from_dict, replicate_seed
from repro.experiments import AdcTransferSpec, DnaAssaySpec, ScreeningSpec

BASE = DnaAssaySpec(probe_count=4, replicates=4, target_subset=(0, 1))


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------
def test_rejects_non_spec_base():
    with pytest.raises(TypeError, match="ExperimentSpec"):
        CampaignSpec(base={"kind": "dna_assay"})


def test_rejects_unknown_axis_field():
    with pytest.raises(ValueError, match="not on DnaAssaySpec"):
        CampaignSpec(base=BASE, grid={"nonsense": (1, 2)})
    with pytest.raises(ValueError, match="not on DnaAssaySpec"):
        CampaignSpec(base=BASE, zip={"nope": (1,)})


def test_rejects_empty_axis_and_bad_replicates():
    with pytest.raises(ValueError, match="no values"):
        CampaignSpec(base=BASE, grid={"concentration": ()})
    with pytest.raises(ValueError, match="replicates"):
        CampaignSpec(base=BASE, replicates=0)


def test_rejects_grid_zip_overlap_and_ragged_zip():
    with pytest.raises(ValueError, match="both grid and zip"):
        CampaignSpec(
            base=BASE,
            grid={"concentration": (1e-6,)},
            zip={"concentration": (1e-5,)},
        )
    with pytest.raises(ValueError, match="equal lengths"):
        CampaignSpec(base=BASE, zip={"concentration": (1e-6, 1e-5), "frame_s": (1.0,)})


def test_rejects_bare_scalar_axis_values():
    # A lone string must not explode character-by-character, and other
    # scalars must name the axis instead of raising a raw TypeError.
    with pytest.raises(ValueError, match="wrap it in a list"):
        CampaignSpec(base=BASE, grid={"panel": "mismatch"})
    with pytest.raises(ValueError, match="wrap it in a list"):
        CampaignSpec(base=BASE, zip={"panel": "mismatch"})
    with pytest.raises(ValueError, match="'concentration'.*wrap it in a list"):
        CampaignSpec(base=BASE, grid={"concentration": 1e-6})
    assert CampaignSpec(base=BASE, grid={"panel": ("mismatch",)}).n_points == 1


def test_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown backend"):
        CampaignSpec(base=BASE, backend="gpu")


# ---------------------------------------------------------------------------
# Expansion
# ---------------------------------------------------------------------------
def test_grid_is_cartesian_product_in_declaration_order():
    campaign = CampaignSpec(
        base=BASE,
        grid={"concentration": (1e-7, 1e-6), "frame_s": (0.5, 1.0, 2.0)},
    )
    assert campaign.n_points == 6
    assignments = campaign.assignments()
    assert assignments[0] == {"concentration": 1e-7, "frame_s": 0.5}
    # Last grid axis varies fastest.
    assert assignments[1] == {"concentration": 1e-7, "frame_s": 1.0}
    assert assignments[-1] == {"concentration": 1e-6, "frame_s": 2.0}


def test_zip_advances_in_lockstep():
    campaign = CampaignSpec(
        base=BASE, zip={"concentration": (1e-7, 1e-6), "frame_s": (0.5, 2.0)}
    )
    assert campaign.n_points == 2
    assert campaign.assignments() == [
        {"concentration": 1e-7, "frame_s": 0.5},
        {"concentration": 1e-6, "frame_s": 2.0},
    ]


def test_replicates_are_innermost_and_share_the_spec():
    campaign = CampaignSpec(base=BASE, grid={"concentration": (1e-7, 1e-6)}, replicates=3)
    plan = campaign.compile(seed=9)
    assert len(plan) == 6
    assert [p.replicate for p in plan] == [0, 1, 2, 0, 1, 2]
    assert plan[0].spec == plan[1].spec == plan[2].spec
    assert plan[0].spec.concentration == 1e-7
    assert plan[3].spec.concentration == 1e-6
    assert [p.index for p in plan] == list(range(6))


def test_axis_values_hit_spec_validation():
    campaign = CampaignSpec(base=BASE, grid={"concentration": (1e-6, -1.0)})
    with pytest.raises(ValueError, match="non-negative"):
        campaign.compile(seed=0)


def test_plan_for_specs_is_the_run_batch_shape():
    specs = [BASE, BASE.replace(concentration=1e-6), AdcTransferSpec()]
    plan = Plan.for_specs(specs, seed=4)
    assert len(plan) == 3
    assert all(p.seed == 4 and p.replicate == 0 for p in plan)
    assert plan.kinds() == ["dna_assay", "adc_transfer"]


# ---------------------------------------------------------------------------
# Seed derivation
# ---------------------------------------------------------------------------
def test_replicate_zero_keeps_the_root_seed():
    assert replicate_seed(17, 0) == 17
    assert replicate_seed(17, 1) != 17
    with pytest.raises(ValueError):
        replicate_seed(17, -1)


def test_replicate_seeds_are_stable_and_distinct():
    seeds = [replicate_seed(3, r) for r in range(8)]
    assert seeds == [replicate_seed(3, r) for r in range(8)]  # deterministic
    assert len(set(seeds)) == 8
    assert [replicate_seed(4, r) for r in range(1, 8)] != seeds[1:]  # root-sensitive


def test_point_seed_independent_of_surrounding_axes():
    """Extending an axis must not reseed existing points."""
    small = CampaignSpec(base=BASE, grid={"concentration": (1e-6,)}, replicates=2)
    large = CampaignSpec(
        base=BASE, grid={"concentration": (1e-8, 1e-7, 1e-6)}, replicates=2
    )
    small_points = {
        (p.spec.content_hash(), p.replicate): p.seed for p in small.compile(seed=5)
    }
    large_points = {
        (p.spec.content_hash(), p.replicate): p.seed for p in large.compile(seed=5)
    }
    for key, seed in small_points.items():
        assert large_points[key] == seed


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------
def test_numpy_axis_values_are_normalized_at_construction():
    """tuple(np.arange(...)) axes must serialize all the way through
    (content_hash, JSONL lines, manifests) — no 'int64 is not JSON
    serializable' mid-campaign."""
    import numpy as np

    campaign = CampaignSpec(
        base=BASE,
        grid={"probe_count": np.arange(2, 6, 2)},
        zip={"replicates": (np.int64(4), np.int64(8))},
    )
    assert campaign.grid["probe_count"] == (2, 4)
    assert all(type(v) is int for v in campaign.grid["probe_count"])
    assert all(type(v) is int for v in campaign.zip["replicates"])
    json.dumps(campaign.to_dict())  # round-trips cleanly
    plan = campaign.compile(seed=1)
    json.dumps(plan.describe())
    assert plan[0].spec.to_json()  # spec fields are plain python too


def test_campaign_round_trips_through_json():
    campaign = CampaignSpec(
        base=ScreeningSpec(library_size=2000),
        grid={"viable_rate": (1e-4, 1e-3)},
        zip={},
        replicates=2,
        backend=None,
        name="screen-mc",
    )
    back = CampaignSpec.from_json(campaign.to_json())
    assert back == campaign
    assert campaign_from_dict(json.loads(campaign.to_json())) == campaign
    assert back.base == campaign.base
    assert back.n_points == 4


def test_from_dict_rejects_garbage():
    with pytest.raises(ValueError, match="'base' spec"):
        CampaignSpec.from_dict({"grid": {}})
    with pytest.raises(ValueError, match="unknown campaign fields"):
        CampaignSpec.from_dict({"base": BASE.to_dict(), "bogus": 1})


def test_summary_mentions_shape():
    campaign = CampaignSpec(
        base=BASE, grid={"concentration": (1e-7, 1e-6)}, replicates=4, name="fig4"
    )
    text = campaign.summary()
    assert "fig4" in text and "8 points" in text and "concentration×2" in text
