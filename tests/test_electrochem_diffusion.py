"""1-D diffusion solver: conservation, steady state, closed forms."""

import numpy as np
import pytest

from repro.electrochem.diffusion import (
    DiffusionDomain,
    ramp_time_constant,
    surface_concentration_quasi_static,
)


def make_domain():
    return DiffusionDomain(height=50e-6, cells=50, diffusion_coefficient=6e-10)


class TestDomainBasics:
    def test_grid(self):
        dom = make_domain()
        assert dom.dz == pytest.approx(1e-6)
        assert len(dom.z) == 50
        assert dom.surface_concentration == 0.0

    def test_reset(self):
        dom = make_domain()
        dom.reset(1.0)
        assert np.all(dom.concentration == 1.0)
        with pytest.raises(ValueError):
            dom.reset(-1.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            DiffusionDomain(0.0, 10, 1e-9)
        with pytest.raises(ValueError):
            DiffusionDomain(1e-5, 2, 1e-9)

    def test_stable_dt_positive(self):
        assert make_domain().stable_dt() > 0


class TestEvolution:
    def test_steady_state_matches_quasi_static(self):
        dom = make_domain()
        flux = 1e-6
        dt = 0.02
        for _ in range(int(20 / dt)):
            dom.step(dt, flux)
        expected = surface_concentration_quasi_static(flux, 50e-6, 6e-10)
        assert dom.surface_concentration == pytest.approx(expected, rel=0.05)

    def test_no_flux_stays_zero(self):
        dom = make_domain()
        for _ in range(100):
            dom.step(0.01, 0.0)
        assert dom.total_amount() == pytest.approx(0.0, abs=1e-15)

    def test_concentration_non_negative(self):
        dom = make_domain()
        dom.reset(0.5)
        for _ in range(200):
            dom.step(0.01, 0.0, consume_fraction=0.5)
        assert np.all(dom.concentration >= 0.0)

    def test_consumption_lowers_surface(self):
        consuming = make_domain()
        conserving = make_domain()
        for _ in range(200):
            consuming.step(0.01, 1e-6, consume_fraction=0.2)
            conserving.step(0.01, 1e-6, consume_fraction=0.0)
        assert consuming.surface_concentration < conserving.surface_concentration

    def test_mass_grows_under_injection(self):
        dom = make_domain()
        before = dom.total_amount()
        dom.step(0.01, 1e-6)
        assert dom.total_amount() > before

    def test_profile_decreases_away_from_source(self):
        dom = make_domain()
        for _ in range(500):
            dom.step(0.01, 1e-6)
        profile = dom.concentration
        assert profile[0] > profile[len(profile) // 2] > profile[-1]

    def test_invalid_step_arguments(self):
        dom = make_domain()
        with pytest.raises(ValueError):
            dom.step(0.0, 1e-6)
        with pytest.raises(ValueError):
            dom.step(0.01, 1e-6, consume_fraction=2.0)


class TestClosedForms:
    def test_quasi_static_formula(self):
        assert surface_concentration_quasi_static(1e-6, 50e-6, 6e-10) == pytest.approx(
            1e-6 * 50e-6 / 6e-10
        )

    def test_quasi_static_zero_flux(self):
        assert surface_concentration_quasi_static(0.0, 50e-6, 6e-10) == 0.0

    def test_quasi_static_invalid(self):
        with pytest.raises(ValueError):
            surface_concentration_quasi_static(1e-6, 0.0, 1e-9)
        with pytest.raises(ValueError):
            surface_concentration_quasi_static(-1.0, 1e-5, 1e-9)

    def test_ramp_time_constant(self):
        tau = ramp_time_constant(50e-6, 6e-10)
        assert tau == pytest.approx((50e-6) ** 2 / (2 * 6e-10))

    def test_ramp_time_invalid(self):
        with pytest.raises(ValueError):
            ramp_time_constant(0.0, 1e-9)
