"""WaferSpec through the front doors: Runner, campaigns, CLI, service keys.

The wafer kind must behave like every other registered experiment —
runnable, sweepable axis by axis, serializable, and stable under the
service layer's content addressing (same spec => same cache key in any
process).
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.campaigns import CampaignSpec, run_campaign
from repro.cli import main
from repro.experiments import Runner, experiment_kinds, spec_from_dict
from repro.service import point_key, spec_key
from repro.wafer import WaferSpec, wafer_records_and_metrics

SPEC = WaferSpec(
    wafer_diameter_mm=60.0, die_width_mm=12.0, die_height_mm=12.0, rows=8, cols=8
)


# ---------------------------------------------------------------------------
# Runner front door
# ---------------------------------------------------------------------------
def test_runner_runs_a_wafer():
    result = Runner(seed=5).run(SPEC)
    assert result.kind == "wafer"
    assert result.seeds["root"] == 5
    assert "field" in result.seeds["streams"]
    assert result.metrics["n_dies"] == 12
    assert result.metrics["sites_total"] == 12 * 64
    assert len(result.records["die"]) == 12
    assert result.artifacts["layout"].n_dies == 12


def test_runner_result_matches_direct_evaluation():
    result = Runner(seed=5).run(SPEC)
    records, metrics = wafer_records_and_metrics(SPEC, 5)
    for name in records:
        assert np.array_equal(result.records[name], records[name])
    assert result.metrics == metrics


def test_committed_wafer_example_spec_is_loadable():
    # The CI wafer-smoke assets must stay valid.
    import json

    path = Path(__file__).resolve().parent.parent / "examples" / "specs" / "wafer_small.json"
    spec = spec_from_dict(json.loads(path.read_text()))
    assert spec.kind == "wafer"
    assert spec.layout().n_dies == 12
    assert not spec.white_only


def test_wafer_is_a_registered_kind():
    assert "wafer" in experiment_kinds()
    rebuilt = spec_from_dict(SPEC.to_dict())
    assert rebuilt == SPEC


def test_object_backend_is_rejected():
    with pytest.raises(ValueError, match="vectorized-only"):
        SPEC.replace(backend="object")


@pytest.mark.parametrize(
    "overrides, message",
    [
        (((1, 1, "rows", 4),), "not in"),
        (((0, 0, "frame_s", 0.2),), r"no die at grid \(0, 0\)"),
        (((1, 1, "frame_s"),), r"\(grid_x, grid_y, field, value\)"),
    ],
)
def test_invalid_die_overrides_raise(overrides, message):
    with pytest.raises(ValueError, match=message):
        SPEC.replace(die_overrides=overrides)


def test_die_overrides_survive_json_round_trip():
    spec = SPEC.replace(die_overrides=((1, 1, "frame_s", 0.25),))
    rebuilt = spec_from_dict(spec.to_dict())
    # JSON turns tuples into lists; construction re-normalises.
    assert rebuilt.die_overrides == ((1, 1, "frame_s", 0.25),)
    assert rebuilt == spec
    assert rebuilt.spec_hash() == spec.spec_hash()


# ---------------------------------------------------------------------------
# Campaign sweeps
# ---------------------------------------------------------------------------
def test_wafer_axes_sweep_with_grid():
    campaign = CampaignSpec(
        base=SPEC, grid={"reticle_sigma": (0.0, 0.3)}, replicates=2
    )
    result = run_campaign(campaign, seed=3)
    assert len(result.plan) == 4
    sigmas = set()
    for point in result.results():
        assert point.kind == "wafer"
        assert point.metrics["n_dies"] == 12
        sigmas.add(point.spec["reticle_sigma"])
    assert sigmas == {0.0, 0.3}


def test_kinds_cli_lists_wafer_axes(capsys):
    assert main(["kinds"]) == 0
    lines = {
        line.split()[0]: line.split()[1]
        for line in capsys.readouterr().out.splitlines()
        if line.strip()
    }
    assert "wafer" in lines
    fields = lines["wafer"].split(",")
    # Every sweepable axis is discoverable, wafer-specific ones included.
    for axis in ("reticle_sigma", "radial_gradient", "wafer_diameter_mm", "rows"):
        assert axis in fields


# ---------------------------------------------------------------------------
# Service-layer content addressing (cache keys)
# ---------------------------------------------------------------------------
def test_spec_hash_matches_spec_key_of_to_dict():
    assert SPEC.spec_hash() == spec_key(SPEC.to_dict())
    assert SPEC.spec_hash() != SPEC.replace(reticle_sigma=0.1).spec_hash()


def test_wafer_point_key_changes_with_spec_and_seed():
    base = point_key(SPEC.to_dict(), 1, "vectorized", "1.0")
    assert point_key(SPEC.replace(rows=4).to_dict(), 1, "vectorized", "1.0") != base
    assert point_key(SPEC.to_dict(), 2, "vectorized", "1.0") != base


def test_wafer_spec_hash_is_stable_across_processes():
    code = (
        "from repro.wafer import WaferSpec\n"
        "spec = WaferSpec(wafer_diameter_mm=60.0, die_width_mm=12.0, "
        "die_height_mm=12.0, rows=8, cols=8)\n"
        "print(spec.spec_hash())"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, check=True, env=env
    ).stdout.strip()
    assert out == SPEC.spec_hash()
