"""Runner.run(spec, backend="vectorized") vs the object backend on the
Fig. 4 assay — the acceptance-criterion parity test.

Documented tolerance (see repro.engine): the assay chemistry is shared
(bit-identical records), pixel parameters are paired (bit-identical),
and the digitised counts differ per site by at most 1 count of
start-phase quantisation plus the accumulated comparator jitter.
"""

import numpy as np
import pytest

from repro.engine import kernels
from repro.experiments import DnaAssaySpec, Runner

FIG4_SPEC = DnaAssaySpec(
    probe_count=16,
    replicates=7,
    control_every=16,
    target_subset=(0, 1, 2, 3),
    concentration=5e-5,
    calibration_frame_s=0.05,
)


@pytest.fixture(scope="module")
def both_backends():
    result_obj = Runner(seed=11).run(FIG4_SPEC)
    result_vec = Runner(seed=11).run(FIG4_SPEC, backend="vectorized")
    return result_obj, result_vec


class TestFig4Parity:
    def test_backend_stamped_in_metrics(self, both_backends):
        result_obj, result_vec = both_backends
        assert result_obj.metrics["backend"] == "object"
        assert result_vec.metrics["backend"] == "vectorized"
        assert result_obj.metrics["bias_ok"] and result_vec.metrics["bias_ok"]

    def test_chemistry_records_bitwise(self, both_backends):
        """Layout, sample and assay ride the same streams — everything
        upstream of the chip must be bit-identical."""
        result_obj, result_vec = both_backends
        for column in (
            "row",
            "col",
            "probe",
            "mismatches",
            "is_match",
            "occupancy_hyb",
            "occupancy_wash",
            "sensor_current_a",
        ):
            np.testing.assert_array_equal(
                result_obj.column(column), result_vec.column(column), err_msg=column
            )

    def test_counts_within_documented_budget(self, both_backends):
        result_obj, result_vec = both_backends
        chip_vec = result_vec.artifacts["chip"]
        currents = np.zeros((FIG4_SPEC.rows, FIG4_SPEC.cols))
        rows = result_obj.column("row")
        cols = result_obj.column("col")
        currents[rows, cols] = result_obj.column("sensor_current_a")
        sigma = kernels.count_noise_sigma(
            currents,
            FIG4_SPEC.frame_s,
            chip_vec.params.cint_f[0],
            chip_vec.params.swing_v[0],
            chip_vec.params.leakage_a[0],
            chip_vec.params.comparator_delay_s,
            chip_vec.params.tau_delay_s,
            chip_vec.params.noise_rms_v,
        )
        budget = 1 + np.ceil(8 * sigma)
        delta = np.abs(result_obj.artifacts["counts"] - result_vec.artifacts["counts"])
        assert np.all(delta <= budget)

    def test_current_estimates_close(self, both_backends):
        result_obj, result_vec = both_backends
        est_obj = result_obj.column("current_estimate_a")
        est_vec = result_vec.column("current_estimate_a")
        busy = est_obj > 1e-11  # above the quantisation-dominated floor
        rel = np.abs(est_vec[busy] - est_obj[busy]) / est_obj[busy]
        assert np.median(rel) < 1e-3
        assert rel.max() < 0.02

    def test_headline_metrics_close(self, both_backends):
        result_obj, result_vec = both_backends
        assert result_vec.metrics["discrimination_ratio"] == pytest.approx(
            result_obj.metrics["discrimination_ratio"], rel=0.02
        )
        assert result_vec.metrics["n_sites"] == result_obj.metrics["n_sites"]

    def test_serial_readout_exact_on_vectorized_chip(self, both_backends):
        _, result_vec = both_backends
        chip = result_vec.artifacts["chip"]
        counts = result_vec.artifacts["counts"]
        assert chip.read_counters_serial() == [int(c) for c in counts.reshape(-1)]


class TestRunnerMechanics:
    def test_backend_caches_are_separate(self):
        runner = Runner(seed=11)
        runner.run(FIG4_SPEC)
        runner.run(FIG4_SPEC, backend="vectorized")
        assert runner.stats.chips_built == 2
        assert runner.stats.layouts_built == 1
        assert runner.stats.layouts_reused == 1

    def test_vectorized_rerun_is_bit_identical(self):
        a = Runner(seed=12).run(FIG4_SPEC, backend="vectorized")
        b = Runner(seed=12).run(FIG4_SPEC, backend="vectorized")
        np.testing.assert_array_equal(a.artifacts["counts"], b.artifacts["counts"])
        np.testing.assert_array_equal(
            a.column("current_estimate_a"), b.column("current_estimate_a")
        )

    def test_specs_without_backend_field_default_to_object(self):
        result = Runner(seed=13).run(
            DnaAssaySpec(probe_count=2, replicates=2, calibrate=False)
        )
        assert result.metrics["backend"] == "object"

    def test_backend_outside_run_is_object(self):
        runner = Runner(seed=1)
        assert runner.backend == "object"

    def test_reentrant_run_restores_outer_backend(self):
        """A workload that re-enters run() must get its own backend back
        after the inner run finishes."""
        from repro.experiments import ArrayScaleSpec
        from repro.experiments.workloads import WORKLOADS, register_workload

        observed = []

        def streams(spec):
            return {}

        def execute(runner, spec, rngs, inputs):
            inner = ArrayScaleSpec(rows=4, cols=4, frame_s=0.01)
            runner.run(inner, backend="object")
            observed.append(runner.backend)
            return runner._result(spec, "probe", {}, {}, {})

        from repro.experiments.specs import ExperimentSpec, register_experiment
        import dataclasses

        @register_experiment("reentrant_probe")
        @dataclasses.dataclass(frozen=True)
        class ReentrantProbeSpec(ExperimentSpec):
            pass

        register_workload("reentrant_probe", streams, execute, backends=("object", "vectorized"))
        try:
            Runner(seed=1).run(ReentrantProbeSpec(), backend="vectorized")
            assert observed == ["vectorized"]
        finally:
            WORKLOADS.pop("reentrant_probe", None)
            from repro.experiments.specs import _REGISTRY

            _REGISTRY.pop("reentrant_probe", None)

    def test_vectorized_rejected_for_object_only_workloads(self):
        """A workload that never dispatches on the backend must refuse
        "vectorized" rather than silently run object-model code."""
        from repro.experiments import AdcTransferSpec, ScreeningSpec

        for spec in (AdcTransferSpec(), ScreeningSpec(library_size=10)):
            with pytest.raises(ValueError, match="does not support backend"):
                Runner(seed=1).run(spec, backend="vectorized")
