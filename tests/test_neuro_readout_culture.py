"""Readout chain (Fig. 6), cultures/coverage (T2) and spike detection."""

import numpy as np
import pytest

from repro.core.signals import Trace
from repro.neuro.culture import ArrayGeometry, Culture, coverage_vs_pitch
from repro.neuro.readout_chain import (
    ChannelFrontEnd,
    ReadoutChannel,
    TOTAL_GAIN,
    build_readout_chain,
)
from repro.neuro.spike_detection import (
    detect_spikes,
    mad_noise_estimate,
    score_detection,
    spike_snr,
)


class TestReadoutChannel:
    def test_total_gain_budget(self):
        assert TOTAL_GAIN == 5600.0

    def test_channel_calibration_zeroes_offsets(self):
        channel = ReadoutChannel.sample(rng=1)
        out_uncal = channel.dc_output(0.0)
        channel.calibrate(residual_v=0.0)
        out_cal = channel.dc_output(0.0)
        assert abs(out_cal) < abs(out_uncal) or out_uncal == out_cal == 0.0

    def test_uncalibrated_offsets_eat_headroom(self):
        # With x5600 gain, mV-scale stage offsets push the output to the
        # rails in at least some channel instances.
        used = [ReadoutChannel.sample(rng=i).output_headroom_used(0.0) for i in range(20)]
        assert max(used) > 0.5

    def test_dc_transfer_scales_current(self):
        channel = ReadoutChannel.sample(rng=2)
        channel.calibrate(residual_v=0.0)
        out = channel.dc_output(10e-9)  # 10 nA * 20k = 0.2 mV at input
        expected = 10e-9 * channel.front_end.transimpedance_ohm * channel.chain.actual_gain
        assert out == pytest.approx(np.clip(expected, -2.5, 2.5), rel=1e-6)

    def test_process_current_trace(self):
        channel = ReadoutChannel.sample(rng=3)
        channel.calibrate()
        current = Trace(1e-9 * np.sin(2 * np.pi * 1e3 * np.arange(0, 5e-3, 1e-6)), 1e-6)
        out = channel.process_current(current, rng=4, include_noise=False)
        assert out.peak_abs() > 1e-3

    def test_front_end_validation(self):
        with pytest.raises(ValueError):
            ChannelFrontEnd(transimpedance_ohm=0.0)


class TestCulture:
    def test_random_culture_places_all(self):
        culture = Culture.random(10, ArrayGeometry(128, 128, 7.8e-6), rng=1)
        assert len(culture.neurons) == 10

    def test_full_coverage_at_paper_pitch(self):
        # 7.8 um pitch, 10-100 um cells: every cell lands on >= 1 pixel.
        culture = Culture.random(100, ArrayGeometry(128, 128, 7.8e-6), rng=2)
        assert culture.coverage_fraction() == 1.0

    def test_bigger_cells_cover_more_pixels(self):
        geometry = ArrayGeometry(128, 128, 7.8e-6)
        small = Culture.random(20, geometry, diameter_range=(10e-6, 12e-6), rng=3)
        large = Culture.random(20, geometry, diameter_range=(80e-6, 100e-6), rng=4)
        assert large.pixels_per_neuron().mean() > 10 * small.pixels_per_neuron().mean()

    def test_coverage_vs_pitch_monotone(self):
        results = coverage_vs_pitch([5e-6, 7.8e-6, 20e-6, 50e-6], cell_count=80, rng=5)
        coverage = [r[1] for r in results]
        assert all(b <= a + 1e-9 for a, b in zip(coverage, coverage[1:]))
        # Paper pitch keeps full coverage; 50 um pitch loses cells.
        assert coverage[1] == 1.0
        assert coverage[-1] < 1.0

    def test_occupancy_image_counts(self):
        geometry = ArrayGeometry(32, 32, 7.8e-6)
        culture = Culture.random(3, geometry, diameter_range=(30e-6, 50e-6), rng=6)
        image = culture.occupancy_image()
        assert image.sum() == culture.pixels_per_neuron().sum()

    def test_pixels_under_disk_bounds(self):
        geometry = ArrayGeometry(16, 16, 7.8e-6)
        pixels = geometry.pixels_under_disk(50e-6, 50e-6, 20e-6)
        assert pixels
        for row, col in pixels:
            assert 0 <= row < 16 and 0 <= col < 16

    def test_overcrowded_culture_raises(self):
        with pytest.raises(RuntimeError):
            Culture.random(500, ArrayGeometry(16, 16, 7.8e-6),
                           diameter_range=(80e-6, 100e-6), rng=7, max_attempts=10)

    def test_empty_culture_coverage_raises(self):
        culture = Culture(ArrayGeometry(16, 16, 7.8e-6), [])
        with pytest.raises(ValueError):
            culture.coverage_fraction()


class TestSpikeDetection:
    def make_trace_with_spikes(self, spike_times, amplitude=1e-3, noise=50e-6, seed=0):
        rng = np.random.default_rng(seed)
        dt = 5e-4  # 2 kframe/s
        n = 2000
        samples = rng.normal(0, noise, n)
        for t in spike_times:
            idx = int(t / dt)
            if 0 <= idx < n - 3:
                samples[idx] += amplitude
                samples[idx + 1] += 0.4 * amplitude
                samples[idx + 2] -= 0.3 * amplitude
        return Trace(samples, dt)

    def test_mad_estimate_matches_sigma(self):
        rng = np.random.default_rng(1)
        trace = Trace(rng.normal(0, 1e-4, 5000), 1e-4)
        assert mad_noise_estimate(trace) == pytest.approx(1e-4, rel=0.05)

    def test_detects_clear_spikes(self):
        truth = [0.1, 0.3, 0.5, 0.7, 0.9]
        trace = self.make_trace_with_spikes(truth)
        detected = detect_spikes(trace, threshold_sigma=5.0)
        score = score_detection(detected, np.asarray(truth), tolerance_s=3e-3)
        assert score.recall == 1.0
        assert score.precision == 1.0

    def test_no_false_positives_on_noise(self):
        trace = self.make_trace_with_spikes([], noise=50e-6, seed=2)
        detected = detect_spikes(trace, threshold_sigma=6.0)
        assert len(detected) <= 1

    def test_polarity_selection(self):
        truth = [0.25, 0.75]
        trace = self.make_trace_with_spikes(truth, amplitude=-1e-3, seed=3)
        pos_only = detect_spikes(trace, polarity="pos")
        neg_only = detect_spikes(trace, polarity="neg")
        assert len(neg_only) >= len(pos_only)

    def test_refractory_suppresses_double_counts(self):
        trace = self.make_trace_with_spikes([0.5, 0.5005], seed=4)
        detected = detect_spikes(trace, refractory_s=5e-3)
        assert len(detected) == 1

    def test_score_counts(self):
        score = score_detection(np.array([1.0, 2.0, 9.0]), np.array([1.0, 2.0, 3.0]),
                                tolerance_s=0.1)
        assert score.true_positives == 2
        assert score.false_positives == 1
        assert score.false_negatives == 1
        assert score.f1 == pytest.approx(2 * (2 / 3) * (2 / 3) / (4 / 3))

    def test_score_empty_cases(self):
        score = score_detection(np.array([]), np.array([]))
        assert score.precision == 0.0 and score.recall == 0.0

    def test_snr_computation(self):
        truth = [0.5]
        trace = self.make_trace_with_spikes(truth, amplitude=2e-3, noise=1e-4, seed=5)
        snr = spike_snr(trace, np.asarray(truth))
        assert snr > 10

    def test_detect_invalid_args(self):
        trace = Trace(np.zeros(100), 1e-3)
        with pytest.raises(ValueError):
            detect_spikes(trace, threshold_sigma=0.0)
        with pytest.raises(ValueError):
            detect_spikes(trace, polarity="sideways")
