"""Sweeps, Monte-Carlo runner and table rendering."""

import numpy as np
import pytest

from repro.core.montecarlo import run_monte_carlo
from repro.core.rng import ensure_rng, spawn_child, spawn_children
from repro.core.sweep import lin_space, log_space, run_sweep
from repro.core.tables import format_cell, render_kv, render_table


class TestRng:
    def test_ensure_rng_from_seed(self):
        a = ensure_rng(42).integers(0, 100, 5)
        b = ensure_rng(42).integers(0, 100, 5)
        assert np.array_equal(a, b)

    def test_ensure_rng_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_ensure_rng_rejects_strings(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_spawn_children_independent(self):
        kids = spawn_children(7, 3)
        draws = [k.integers(0, 2**31) for k in kids]
        assert len(set(draws)) == 3

    def test_spawn_child_negative_index(self):
        with pytest.raises(ValueError):
            spawn_child(1, -1)


class TestSweepGrids:
    def test_log_space_bounds(self):
        grid = log_space(1e-12, 1e-7, 4)
        assert grid[0] == pytest.approx(1e-12)
        assert grid[-1] == pytest.approx(1e-7)
        assert len(grid) == 21

    def test_log_space_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            log_space(1e-7, 1e-12)

    def test_lin_space(self):
        grid = lin_space(0.0, 1.0, 5)
        assert len(grid) == 5
        assert grid[-1] == 1.0

    def test_lin_space_rejects(self):
        with pytest.raises(ValueError):
            lin_space(0, 1, 1)


class TestRunSweep:
    def test_collects_columns(self):
        result = run_sweep("x", [1.0, 2.0, 3.0], lambda x: {"sq": x * x, "neg": -x})
        assert list(result.column("sq")) == [1.0, 4.0, 9.0]
        assert result.header() == ["x", "neg", "sq"]

    def test_rows_align(self):
        result = run_sweep("x", [2.0], lambda x: {"y": x + 1})
        rows = list(result.rows())
        assert rows == [(2.0, 3.0)]

    def test_missing_column_raises(self):
        result = run_sweep("x", [1.0], lambda x: {"y": x})
        with pytest.raises(KeyError):
            result.column("z")

    def test_changed_keys_rejected(self):
        calls = [0]

        def func(x):
            calls[0] += 1
            return {"a": x} if calls[0] == 1 else {"b": x}

        with pytest.raises(ValueError):
            run_sweep("x", [1.0, 2.0], func)

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            run_sweep("x", [], lambda x: {"y": x})


class TestMonteCarlo:
    def test_statistics(self):
        result = run_monte_carlo(lambda g: {"v": g.normal(5.0, 1.0)}, trials=2000, rng=1)
        assert result.mean("v") == pytest.approx(5.0, abs=0.1)
        assert result.std("v") == pytest.approx(1.0, abs=0.1)

    def test_percentile_and_worst(self):
        result = run_monte_carlo(lambda g: {"v": g.uniform(-1, 1)}, trials=500, rng=2)
        assert -1 <= result.percentile("v", 50) <= 1
        assert result.worst("v") <= 1.0

    def test_summary_keys(self):
        result = run_monte_carlo(lambda g: {"a": 1.0, "b": 2.0}, trials=3, rng=3)
        assert set(result.summary()) == {"a", "b"}

    def test_reproducible(self):
        r1 = run_monte_carlo(lambda g: {"v": g.normal()}, trials=10, rng=9)
        r2 = run_monte_carlo(lambda g: {"v": g.normal()}, trials=10, rng=9)
        assert np.array_equal(r1.samples["v"], r2.samples["v"])

    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError):
            run_monte_carlo(lambda g: {"v": 1.0}, trials=0)

    def test_unknown_output_raises(self):
        result = run_monte_carlo(lambda g: {"v": 1.0}, trials=2, rng=1)
        with pytest.raises(KeyError):
            result.mean("w")


class TestTables:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2], [3, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_table_with_units(self):
        text = render_table(["i"], [[1e-9]], units=["A"])
        assert "1 nA" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_units_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [], units=["A"])

    def test_format_cell_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_format_cell_float_no_unit(self):
        assert format_cell(3.14159) == "3.142"

    def test_render_kv(self):
        text = render_kv("Header", [("key", 1e-12)], units={"key": "A"})
        assert "Header" in text
        assert "1 pA" in text
