"""Wafer die placement: four-corner rule, reticle indexing, pixel frames."""

import math

import numpy as np
import pytest

from repro.wafer import build_layout


def small_layout():
    # 60 mm wafer, 3 mm exclusion -> usable radius 27 mm; 12x12 mm dies
    # on a 4x4 grid with the four corner positions excluded -> 12 dies.
    return build_layout(60.0, 3.0, 12.0, 12.0, 2, 2)


# ---------------------------------------------------------------------------
# Placement
# ---------------------------------------------------------------------------
def test_small_layout_places_twelve_dies_on_a_4x4_grid():
    layout = small_layout()
    assert (layout.n_grid_x, layout.n_grid_y) == (4, 4)
    assert layout.n_dies == 12
    coords = {(d.grid_x, d.grid_y) for d in layout.dies}
    # Exactly the four corners fall outside the usable radius.
    assert coords == {
        (gx, gy) for gx in range(4) for gy in range(4)
    } - {(0, 0), (3, 0), (0, 3), (3, 3)}


def test_four_corner_rule_bounds_every_die():
    layout = small_layout()
    usable = layout.usable_radius_mm
    for die in layout.dies:
        corner = math.hypot(
            abs(die.center_x_mm) + layout.die_width_mm / 2.0,
            abs(die.center_y_mm) + layout.die_height_mm / 2.0,
        )
        assert corner <= usable


def test_dies_are_row_major_with_grid_y_zero_on_top():
    layout = small_layout()
    indices = [d.index for d in layout.dies]
    assert indices == list(range(layout.n_dies))
    keys = [(d.grid_y, d.grid_x) for d in layout.dies]
    assert keys == sorted(keys)
    top = layout.die_at(1, 0)
    bottom = layout.die_at(1, 3)
    assert top.center_y_mm > bottom.center_y_mm  # image order: row 0 on top


def test_grid_is_centred_on_the_wafer():
    layout = small_layout()
    assert layout.die_at(1, 1).center_x_mm == pytest.approx(-6.0)
    assert layout.die_at(2, 1).center_x_mm == pytest.approx(6.0)
    assert layout.die_at(1, 1).center_y_mm == pytest.approx(6.0)
    assert layout.die_at(1, 2).center_y_mm == pytest.approx(-6.0)


def test_widening_the_exclusion_only_removes_dies():
    tight = build_layout(60.0, 1.0, 12.0, 12.0, 2, 2)
    loose = build_layout(60.0, 6.0, 12.0, 12.0, 2, 2)
    tight_coords = {(d.grid_x, d.grid_y) for d in tight.dies}
    loose_coords = {(d.grid_x, d.grid_y) for d in loose.dies}
    assert loose_coords < tight_coords


def test_die_at_unknown_position_raises():
    with pytest.raises(KeyError, match=r"no die at grid \(0, 0\)"):
        small_layout().die_at(0, 0)


# ---------------------------------------------------------------------------
# Reticles
# ---------------------------------------------------------------------------
def test_reticle_indices_follow_the_grid_blocks():
    layout = small_layout()
    for die in layout.dies:
        assert die.reticle_x == die.grid_x // layout.reticle_cols
        assert die.reticle_y == die.grid_y // layout.reticle_rows
    assert layout.n_reticle_x == 2
    assert layout.n_reticle_y == 2
    assert layout.n_reticles == 4  # every 2x2 block owns at least one die


def test_reticle_extent_uses_ceiling_division():
    layout = build_layout(60.0, 3.0, 12.0, 12.0, 3, 3)
    assert (layout.n_grid_x, layout.n_grid_y) == (4, 4)
    assert (layout.n_reticle_x, layout.n_reticle_y) == (2, 2)


# ---------------------------------------------------------------------------
# Pixel positions
# ---------------------------------------------------------------------------
def test_pixel_positions_fill_the_die_in_image_order():
    layout = small_layout()
    die = layout.die_at(1, 1)
    x, y = layout.pixel_positions(die, 4, 6)
    assert x.shape == y.shape == (4, 6)
    # Row 0 is the top of the die (largest y); column 0 the left edge.
    assert y[0, 0] > y[-1, 0]
    assert x[0, 0] < x[0, -1]
    # Pixel centres average back to the die centre and stay inside it.
    assert float(x.mean()) == pytest.approx(die.center_x_mm)
    assert float(y.mean()) == pytest.approx(die.center_y_mm)
    assert np.all(np.abs(x - die.center_x_mm) < layout.die_width_mm / 2.0)
    assert np.all(np.abs(y - die.center_y_mm) < layout.die_height_mm / 2.0)
    # Uniform pitch: die extent / pixel count.
    assert np.diff(x[0]) == pytest.approx(layout.die_width_mm / 6)
    assert np.diff(y[:, 0]) == pytest.approx(-layout.die_height_mm / 4)


def test_die_radius_property():
    die = small_layout().die_at(1, 1)
    assert die.radius_mm == pytest.approx(math.hypot(6.0, 6.0))


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs, message",
    [
        (dict(wafer_diameter_mm=0.0), "diameter must be positive"),
        (dict(edge_exclusion_mm=-1.0), "edge exclusion must be non-negative"),
        (dict(die_width_mm=0.0), "die dimensions must be positive"),
        (dict(die_height_mm=-2.0), "die dimensions must be positive"),
        (dict(reticle_rows=0), "reticle grid must be at least 1x1"),
        (dict(edge_exclusion_mm=40.0), "no usable wafer area"),
        (dict(die_width_mm=80.0, die_height_mm=80.0), "no die fits"),
    ],
)
def test_invalid_geometry_raises(kwargs, message):
    base = dict(
        wafer_diameter_mm=60.0,
        edge_exclusion_mm=3.0,
        die_width_mm=12.0,
        die_height_mm=12.0,
        reticle_rows=2,
        reticle_cols=2,
    )
    base.update(kwargs)
    with pytest.raises(ValueError, match=message):
        build_layout(**base)
