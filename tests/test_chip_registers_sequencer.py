"""Register files and scan-timing arithmetic."""

import pytest

from repro.chip.registers import (
    RegisterFile,
    RegisterSpec,
    dna_chip_registers,
    neuro_chip_registers,
)
from repro.chip.sequencer import NEURO_SCAN, ScanTiming, SiteSequence


class TestRegisters:
    def test_reset_values(self):
        regs = dna_chip_registers()
        assert regs.read("frame_exponent") == 8
        assert regs.read("chip_id") == 0x2D

    def test_write_read_by_name(self):
        regs = dna_chip_registers()
        regs.write("generator_dac", 128)
        assert regs.read("generator_dac") == 128

    def test_write_read_by_address(self):
        regs = dna_chip_registers()
        regs.write(0x00, 42)
        assert regs.read("generator_dac") == 42

    def test_width_enforced(self):
        regs = dna_chip_registers()
        with pytest.raises(ValueError):
            regs.write("calibration_enable", 2)  # 1-bit register

    def test_unknown_register(self):
        regs = dna_chip_registers()
        with pytest.raises(KeyError):
            regs.read("bogus")
        with pytest.raises(KeyError):
            regs.read(0x99)

    def test_reset_restores(self):
        regs = dna_chip_registers()
        regs.write("generator_dac", 99)
        regs.reset()
        assert regs.read("generator_dac") == 0

    def test_duplicate_address_rejected(self):
        with pytest.raises(ValueError):
            RegisterFile([
                RegisterSpec("a", 0x00, 8),
                RegisterSpec("b", 0x00, 8),
            ])

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError):
            RegisterFile([
                RegisterSpec("a", 0x00, 8),
                RegisterSpec("a", 0x01, 8),
            ])

    def test_bad_reset_value(self):
        with pytest.raises(ValueError):
            RegisterSpec("a", 0x00, 4, reset_value=16)

    def test_neuro_map_distinct(self):
        regs = neuro_chip_registers()
        assert regs.read("chip_id") == 0x4E
        assert "calibration_current" in regs.names()

    def test_dump(self):
        regs = dna_chip_registers()
        dump = regs.dump()
        assert dump["chip_id"] == 0x2D


class TestScanTiming:
    def test_paper_numbers_lock_together(self):
        t = NEURO_SCAN
        # 2 kframe/s, 128 rows -> 3.906 us row time.
        assert t.row_time_s == pytest.approx(3.90625e-6)
        # 8:1 mux -> 488 ns slots.
        assert t.mux_depth == 8
        assert t.slot_time_s == pytest.approx(488.28125e-9)
        # 2.048 MHz per channel, 32.77 Mpixel/s aggregate.
        assert t.channel_pixel_rate_hz == pytest.approx(2.048e6)
        assert t.aggregate_pixel_rate_hz == pytest.approx(32.768e6)

    def test_bandwidths_support_the_scan(self):
        # The paper's 4 MHz readout amp and 32 MHz driver both settle.
        assert NEURO_SCAN.settling_ok(4e6)
        assert NEURO_SCAN.settling_ok(32e6)

    def test_slower_amp_fails(self):
        assert not NEURO_SCAN.settling_ok(0.5e6)

    def test_max_frame_rate_consistent(self):
        t = NEURO_SCAN
        limit = t.max_frame_rate_hz(4e6)
        assert limit > 2000.0  # the chip runs below the amp's limit
        assert not ScanTiming(128, 128, 16, limit * 1.2).settling_ok(4e6)

    def test_columns_must_divide(self):
        with pytest.raises(ValueError):
            ScanTiming(rows=128, cols=100, channels=16, frame_rate_hz=2000)

    def test_pixel_order_covers_array(self):
        t = ScanTiming(rows=4, cols=8, channels=2, frame_rate_hz=100)
        order = t.pixel_order()
        assert len(order) == 32
        assert len(set(order)) == 32

    def test_sample_time_within_frame(self):
        t = NEURO_SCAN
        assert t.sample_time_s(0, 0) == 0.0
        assert t.sample_time_s(127, 127) < t.frame_time_s

    def test_sample_time_out_of_range(self):
        with pytest.raises(IndexError):
            NEURO_SCAN.sample_time_s(128, 0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ScanTiming(0, 8, 1, 100.0)
        with pytest.raises(ValueError):
            ScanTiming(8, 8, 1, 0.0)


class TestSiteSequence:
    def test_site_count(self):
        seq = SiteSequence()
        assert seq.sites == 128

    def test_readout_time(self):
        seq = SiteSequence(rows=16, cols=8, counter_bits=24, serial_clock_hz=1e6)
        expected_bits = 128 * 24 + 40
        assert seq.readout_time_s() == pytest.approx(expected_bits / 1e6)

    def test_measurement_time_adds_frame(self):
        seq = SiteSequence()
        assert seq.measurement_time_s(1.0) == pytest.approx(1.0 + seq.readout_time_s())

    def test_invalid_frame(self):
        with pytest.raises(ValueError):
            SiteSequence().measurement_time_s(0.0)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            SiteSequence(rows=0)


class TestReadOnlyRegisters:
    @pytest.mark.parametrize("factory", [dna_chip_registers, neuro_chip_registers])
    @pytest.mark.parametrize("name", ["status", "chip_id"])
    def test_host_write_rejected(self, factory, name):
        regs = factory()
        with pytest.raises(ValueError, match="read-only"):
            regs.write(name, 1)

    def test_rejected_by_address_too(self):
        regs = dna_chip_registers()
        with pytest.raises(ValueError, match="read-only"):
            regs.write(0x05, 1)  # status lives at 0x05

    def test_value_survives_rejected_write(self):
        regs = dna_chip_registers()
        with pytest.raises(ValueError):
            regs.write("chip_id", 0x00)
        assert regs.read("chip_id") == 0x2D

    def test_hw_write_path_allowed(self):
        regs = dna_chip_registers()
        regs.hw_write("status", 0x01)
        assert regs.read("status") == 0x01
        # hw_write still range-checks.
        with pytest.raises(ValueError):
            regs.hw_write("status", 0x100)

    def test_writable_registers_unaffected(self):
        regs = dna_chip_registers()
        regs.write("generator_dac", 200)
        assert regs.read("generator_dac") == 200

    def test_reject_recorded_on_trace(self):
        from repro.trace import TraceRecorder

        rec = TraceRecorder()
        regs = dna_chip_registers(recorder=rec)
        with pytest.raises(ValueError):
            regs.write("status", 1)
        trace = rec.trace()
        rejects = trace.filter(kinds=["reg.reject"])
        assert len(rejects) == 1
        assert rejects[0].channel == "reg.status"
        assert rejects[0].data["reason"] == "read-only register"
        # The hw path records a plain write, not a reject.
        regs.hw_write("status", 1)
        writes = rec.trace().filter(kinds=["reg.write"])
        assert len(writes) == 1 and writes[0].data["source"] == "hw"
