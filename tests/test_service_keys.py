"""Canonical content keys: normalisation, stability, spec_hash."""

import json
import subprocess
import sys

import numpy as np
import pytest

from repro.experiments import AdcTransferSpec, DnaAssaySpec
from repro.inference import DoseResponseAnalysis
from repro.service import canonical_json, canonicalize, content_digest, point_key, spec_key

SPEC = DnaAssaySpec(probe_count=4, replicates=4, target_subset=(0, 1))


# ---------------------------------------------------------------------------
# Canonicalization
# ---------------------------------------------------------------------------
def test_dict_insertion_order_is_irrelevant():
    assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})


def test_tuples_and_lists_hash_identically():
    assert content_digest({"subset": (0, 1)}) == content_digest({"subset": [0, 1]})


def test_numpy_scalars_collapse_to_python_values():
    assert canonicalize(np.float64(1e-6)) == 1e-6
    assert canonicalize(np.int64(7)) == 7
    assert canonicalize(np.bool_(True)) is True
    assert content_digest({"c": np.float64(1e-6)}) == content_digest({"c": 1e-6})


def test_numpy_arrays_become_nested_lists():
    assert canonicalize(np.array([[1, 2], [3, 4]])) == [[1, 2], [3, 4]]


def test_bool_stays_bool_not_int():
    # bool is an int subclass; 1 and True must not collide.
    assert canonical_json({"x": True}) != canonical_json({"x": 1})


def test_nonfinite_floats_are_rejected():
    with pytest.raises(ValueError, match="non-finite"):
        canonical_json({"x": float("nan")})
    with pytest.raises(ValueError, match="non-finite"):
        canonical_json({"x": float("inf")})


def test_uncanonicalizable_types_raise():
    with pytest.raises(TypeError, match="canonicalize"):
        canonicalize(object())


def test_canonical_json_is_compact_sorted_ascii():
    text = canonical_json({"b": [1.5, "é"], "a": None})
    assert text == '{"a":null,"b":[1.5,"\\u00e9"]}'


# ---------------------------------------------------------------------------
# point_key
# ---------------------------------------------------------------------------
def test_point_key_changes_with_every_component():
    base = point_key(SPEC.to_dict(), 1, "object", "1.0")
    assert point_key(SPEC.replace(concentration=3e-6).to_dict(), 1, "object", "1.0") != base
    assert point_key(SPEC.to_dict(), 2, "object", "1.0") != base
    assert point_key(SPEC.to_dict(), 1, "vectorized", "1.0") != base
    assert point_key(SPEC.to_dict(), 1, "object", "1.1") != base


def test_point_key_ignores_representation_details():
    noisy = {key: value for key, value in reversed(list(SPEC.to_dict().items()))}
    noisy["concentration"] = np.float64(noisy["concentration"])
    noisy["target_subset"] = tuple(noisy["target_subset"])
    assert point_key(noisy, 1, "object", "1.0") == point_key(SPEC.to_dict(), 1, "object", "1.0")


def test_point_key_backend_none_resolves_like_the_runner():
    # None defers to the spec's own backend field (default "object").
    assert point_key(SPEC.to_dict(), 1, None, "1.0") == point_key(
        SPEC.to_dict(), 1, "object", "1.0"
    )


# ---------------------------------------------------------------------------
# spec_hash
# ---------------------------------------------------------------------------
def test_spec_hash_matches_spec_key_of_to_dict():
    assert SPEC.spec_hash() == spec_key(SPEC.to_dict())
    analysis = DoseResponseAnalysis()
    assert analysis.spec_hash() == spec_key(analysis.to_dict())


def test_spec_hash_is_distinct_from_frozen_content_hash():
    # content_hash seeds the random streams and its byte recipe is
    # frozen; spec_hash is the cache-address hash.  They must coexist.
    assert SPEC.spec_hash() != SPEC.content_hash()


def test_spec_hash_survives_serialization_round_trip():
    from repro.experiments import spec_from_dict

    round_tripped = spec_from_dict(json.loads(json.dumps(SPEC.to_dict())))
    assert round_tripped.spec_hash() == SPEC.spec_hash()
    # Round-tripping turns tuples into lists; to_dict must re-normalise
    # so the payloads (not just the hashes) agree.
    assert round_tripped.to_dict() == SPEC.to_dict()


def test_to_dict_normalises_numpy_leaves():
    spec = AdcTransferSpec(i_low_a=float(np.float64(1e-11)), i_high_a=1e-8)
    payload = spec.to_dict()
    assert json.dumps(payload)  # JSON-serializable without a custom encoder
    assert spec.spec_hash() == spec_key(json.loads(json.dumps(payload)))


def test_spec_hash_is_stable_across_processes():
    import os
    from pathlib import Path

    import repro

    code = (
        "from repro.experiments import DnaAssaySpec\n"
        "print(DnaAssaySpec(probe_count=4, replicates=4, "
        "target_subset=(0, 1)).spec_hash())"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, check=True, env=env
    ).stdout.strip()
    assert out == SPEC.spec_hash()
