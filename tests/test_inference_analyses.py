"""Analysis specs: registry, end-to-end reports, bit-reproducibility.

The acceptance bar for the inference subsystem: analysing a Fig. 4
concentration campaign must emit a dose–response fit with LoD and
bootstrap CIs that are **byte-identical** across repeated runs, across
serial- and process-executed campaigns, and across memory vs reloaded
JSONL stores.
"""

import dataclasses
import json

import pytest

from repro.campaigns import CampaignSpec, run_campaign
from repro.experiments import ArrayScaleSpec, DnaAssaySpec
from repro.inference import (
    AnalysisSpec,
    DetectionAnalysis,
    DoseResponseAnalysis,
    YieldAnalysis,
    analysis_from_dict,
    analysis_kinds,
    analysis_type,
    analyze,
    default_analysis_for,
    register_analysis,
)

FIG4_CAMPAIGN = CampaignSpec(
    base=DnaAssaySpec(probe_count=4, replicates=4, target_subset=(0, 1)),
    grid={"concentration": (1e-7, 1e-6, 1e-5)},
    replicates=2,
    name="fig4-mini",
)


@pytest.fixture(scope="module")
def fig4_result():
    return run_campaign(FIG4_CAMPAIGN, seed=1)


class TestRegistry:
    def test_kinds(self):
        assert analysis_kinds() == [
            "detection", "dose_response", "fault_tolerance", "wafer_yield", "yield"
        ]
        assert analysis_type("yield") is YieldAnalysis

    def test_unknown_kind(self):
        with pytest.raises(KeyError, match="registered kinds"):
            analysis_type("anova")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_analysis("detection")
            @dataclasses.dataclass(frozen=True)
            class Impostor(AnalysisSpec):
                pass

    def test_non_spec_rejected(self):
        with pytest.raises(TypeError, match="not an AnalysisSpec"):
            register_analysis("bogus")(dict)

    def test_round_trip(self):
        spec = DoseResponseAnalysis(model="hill", n_resamples=123, seed=7)
        back = analysis_from_dict(json.loads(spec.to_json()))
        assert back == spec

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown fields"):
            analysis_from_dict({"kind": "detection", "bogus": 1})
        with pytest.raises(ValueError, match="kind"):
            analysis_from_dict({"axis": "concentration"})

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="model"):
            DoseResponseAnalysis(model="spline")
        with pytest.raises(ValueError, match="target_fpr"):
            DetectionAnalysis(target_fpr=1.5)
        with pytest.raises(ValueError, match="criterion"):
            YieldAnalysis(op="==")


class TestDoseResponseEndToEnd:
    def test_report_contents(self, fig4_result):
        report = fig4_result.analyze("dose_response")
        scalars = report.scalars
        assert scalars["model"] == "loglog"
        assert scalars["lod"] > 0
        assert scalars["lod_ci_low"] <= scalars["lod"] <= scalars["lod_ci_high"]
        assert scalars["dynamic_range_decades"] > 0
        assert scalars["blank_source"] == "blank"
        assert 0.8 < scalars["slope"] < 1.2  # counts ~ concentration
        assert report.tables[0].headers[0] == "concentration"
        assert len(report.tables[0].rows) == 3  # one per dose

    def test_repeated_runs_bit_identical(self, fig4_result):
        first = fig4_result.analyze("dose_response").to_json()
        second = fig4_result.analyze("dose_response").to_json()
        assert first == second

    def test_hill_model_variant(self, fig4_result):
        report = fig4_result.analyze("dose_response", model="hill")
        assert "hill_ec50" in report.scalars
        assert report.notes  # explains the missing bootstrap CI

    def test_missing_metric_is_a_clean_error(self, fig4_result):
        with pytest.raises(KeyError, match="metrics shared"):
            fig4_result.analyze("dose_response", response="nope")


class TestReproducibilityAcrossExecution:
    """The acceptance criterion: one campaign, many execution paths,
    one byte sequence out."""

    def test_serial_vs_process_vs_store(self, fig4_result, tmp_path):
        from repro.campaigns import JsonlResultStore

        reference = fig4_result.analyze("dose_response").to_json()
        process = run_campaign(
            FIG4_CAMPAIGN,
            seed=1,
            executor="process",
            workers=2,
            store="jsonl",
            out=tmp_path / "campaign",
        )
        assert process.analyze("dose_response").to_json() == reference
        reloaded = JsonlResultStore.load(tmp_path / "campaign")
        assert analyze(reloaded, "dose_response").to_json() == reference
        # And straight from the directory path (the CLI's route).
        assert analyze(tmp_path / "campaign", "dose_response").to_json() == reference

    def test_detection_identical_across_stores(self, fig4_result, tmp_path):
        reference = fig4_result.analyze("detection").to_json()
        stored = run_campaign(
            FIG4_CAMPAIGN, seed=1, store="jsonl", out=tmp_path / "det"
        )
        assert stored.analyze("detection").to_json() == reference


class TestDetectionEndToEnd:
    def test_report_contents(self, fig4_result):
        report = fig4_result.analyze("detection", target_fpr=0.05)
        scalars = report.scalars
        assert scalars["n_match_spots"] > 0 and scalars["n_mismatch_spots"] > 0
        assert 0.5 < scalars["auc"] <= 1.0
        assert scalars["auc_ci_low"] <= scalars["auc_ci_high"]
        assert scalars["threshold_fpr"] <= 0.05
        assert len(report.tables[0].rows) == len(fig4_result.plan)


class TestYieldEndToEnd:
    def test_metric_criterion(self, fig4_result):
        report = fig4_result.analyze("yield", metric="discrimination_ratio", threshold=2.0)
        scalars = report.scalars
        assert scalars["n_chips"] == 6
        assert 0.0 <= scalars["yield_ci_low"] <= scalars["yield"] <= scalars["yield_ci_high"] <= 1.0
        assert scalars["metric_cv"] >= 0
        # dna_assay records carry no dead-pixel column.
        assert "dead_pixel_rate" not in scalars

    def test_array_scale_dead_pixels(self):
        campaign = CampaignSpec(
            base=ArrayScaleSpec(rows=16, cols=8, n_chips=4, calibrate=True),
            replicates=2,
            name="fig6-mini",
        )
        result = run_campaign(campaign, seed=3)
        report = result.analyze("yield", metric="zero_site_fraction", op="<=", threshold=0.5)
        assert report.scalars["dead_pixel_chips"] == 8  # 4 chips x 2 points
        assert 0.0 <= report.scalars["dead_pixel_rate"] <= 1.0
        assert report.scalars["dead_pixel_ci_low"] <= report.scalars["dead_pixel_rate"]


class TestFrontDoor:
    def test_default_analysis_inference(self, fig4_result):
        assert isinstance(default_analysis_for(fig4_result), DoseResponseAnalysis)
        no_axis = run_campaign(
            CampaignSpec(
                base=DnaAssaySpec(probe_count=4, replicates=4, target_subset=(0, 1)),
                replicates=2,
            ),
            seed=1,
        )
        assert isinstance(default_analysis_for(no_axis), DetectionAnalysis)
        scale = run_campaign(
            CampaignSpec(base=ArrayScaleSpec(rows=8, cols=8), replicates=2), seed=1
        )
        assert isinstance(default_analysis_for(scale), YieldAnalysis)

    def test_analyze_resolves_all_spellings(self, fig4_result):
        spec = DoseResponseAnalysis(n_resamples=100)
        by_instance = analyze(fig4_result, spec)
        by_dict = analyze(fig4_result, spec.to_dict())
        by_name = analyze(fig4_result, "dose_response", n_resamples=100)
        assert by_instance.to_json() == by_dict.to_json() == by_name.to_json()

    def test_analyze_rejects_bad_analysis(self, fig4_result):
        with pytest.raises(TypeError, match="cannot resolve"):
            analyze(fig4_result, 42)

    def test_empty_store_is_a_clean_error(self):
        from repro.campaigns import MemoryResultStore

        with pytest.raises(ValueError, match="no results"):
            analyze(MemoryResultStore(), "detection")

    def test_report_renderings(self, fig4_result):
        report = fig4_result.analyze("dose_response")
        payload = json.loads(report.to_json())
        assert payload["schema"] == "repro-analysis/1"
        assert payload["scalars"]["lod"] > 0
        markdown = report.to_markdown()
        assert "## Analysis: dose_response" in markdown
        assert "| quantity | value |" in markdown
        text = report.to_text()
        assert "analysis: dose_response" in text and "lod" in text
        assert "wall" not in report.to_json()  # reports carry no timings
