"""ArrayScaleSpec + the array_scale workload on both backends."""

import numpy as np
import pytest

from repro.experiments import ArrayScaleSpec, Runner, spec_from_dict


class TestSpec:
    def test_defaults_and_roundtrip(self):
        spec = ArrayScaleSpec()
        assert spec.kind == "array_scale"
        assert spec.backend == "vectorized"
        clone = spec_from_dict(spec.to_dict())
        assert clone == spec

    @pytest.mark.parametrize(
        "changes",
        [
            {"rows": 0},
            {"n_chips": 0},
            {"i_low_a": 0.0},
            {"i_low_a": 1e-9, "i_high_a": 1e-12},
            {"pattern": "chess"},
            {"frame_s": 0.0},
            {"backend": "fpga"},
            {"mismatch": "psychic"},
        ],
    )
    def test_validation(self, changes):
        with pytest.raises(ValueError):
            ArrayScaleSpec(**changes)

    def test_site_currents_logspan(self):
        spec = ArrayScaleSpec(rows=4, cols=4, i_low_a=1e-12, i_high_a=1e-8)
        currents = spec.site_currents()
        assert currents.shape == (4, 4)
        flat = currents.reshape(-1)
        assert flat[0] == pytest.approx(1e-12)
        assert flat[-1] == pytest.approx(1e-8)
        assert np.all(np.diff(flat) > 0)

    def test_site_currents_uniform(self):
        spec = ArrayScaleSpec(rows=4, cols=4, i_low_a=1e-12, i_high_a=1e-8, pattern="uniform")
        currents = spec.site_currents()
        assert np.all(currents == pytest.approx(1e-10))

    def test_chip_key_separates_backends_only_by_facet(self):
        a = ArrayScaleSpec(rows=16, cols=8)
        b = a.replace(frame_s=0.5)  # measurement knob: same chip facet
        c = a.replace(rows=32)
        assert a.chip_key() == b.chip_key()
        assert a.chip_key() != c.chip_key()


class TestWorkload:
    SPEC = ArrayScaleSpec(rows=16, cols=8, n_chips=2, frame_s=0.05)

    def test_vectorized_run_shape_and_records(self):
        result = Runner(seed=3).run(self.SPEC)
        assert result.metrics["backend"] == "vectorized"
        assert result.metrics["sites_total"] == 2 * 16 * 8
        assert result.n_records == 2
        assert result.column("mean_count").shape == (2,)
        assert result.artifacts["counts"].shape == (2, 16, 8)
        assert result.metrics["total_counts"] > 0

    def test_object_backend_override(self):
        result = Runner(seed=3).run(self.SPEC, backend="object")
        assert result.metrics["backend"] == "object"
        assert result.artifacts["counts"].shape == (2, 16, 8)
        chips = result.artifacts["chip"]
        assert isinstance(chips, list) and len(chips) == 2

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            Runner(seed=3).run(self.SPEC, backend="quantum")

    def test_deterministic_given_seed(self):
        a = Runner(seed=3).run(self.SPEC)
        b = Runner(seed=3).run(self.SPEC)
        np.testing.assert_array_equal(a.artifacts["counts"], b.artifacts["counts"])

    def test_backends_agree_statistically(self):
        """The two backends digitise the same deterministic pattern with
        different chip realisations; their array-mean counts must agree
        to well under a percent."""
        vec = Runner(seed=5).run(self.SPEC)
        obj = Runner(seed=5).run(self.SPEC, backend="object")
        assert vec.metrics["mean_count"] == pytest.approx(obj.metrics["mean_count"], rel=0.01)
        assert vec.metrics["top_site_compression"] == pytest.approx(
            obj.metrics["top_site_compression"], rel=0.01
        )

    def test_top_site_compression_shows_dead_time(self):
        result = Runner(seed=3).run(self.SPEC)
        assert 0.5 < result.metrics["top_site_compression"] < 0.92

    def test_chips_cached_per_backend(self):
        runner = Runner(seed=9)
        runner.run(self.SPEC)
        runner.run(self.SPEC)
        assert runner.stats.chips_built == 1
        assert runner.stats.chips_reused == 1
        runner.run(self.SPEC, backend="object")
        assert runner.stats.chips_built == 2  # separate cache slot

    def test_calibrated_run(self):
        spec = ArrayScaleSpec(rows=8, cols=8, calibrate=True, frame_s=0.05)
        result = Runner(seed=4).run(spec)
        chip = result.artifacts["chip"]
        assert not np.all(chip.gain_correction == 1.0)

    def test_run_batch_backend_parameter(self):
        runner = Runner(seed=6)
        results = runner.run_batch(
            [self.SPEC, self.SPEC.replace(frame_s=0.02)], backend="vectorized"
        )
        assert [r.metrics["backend"] for r in results] == ["vectorized", "vectorized"]
        assert runner.stats.chips_built == 1  # same chip facet shared
