"""The drug-screening funnel (Fig. 1)."""

import numpy as np
import pytest

from repro.screening import (
    CompoundLibrary,
    ScreeningFunnel,
    animal_stage,
    cell_based_stage,
    clinical_stage,
    compare_cmos_vs_conventional,
    default_funnel_stages,
    molecular_stage,
)


@pytest.fixture(scope="module")
def library():
    return CompoundLibrary.generate(size=30_000, viable_rate=3e-4, rng=11)


class TestLibrary:
    def test_size_and_rate(self, library):
        assert library.size == 30_000
        # ~9 viable expected; allow broad band.
        assert 1 <= library.viable_count() <= 30

    def test_viable_score_higher(self, library):
        viable_scores = library.binding_score[library.is_viable]
        dud_scores = library.binding_score[~library.is_viable]
        assert viable_scores.mean() > dud_scores.mean() + 0.2

    def test_at_least_one_viable_guaranteed(self):
        tiny = CompoundLibrary.generate(size=50, viable_rate=1e-6, rng=1)
        assert tiny.viable_count() >= 1

    def test_zero_rate_allowed(self):
        lib = CompoundLibrary.generate(size=50, viable_rate=0.0, rng=2)
        assert lib.viable_count() == 0

    def test_subset(self, library):
        mask = library.binding_score > 0.5
        sub = library.subset(mask)
        assert sub.size == int(mask.sum())

    def test_subset_shape_check(self, library):
        with pytest.raises(ValueError):
            library.subset(np.ones(10, dtype=bool))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CompoundLibrary.generate(size=0)
        with pytest.raises(ValueError):
            CompoundLibrary.generate(size=10, viable_rate=2.0)


class TestStages:
    def test_fig1_cost_ordering(self):
        stages = default_funnel_stages()
        costs = [s.cost_per_datapoint for s in stages]
        assert costs == sorted(costs)
        assert costs[-1] / costs[0] > 1e4  # orders of magnitude, as drawn

    def test_fig1_throughput_ordering(self):
        stages = default_funnel_stages()
        rates = [s.datapoints_per_day for s in stages]
        assert rates == sorted(rates, reverse=True)

    def test_cmos_variant_cheaper_and_faster(self):
        assert molecular_stage(True).cost_per_datapoint < molecular_stage(False).cost_per_datapoint
        assert molecular_stage(True).datapoints_per_day > molecular_stage(False).datapoints_per_day
        assert cell_based_stage(True).cost_per_datapoint < cell_based_stage(False).cost_per_datapoint

    def test_screen_returns_mask(self, library):
        mask = molecular_stage().screen(library, rng=1)
        assert mask.shape == (library.size,)
        assert 0 < mask.sum() < library.size

    def test_sensitivity_high(self, library):
        sens = molecular_stage().sensitivity_estimate(library, rng=2)
        assert sens > 0.7

    def test_cost_and_days(self):
        stage = animal_stage()
        assert stage.stage_cost(10) == pytest.approx(1e5)
        assert stage.stage_days(10) == pytest.approx(1.0)

    def test_invalid_stage(self):
        with pytest.raises(ValueError):
            clinical_stage().stage_cost(-1)


class TestFunnel:
    def test_attrition_shape(self, library):
        result = ScreeningFunnel().run(library, rng=3)
        sizes = [o.candidates_in for o in result.outcomes] + [result.survivors]
        assert all(b <= a for a, b in zip(sizes, sizes[1:]))
        assert result.survivors < 0.01 * library.size

    def test_monotone_series(self, library):
        result = ScreeningFunnel().run(library, rng=4)
        assert result.monotone_cost_increase()
        assert result.monotone_throughput_decrease()

    def test_viable_enrichment(self, library):
        result = ScreeningFunnel().run(library, rng=5)
        initial_rate = library.viable_count() / library.size
        if result.survivors:
            final_rate = result.surviving_viable / result.survivors
            assert final_rate > 100 * initial_rate

    def test_cost_dominated_by_late_stages(self, library):
        result = ScreeningFunnel().run(library, rng=6)
        late = sum(o.cost for o in result.outcomes[2:])
        early = sum(o.cost for o in result.outcomes[:2])
        assert late > early

    def test_as_rows_aligned(self, library):
        result = ScreeningFunnel().run(library, rng=7)
        rows = result.as_rows()
        assert len(rows) == len(result.outcomes)
        assert rows[0][0].startswith("molecular")

    def test_empty_funnel_rejected(self):
        with pytest.raises(ValueError):
            ScreeningFunnel(stages=[])

    def test_comparison_cmos_cheaper_early(self, library):
        results = compare_cmos_vs_conventional(library, rng=8)
        early_cmos = sum(o.cost for o in results["cmos"].outcomes[:2])
        early_conv = sum(o.cost for o in results["conventional"].outcomes[:2])
        assert early_cmos < early_conv

    def test_stage_outcome_rates(self, library):
        result = ScreeningFunnel().run(library, rng=9)
        for outcome in result.outcomes:
            assert 0.0 <= outcome.pass_rate <= 1.0
            assert 0.0 <= outcome.viable_retention <= 1.0
