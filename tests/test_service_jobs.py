"""Job manager: submit/status/cancel, async executor, resume parity."""

import json
import time

import pytest

from repro.campaigns import CampaignSpec, run_campaign
from repro.experiments import DnaAssaySpec
from repro.service import (
    JOB_STATES,
    AsyncExecutor,
    JobManager,
    ResultCache,
    resume_campaign,
)

BASE = DnaAssaySpec(probe_count=4, replicates=4, target_subset=(0, 1))
CAMPAIGN = CampaignSpec(
    base=BASE, grid={"concentration": (1e-7, 1e-6)}, replicates=2, name="jobs-test"
)


def _payloads(store_like):
    return json.dumps(
        {meta["point"]: res.to_dict() for meta, res in store_like.iter_results()},
        sort_keys=True,
    )


@pytest.fixture()
def manager(tmp_path):
    manager = JobManager(workers=1, cache=tmp_path / "cache", root=tmp_path / "jobs")
    yield manager
    manager.shutdown()


# ---------------------------------------------------------------------------
# Submit / status / results
# ---------------------------------------------------------------------------
def test_submit_runs_in_background_and_reports_progress(manager):
    job = manager.submit(CAMPAIGN, seed=1)
    assert job.status in ("queued", "running")  # returned before completion
    manager.wait(job.id, timeout=60)
    status = manager.status(job.id)
    assert status["status"] == "done"
    assert status["n_done"] == status["n_points"] == 4
    assert status["cache"]["computed"] == 4
    assert job.result.manifest["n_points"] == 4
    assert (job.out / "results.jsonl").exists()
    assert (job.out / "manifest.json").exists()


def test_jobs_share_the_cache_across_submissions(manager):
    first = manager.submit(CAMPAIGN, seed=1)
    second = manager.submit(CAMPAIGN, seed=1)
    manager.wait(second.id, timeout=60)
    manager.wait(first.id, timeout=60)
    assert second.cache_summary == {
        "n_points": 4, "n_unique": 4, "hits": 4, "computed": 0, "replayed": 0,
        "failed": 0,
    }
    assert _payloads(first.result) == _payloads(second.result)
    assert manager.cache_stats()["puts"] == 4


def test_submit_accepts_a_campaign_dict(manager):
    job = manager.submit(CAMPAIGN.to_dict(), seed=1)
    manager.wait(job.id, timeout=60)
    assert job.status == "done"


def test_submit_validates_eagerly(manager):
    with pytest.raises(ValueError, match="synchronous"):
        manager.submit(CAMPAIGN, executor="async")
    with pytest.raises(ValueError, match="unknown executor"):
        manager.submit(CAMPAIGN, executor="bogus")
    with pytest.raises(ValueError, match="flush_every"):
        manager.submit(CAMPAIGN, flush_every=0)
    with pytest.raises(KeyError, match="unknown job"):
        manager.job("job-9999")


def test_submit_rejects_an_async_executor_instance_too(manager):
    # The guard must hold for the resolved executor, not just the
    # literal executor="async" string.
    with pytest.raises(ValueError, match="synchronous"):
        manager.submit(CAMPAIGN, executor=AsyncExecutor())


def test_submit_rejects_inputs_against_the_shared_cache(manager):
    with pytest.raises(ValueError, match="inputs"):
        manager.submit(CAMPAIGN, seed=1, inputs={"substrate": object()})


def test_manager_evicts_oldest_finished_jobs(tmp_path):
    manager = JobManager(workers=1, root=tmp_path / "jobs", max_finished=2)
    try:
        finished = []
        for seed in range(3):
            job = manager.submit(CAMPAIGN, seed=seed)
            manager.wait(job.id, timeout=60)
            finished.append(job)
        newest = manager.submit(CAMPAIGN, seed=99)
        with pytest.raises(KeyError, match="unknown job"):
            manager.job(finished[0].id)
        assert [job.id for job in manager.jobs()] == [
            finished[1].id,
            finished[2].id,
            newest.id,
        ]
        manager.wait(newest.id, timeout=60)
    finally:
        manager.shutdown()

    with pytest.raises(ValueError, match="max_finished"):
        JobManager(max_finished=-1)


def test_failed_job_reports_its_error_and_frees_the_worker(manager):
    # The vectorized backend rejects the screening kind at submit time,
    # so force an execution-time failure instead: an unwritable out dir.
    job = manager.submit(CAMPAIGN, seed=1, out="/proc/nope/cannot-write")
    manager.wait(job.id, timeout=60)
    assert job.status == "failed"
    assert job.error
    follow_up = manager.submit(CAMPAIGN, seed=1)
    manager.wait(follow_up.id, timeout=60)
    assert follow_up.status == "done"


def test_job_states_is_the_full_vocabulary(manager):
    job = manager.submit(CAMPAIGN, seed=1)
    manager.wait(job.id, timeout=60)
    assert job.status in JOB_STATES
    assert all(state in JOB_STATES for state in ("queued", "running", "cancelled"))


# ---------------------------------------------------------------------------
# Cancel + resume
# ---------------------------------------------------------------------------
def test_cancel_leaves_a_resumable_directory_with_bit_parity(tmp_path):
    manager = JobManager(workers=1, root=tmp_path / "jobs")
    try:
        big = CampaignSpec(
            base=BASE,
            grid={"concentration": tuple(10.0 ** -k for k in range(4, 10))},
            replicates=3,
        )
        job = manager.submit(big, seed=5)
        deadline = time.monotonic() + 60
        while job.n_done < 2 and time.monotonic() < deadline:
            time.sleep(0.002)
        manager.cancel(job.id)
        manager.wait(job.id, timeout=60)
        assert job.status == "cancelled"
        assert 0 < job.n_done < job.n_points
        # Partial directory: results + sidecar, no manifest.
        assert (job.out / "results.jsonl").exists()
        assert (job.out / "campaign.json").exists()
        assert not (job.out / "manifest.json").exists()

        resumed = resume_campaign(job.out)
        assert resumed.manifest["resumed"]["previously_completed"] == job.n_done
        assert resumed.manifest["resumed"]["executed"] == job.n_points - job.n_done
        reference = run_campaign(big, seed=5)
        assert _payloads(resumed) == _payloads(reference)
    finally:
        manager.shutdown()


def test_cancel_before_start_skips_the_job(tmp_path):
    manager = JobManager(workers=1, root=tmp_path / "jobs")
    try:
        blocker = manager.submit(CAMPAIGN, seed=1)
        queued = manager.submit(CAMPAIGN, seed=2)
        manager.cancel(queued.id)
        manager.wait(queued.id, timeout=60)
        manager.wait(blocker.id, timeout=60)
        assert queued.status == "cancelled"
        assert queued.n_done == 0
    finally:
        manager.shutdown()


def test_resume_refuses_a_finalized_or_alien_directory(tmp_path):
    finished = run_campaign(CAMPAIGN, seed=1, out=str(tmp_path / "done"))
    assert finished.manifest
    with pytest.raises(FileExistsError, match="nothing to resume"):
        resume_campaign(tmp_path / "done")
    (tmp_path / "empty").mkdir()
    with pytest.raises(FileNotFoundError, match="campaign.json"):
        resume_campaign(tmp_path / "empty")


def test_resume_with_cache_serves_missing_points_from_cache(tmp_path):
    cache = ResultCache(root=tmp_path / "cache")
    run_campaign(CAMPAIGN, seed=1, cache=cache)  # populate
    partial = run_campaign(CAMPAIGN, seed=1, out=str(tmp_path / "part"))
    (tmp_path / "part" / "manifest.json").unlink()
    lines = (tmp_path / "part" / "results.jsonl").read_text().splitlines(True)
    (tmp_path / "part" / "results.jsonl").write_text("".join(lines[:1]))
    resumed = resume_campaign(tmp_path / "part", cache=cache)
    assert resumed.manifest["resumed"] == {"previously_completed": 1, "executed": 3}
    assert resumed.manifest["cache"]["hits"] == 3
    assert _payloads(resumed) == _payloads(partial)


def test_resume_refuses_a_version_mismatch(tmp_path):
    run_campaign(CAMPAIGN, seed=1, out=str(tmp_path / "part"))
    (tmp_path / "part" / "manifest.json").unlink()
    sidecar_path = tmp_path / "part" / "campaign.json"
    sidecar = json.loads(sidecar_path.read_text())
    sidecar["version"] = "0.0.0-elsewhere"
    sidecar_path.write_text(json.dumps(sidecar))
    with pytest.raises(ValueError, match="0.0.0-elsewhere"):
        resume_campaign(tmp_path / "part")
    # The override finishes the directory but records the mixture.
    resumed = resume_campaign(tmp_path / "part", ignore_version=True)
    assert resumed.manifest["resumed"]["sidecar_version"] == "0.0.0-elsewhere"


def test_resume_rejects_inputs_with_a_cache(tmp_path):
    run_campaign(CAMPAIGN, seed=1, out=str(tmp_path / "part"))
    (tmp_path / "part" / "manifest.json").unlink()
    with pytest.raises(ValueError, match="inputs"):
        resume_campaign(
            tmp_path / "part",
            cache=tmp_path / "cache",
            inputs={"substrate": object()},
        )


# ---------------------------------------------------------------------------
# AsyncExecutor
# ---------------------------------------------------------------------------
def test_async_executor_is_bit_identical_to_serial():
    serial = run_campaign(CAMPAIGN, seed=1)
    asynchronous = run_campaign(CAMPAIGN, seed=1, executor="async")
    assert asynchronous.manifest["executor"] == "async"
    assert _payloads(asynchronous) == _payloads(serial)


def test_async_executor_with_workers_matches_too():
    threaded = run_campaign(CAMPAIGN, seed=1, executor="async", workers=2)
    serial = run_campaign(CAMPAIGN, seed=1)
    assert _payloads(threaded) == _payloads(serial)


def test_async_executor_rejects_runner_factory():
    from repro.experiments import Runner

    with pytest.raises(ValueError, match="runner_factory"):
        AsyncExecutor().run(CAMPAIGN.compile(1), runner_factory=Runner)


def test_async_executor_close_stops_the_producer():
    import threading

    before = threading.active_count()
    outcomes = AsyncExecutor().run(CAMPAIGN.compile(1))
    first = next(outcomes)
    assert first.result.n_records > 0
    outcomes.close()
    deadline = time.monotonic() + 10
    while threading.active_count() > before and time.monotonic() < deadline:
        time.sleep(0.01)
    assert threading.active_count() <= before
