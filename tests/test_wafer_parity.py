"""The wafer subsystem's load-bearing invariant: per-die bit-parity.

With the correlated components zeroed (white-only), every die of a
wafer run must be **bit-identical** to a standalone run of the same
die spec at the same derived seed — records and metrics, field by
field.  And whatever the split, results must be invariant to the tile
size the out-of-core evaluator happens to use.
"""

import numpy as np
import pytest

from repro.experiments import Runner
from repro.wafer import (
    WaferSpec,
    iter_die_outputs,
    wafer_die_seed,
    wafer_field_for,
    wafer_records_and_metrics,
)

WHITE = WaferSpec(
    wafer_diameter_mm=60.0, die_width_mm=12.0, die_height_mm=12.0, rows=8, cols=8
)
CORRELATED = WHITE.replace(radial_gradient=0.3, reticle_sigma=0.2)
SEED = 7


def assert_die_matches_standalone(die, die_spec, records, metrics, seed):
    standalone = Runner(seed=wafer_die_seed(seed, die.grid_x, die.grid_y)).run(die_spec)
    assert set(records) == set(standalone.records)
    for name in records:
        assert np.array_equal(records[name], standalone.records[name]), name
    assert metrics == standalone.metrics


# ---------------------------------------------------------------------------
# White-only parity
# ---------------------------------------------------------------------------
def test_every_white_only_die_is_bit_identical_to_standalone():
    assert WHITE.white_only
    for die, die_spec, records, metrics in iter_die_outputs(WHITE, SEED):
        assert die_spec == WHITE.die_template()
        assert_die_matches_standalone(die, die_spec, records, metrics, SEED)


def test_white_only_parity_holds_with_calibration():
    spec = WHITE.replace(calibrate=True)
    for die, die_spec, records, metrics in iter_die_outputs(spec, SEED):
        assert die_spec.calibrate
        assert_die_matches_standalone(die, die_spec, records, metrics, SEED)


def test_white_only_parity_holds_for_overridden_dies():
    spec = WHITE.replace(
        die_overrides=((1, 1, "frame_s", 0.25), (2, 2, "calibrate", True))
    )
    seen_overridden = 0
    for die, die_spec, records, metrics in iter_die_outputs(spec, SEED):
        if (die.grid_x, die.grid_y) == (1, 1):
            assert die_spec.frame_s == 0.25
            seen_overridden += 1
        elif (die.grid_x, die.grid_y) == (2, 2):
            assert die_spec.calibrate
            seen_overridden += 1
        else:
            assert die_spec == spec.die_template()
        assert_die_matches_standalone(die, die_spec, records, metrics, SEED)
    assert seen_overridden == 2


def test_die_seed_is_keyed_by_grid_coordinate_not_list_position():
    # Widening the exclusion (within the same grid extent) drops dies
    # without reseeding the rest: survivors keep byte-identical records.
    wide = WHITE.replace(edge_exclusion_mm=6.0)
    assert wide.layout().n_grid_x == WHITE.layout().n_grid_x
    assert wide.layout().n_dies < WHITE.layout().n_dies
    full = {
        (die.grid_x, die.grid_y): records
        for die, _, records, _ in iter_die_outputs(WHITE, SEED)
    }
    for die, _, records, _ in iter_die_outputs(wide, SEED):
        reference = full[(die.grid_x, die.grid_y)]
        for name in records:
            assert np.array_equal(records[name], reference[name])


def test_wafer_die_seed_is_stable():
    # Frozen derivation — stored wafer campaigns replay die by die.
    assert wafer_die_seed(7, 1, 2) == wafer_die_seed(7, 1, 2)
    assert wafer_die_seed(7, 1, 2) != wafer_die_seed(7, 2, 1)
    assert wafer_die_seed(8, 1, 2) != wafer_die_seed(7, 1, 2)


# ---------------------------------------------------------------------------
# Correlated mode
# ---------------------------------------------------------------------------
def test_correlated_field_actually_shifts_results():
    white_records, _ = wafer_records_and_metrics(WHITE, SEED)
    corr_records, _ = wafer_records_and_metrics(CORRELATED, SEED)
    assert not np.array_equal(white_records["mean_count"], corr_records["mean_count"])


def test_results_are_invariant_to_tile_size():
    baseline, base_metrics = wafer_records_and_metrics(CORRELATED, SEED)
    for tile_sites in (64, 257, 1 << 18):
        records, metrics = wafer_records_and_metrics(
            CORRELATED, SEED, tile_sites=tile_sites
        )
        for name in baseline:
            assert np.array_equal(records[name], baseline[name]), (name, tile_sites)
        assert metrics == base_metrics


def test_injected_field_replays_the_sampled_one():
    field = wafer_field_for(CORRELATED, SEED)
    direct, _ = wafer_records_and_metrics(CORRELATED, SEED)
    injected, _ = wafer_records_and_metrics(CORRELATED, SEED, field=field)
    for name in direct:
        assert np.array_equal(direct[name], injected[name])


def test_tile_sites_must_be_positive():
    with pytest.raises(ValueError, match="tile_sites"):
        list(iter_die_outputs(WHITE, SEED, tile_sites=0))
