"""Runner determinism, batching/caching, and ResultSet exports."""

import numpy as np
import pytest

from repro.core.rng import SeedTree, stable_entropy
from repro.experiments import (
    AdcTransferSpec,
    DnaAssaySpec,
    NeuralRecordingSpec,
    ResultSet,
    Runner,
    ScreeningSpec,
)

SMALL_DNA = DnaAssaySpec(probe_count=4, replicates=4, target_subset=(0, 1))
SMALL_NEURAL = NeuralRecordingSpec(
    rows=16, cols=16, n_neurons=2, diameter_range_m=(40e-6, 70e-6),
    duration_s=0.05, use_hh=False,
)
SMALL_SCREEN = ScreeningSpec(library_size=2000)


# ---------------------------------------------------------------------------
# Seed tree
# ---------------------------------------------------------------------------
def test_stable_entropy_is_order_and_content_sensitive():
    assert stable_entropy("a", "b") == stable_entropy("a", "b")
    assert stable_entropy("a", "b") != stable_entropy("b", "a")
    assert stable_entropy("ab") != stable_entropy("a", "b")
    assert all(0 <= word < 2**32 for word in stable_entropy("x", 17))


def test_seed_tree_streams_independent_of_request_order():
    one = SeedTree(5)
    two = SeedTree(5)
    first = one.generator("chip").standard_normal(4)
    _ = one.generator("other").standard_normal(100)  # extra draws elsewhere
    again = two.generator("chip").standard_normal(4)
    np.testing.assert_array_equal(first, again)
    assert not np.array_equal(
        SeedTree(5).generator("chip").standard_normal(4),
        SeedTree(6).generator("chip").standard_normal(4),
    )


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "spec", [SMALL_DNA, SMALL_NEURAL, SMALL_SCREEN, AdcTransferSpec(points_per_decade=2)],
    ids=lambda s: s.kind,
)
def test_same_spec_same_seed_bit_identical(spec):
    result_a = Runner(seed=3).run(spec)
    result_b = Runner(seed=3).run(spec)
    assert result_a.records.keys() == result_b.records.keys()
    for name in result_a.records:
        np.testing.assert_array_equal(result_a.records[name], result_b.records[name])
    assert result_a.metrics == result_b.metrics
    assert result_a.to_json() == result_b.to_json()


def test_different_seed_changes_results():
    counts_a = Runner(seed=3).run(SMALL_DNA).column("count")
    counts_b = Runner(seed=4).run(SMALL_DNA).column("count")
    assert not np.array_equal(counts_a, counts_b)


def test_run_alone_equals_run_inside_batch():
    alone = Runner(seed=9).run(SMALL_DNA)
    sweep = [SMALL_DNA.replace(concentration=1e-7), SMALL_DNA, SMALL_DNA.replace(concentration=1e-4)]
    batched = Runner(seed=9).run_batch(sweep)[1]
    np.testing.assert_array_equal(alone.column("count"), batched.column("count"))


# ---------------------------------------------------------------------------
# Batching / caches
# ---------------------------------------------------------------------------
def test_batch_of_identical_dna_specs_reuses_one_chip():
    runner = Runner(seed=1)
    results = runner.run_batch([SMALL_DNA] * 5)
    assert runner.stats.chips_built == 1
    assert runner.stats.chips_reused == 4
    assert runner.stats.layouts_built == 1
    for result in results[1:]:
        assert result.artifacts["chip"] is results[0].artifacts["chip"]
        np.testing.assert_array_equal(result.column("count"), results[0].column("count"))


def test_concentration_sweep_shares_chip_and_layout():
    runner = Runner(seed=1)
    sweep = [SMALL_DNA.replace(concentration=c) for c in (1e-8, 1e-7, 1e-6, 1e-5)]
    results = runner.run_batch(sweep)
    assert runner.stats.chips_built == 1 and runner.stats.layouts_built == 1
    probes = results[0].column("probe")
    for result in results[1:]:
        assert list(result.column("probe")) == list(probes)
    # Dose response is monotone on match sites (sanity of the shared panel).
    medians = [
        float(np.median(r.select(r.column("is_match"))["count"])) for r in results
    ]
    assert medians == sorted(medians)


def test_screening_pair_shares_library_and_decision_stream():
    runner = Runner(seed=2)
    cmos, conv = runner.run_batch(
        [SMALL_SCREEN.replace(cmos=True), SMALL_SCREEN.replace(cmos=False)]
    )
    assert runner.stats.libraries_built == 1
    assert runner.stats.libraries_reused == 1
    assert cmos.artifacts["library"] is conv.artifacts["library"]
    assert cmos.metrics["library_viable"] == conv.metrics["library_viable"]


def test_neural_analysis_knobs_rescore_the_same_recording():
    """threshold/tolerance sweeps are paired: same culture, same frames."""
    runner = Runner(seed=6)
    base = runner.run(SMALL_NEURAL)
    swept = runner.run(SMALL_NEURAL.replace(threshold_sigma=8.0))
    np.testing.assert_array_equal(base.column("diameter_m"), swept.column("diameter_m"))
    np.testing.assert_array_equal(
        base.artifacts["recording"].electrode_movie.frames,
        swept.artifacts["recording"].electrode_movie.frames,
    )
    # A higher threshold can only detect fewer spikes on the same data.
    assert swept.metrics["total_detected_spikes"] <= base.metrics["total_detected_spikes"]


def test_injected_prebuilt_chip_is_used():
    from repro.chip import DnaMicroarrayChip

    chip = DnaMicroarrayChip(rng=123)
    chip.configure_bias(0.45, -0.25)
    result = Runner(seed=1).run(SMALL_DNA.replace(calibrate=False), inputs={"chip": chip})
    assert result.artifacts["chip"] is chip
    assert result.metrics["bias_ok"] is True


def test_different_chip_config_builds_new_chip():
    runner = Runner(seed=1)
    runner.run(SMALL_DNA)
    runner.run(SMALL_DNA.replace(v_generator=0.5))
    assert runner.stats.chips_built == 2


def test_run_by_kind_name_and_bad_inputs():
    runner = Runner(seed=1)
    result = runner.run("screening", library_size=2000)
    assert result.kind == "screening"
    with pytest.raises(TypeError):
        runner.run(SMALL_SCREEN, library_size=2000)
    with pytest.raises(KeyError, match="unknown stream override"):
        runner.run(SMALL_SCREEN, rng_overrides={"nonsense": 1})
    with pytest.raises(KeyError, match="unknown experiment kind"):
        runner.run("not_a_kind")


# ---------------------------------------------------------------------------
# ResultSet
# ---------------------------------------------------------------------------
def test_resultset_exports_and_provenance():
    runner = Runner(seed=7)
    result = runner.run(SMALL_SCREEN)
    rows = result.to_rows()
    assert len(rows) == result.n_records == len(result.column("stage"))
    assert set(rows[0]) == set(result.records)
    assert all(isinstance(v, (str, int, float, bool)) for v in rows[0].values())

    back = ResultSet.from_json(result.to_json())
    assert back.kind == "screening"
    assert back.spec == result.spec
    assert back.seeds["root"] == 7
    assert back.metrics == result.metrics
    np.testing.assert_array_equal(back.column("cost"), result.column("cost"))

    with pytest.raises(KeyError, match="no column"):
        result.column("nope")
    with pytest.raises(ValueError):
        result.select(np.ones(result.n_records + 1, dtype=bool))


def test_resultset_rejects_ragged_columns():
    with pytest.raises(ValueError, match="unequal lengths"):
        ResultSet(
            kind="x", spec={}, seeds={}, version="0",
            records={"a": np.zeros(3), "b": np.zeros(2)},
        )


# ---------------------------------------------------------------------------
# RunnerStats / clear_caches instrumentation
# ---------------------------------------------------------------------------
def test_runner_stats_count_reuse_across_a_concentration_sweep():
    runner = Runner(seed=1)
    assert runner.stats.as_dict() == {
        "runs": 0, "chips_built": 0, "chips_reused": 0,
        "layouts_built": 0, "layouts_reused": 0,
        "libraries_built": 0, "libraries_reused": 0,
    }
    sweep = [SMALL_DNA.replace(concentration=c) for c in (1e-8, 1e-7, 1e-6, 1e-5)]
    runner.run_batch(sweep)
    assert runner.stats.runs == 4
    assert runner.stats.chips_built == 1 and runner.stats.chips_reused == 3
    assert runner.stats.layouts_built == 1 and runner.stats.layouts_reused == 3
    assert runner.stats.libraries_built == 0
    # as_dict is a live snapshot of the dataclass fields.
    assert runner.stats.as_dict()["chips_reused"] == 3


def test_clear_caches_forces_rebuilds_but_not_different_results():
    runner = Runner(seed=1)
    first = runner.run(SMALL_DNA)
    runner.clear_caches()
    second = runner.run(SMALL_DNA)
    assert runner.stats.chips_built == 2  # cache invalidation really rebuilt
    assert runner.stats.chips_reused == 0
    assert runner.stats.layouts_built == 2
    assert second.artifacts["chip"] is not first.artifacts["chip"]
    # Streams derive from (root, path), so the rebuild is bit-identical.
    np.testing.assert_array_equal(first.column("count"), second.column("count"))


def test_clone_shares_seed_but_nothing_else():
    runner = Runner(seed=8)
    original = runner.run(SMALL_DNA)
    clone = runner.clone()
    assert clone is not runner
    assert clone.seed == 8
    assert clone.stats.runs == 0 and not clone._caches
    np.testing.assert_array_equal(
        clone.run(SMALL_DNA).column("count"), original.column("count")
    )
    assert runner.clone(seed=9).seed == 9


# ---------------------------------------------------------------------------
# Per-spec input isolation
# ---------------------------------------------------------------------------
def test_run_batch_isolates_inputs_per_spec(monkeypatch):
    """A workload mutating its `inputs` dict must see a fresh copy per
    run and never touch the caller's mapping."""
    import dataclasses as _dc

    from repro.experiments import workloads as _workloads

    original = _workloads.WORKLOADS["adc_transfer"]
    seen: list[int] = []

    def mutating_execute(runner, spec, rngs, inputs):
        inputs["leak"] = inputs.get("leak", 0) + 1
        seen.append(inputs["leak"])
        return original.execute(runner, spec, rngs, inputs)

    monkeypatch.setitem(
        _workloads.WORKLOADS,
        "adc_transfer",
        _dc.replace(original, execute=mutating_execute),
    )
    caller_inputs = {"frame": "shared"}
    specs = [AdcTransferSpec(points_per_decade=2), AdcTransferSpec(points_per_decade=3)]
    Runner(seed=1).run_batch(specs, inputs=caller_inputs)
    assert caller_inputs == {"frame": "shared"}  # caller dict untouched
    assert seen == [1, 1]  # each spec saw a clean copy, no cross-spec leak


def test_run_copies_inputs_even_for_single_runs(monkeypatch):
    import dataclasses as _dc

    from repro.experiments import workloads as _workloads

    original = _workloads.WORKLOADS["adc_transfer"]

    def mutating_execute(runner, spec, rngs, inputs):
        inputs.clear()
        return original.execute(runner, spec, rngs, inputs)

    monkeypatch.setitem(
        _workloads.WORKLOADS,
        "adc_transfer",
        _dc.replace(original, execute=mutating_execute),
    )
    caller_inputs = {"keep": 1}
    Runner(seed=1).run(AdcTransferSpec(points_per_decade=2), inputs=caller_inputs)
    assert caller_inputs == {"keep": 1}
