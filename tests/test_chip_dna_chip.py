"""The integrated 16x8 DNA microarray chip (Fig. 4)."""

import numpy as np
import pytest

from repro.chip.dna_chip import ChipSpecs, DnaMicroarrayChip
from repro.dna import MicroarrayAssay, ProbeLayout, Sample


class TestSpecs:
    def test_defaults_match_paper(self):
        specs = ChipSpecs()
        assert specs.rows * specs.cols == 128
        assert specs.process.vdd == 5.0
        assert specs.process.l_min == pytest.approx(0.5e-6)
        assert specs.process.t_ox == pytest.approx(15e-9)
        assert specs.pin_count == 6

    def test_as_rows_renders(self):
        rows = ChipSpecs().as_rows()
        assert any("16 x 8" in value for _, value in rows)


class TestConfiguration:
    def test_bias_configuration_good(self, dna_chip):
        assert dna_chip.configure_bias(0.45, -0.25)
        assert dna_chip.registers.read("generator_dac") > 0

    def test_bias_misconfiguration_detected(self):
        chip = DnaMicroarrayChip(rng=5)
        # Collector above the redox potential: cycling impossible.
        assert not chip.configure_bias(0.45, 0.45)

    def test_misbiased_chip_reads_background_only(self):
        chip = DnaMicroarrayChip(rng=6)
        chip.configure_bias(0.45, 0.45)
        currents = np.full((16, 8), 1e-9)
        # Pixels still convert raw currents (test mode bypasses chemistry).
        counts = chip.measure_currents(currents, frame_s=0.1, rng=1)
        assert counts.max() > 0

    def test_pixel_indexing(self, dna_chip):
        assert dna_chip.pixel_at(0, 0) is dna_chip.pixels[0]
        assert dna_chip.pixel_at(15, 7) is dna_chip.pixels[127]
        with pytest.raises(IndexError):
            dna_chip.pixel_at(16, 0)


class TestCalibrationAndMeasurement:
    def test_calibration_improves_estimates(self):
        chip = DnaMicroarrayChip(rng=21)
        chip.configure_bias(0.45, -0.25)
        currents = np.full((16, 8), 2e-9)
        counts_raw = chip.measure_currents(currents, frame_s=1.0, rng=1)
        est_raw = chip.current_estimates(counts_raw, 1.0)
        err_raw = np.abs(est_raw - 2e-9) / 2e-9
        chip.auto_calibrate(frame_s=0.1, rng=2)
        counts_cal = chip.measure_currents(currents, frame_s=1.0, rng=3)
        est_cal = chip.current_estimates(counts_cal, 1.0)
        err_cal = np.abs(est_cal - 2e-9) / 2e-9
        assert np.median(err_cal) < np.median(err_raw)
        assert np.median(err_cal) < 0.01

    def test_measure_currents_shape_checked(self, dna_chip):
        with pytest.raises(ValueError):
            dna_chip.measure_currents(np.zeros((4, 4)))

    def test_count_matrix_monotone_in_current(self):
        chip = DnaMicroarrayChip(rng=22)
        chip.configure_bias(0.45, -0.25)
        lo = chip.measure_currents(np.full((16, 8), 1e-10), frame_s=0.5, rng=4)
        hi = chip.measure_currents(np.full((16, 8), 1e-9), frame_s=0.5, rng=5)
        assert np.all(hi > lo)

    def test_assay_grid_mismatch_rejected(self, dna_chip):
        layout = ProbeLayout.random_panel(4, rows=4, cols=4, rng=1)
        sample = Sample.for_probes(layout.probes(), 1e-6)
        result = MicroarrayAssay(layout).run(sample)
        with pytest.raises(ValueError):
            dna_chip.measure_assay(result)


class TestSerialReadout:
    def test_counts_roundtrip_through_link(self):
        chip = DnaMicroarrayChip(rng=23)
        chip.configure_bias(0.45, -0.25)
        counts = chip.measure_currents(np.full((16, 8), 1e-9), frame_s=0.2, rng=6)
        host = chip.read_counters_serial()
        assert host == [int(c) for c in counts.reshape(-1)]
        assert len(host) == 128

    def test_transcript_records_traffic(self):
        chip = DnaMicroarrayChip(rng=24)
        chip.configure_bias(0.45, -0.25)
        n_before = len(chip.link.transcript)
        chip.measure_currents(np.full((16, 8), 1e-10), frame_s=0.1, rng=7)
        chip.read_counters_serial()
        assert len(chip.link.transcript) > n_before


class TestFailureInjection:
    def test_dead_pixel_never_fires(self):
        chip = DnaMicroarrayChip(rng=25)
        chip.configure_bias(0.45, -0.25)
        chip.inject_dead_pixel(3, 3)
        counts = chip.measure_currents(np.full((16, 8), 5e-12), frame_s=1.0, rng=8)
        assert counts[3, 3] == 0
        assert counts[0, 0] > 0

    def test_dead_pixel_map(self):
        chip = DnaMicroarrayChip(rng=26)
        chip.inject_dead_pixel(1, 2)
        flags = chip.dead_pixel_map()
        assert flags[1, 2]
        assert flags.sum() >= 1
