"""Result stores: streaming JSONL + manifest round-trip, reports."""

import json

import pytest

from repro.campaigns import (
    MANIFEST_SCHEMA,
    CampaignSpec,
    JsonlResultStore,
    MemoryResultStore,
    make_store,
    manifest_summary,
    metrics_table,
    run_campaign,
)
from repro.experiments import DnaAssaySpec

BASE = DnaAssaySpec(probe_count=4, replicates=4, target_subset=(0, 1))
CAMPAIGN = CampaignSpec(
    base=BASE, grid={"concentration": (1e-7, 1e-6)}, replicates=2, name="store-test"
)


@pytest.fixture()
def stored(tmp_path):
    out = tmp_path / "campaign"
    result = run_campaign(CAMPAIGN, seed=3, executor="serial", store="jsonl", out=out)
    return out, result


# ---------------------------------------------------------------------------
# JSONL store
# ---------------------------------------------------------------------------
def test_jsonl_layout_and_manifest(stored):
    out, result = stored
    assert (out / "results.jsonl").exists()
    manifest = json.loads((out / "manifest.json").read_text())
    assert manifest == result.manifest
    assert manifest["schema"] == MANIFEST_SCHEMA
    assert manifest["name"] == "store-test"
    assert manifest["campaign"] == CAMPAIGN.to_dict()
    assert manifest["seed"] == 3
    assert manifest["executor"] == "serial"
    assert manifest["n_points"] == 4
    assert manifest["total_wall_s"] > 0
    points = manifest["points"]
    assert [p["point"] for p in points] == [0, 1, 2, 3]
    assert all(p["wall_s"] > 0 and p["n_records"] == 128 for p in points)
    assert points[0]["assignment"] == {"concentration": 1e-7}
    assert points[0]["spec_hash"] == BASE.replace(concentration=1e-7).content_hash()


def test_jsonl_round_trip_is_lossless(stored):
    out, result = stored
    reference = run_campaign(CAMPAIGN, seed=3, executor="serial")
    loaded = JsonlResultStore.load(out)
    assert loaded.manifest == result.manifest
    restored = loaded.results()
    originals = reference.results()
    assert len(restored) == len(originals) == 4
    for back, original in zip(restored, originals):
        assert back.to_json() == original.without_artifacts().to_json()
        for name in original.records:
            assert back.records[name].dtype == original.records[name].dtype


def test_jsonl_store_streams_instead_of_retaining(stored):
    out, _ = stored
    store = JsonlResultStore.load(out)
    # Metadata only in memory; results re-read lazily from disk.
    assert all("result" not in meta for meta in store.point_metas())
    first_meta, first_result = next(iter(store.iter_results()))
    assert first_meta["point"] == 0
    assert first_result.n_records == 128


def test_finalized_directories_are_guarded_from_overwrite(stored):
    out, _ = stored
    assert (out / "manifest.json").exists()
    # A finalized campaign cannot be destroyed by accident ...
    with pytest.raises(FileExistsError, match="finalized campaign"):
        JsonlResultStore(out)
    assert (out / "manifest.json").exists()
    assert (out / "results.jsonl").read_text() != ""
    # ... but an explicit overwrite truncates results AND removes the
    # old manifest, so run-1 provenance can never describe run-2 records.
    store = JsonlResultStore(out, overwrite=True)
    assert not (out / "manifest.json").exists()
    assert (out / "results.jsonl").read_text() == ""
    store.finalize({"schema": MANIFEST_SCHEMA})
    # A partial run (results without manifest) reopens without force.
    (out / "manifest.json").unlink()
    JsonlResultStore(out).finalize({"schema": MANIFEST_SCHEMA})


def test_jsonl_store_rejects_add_after_finalize(tmp_path):
    store = JsonlResultStore(tmp_path / "x")
    store.finalize({"schema": MANIFEST_SCHEMA})
    with pytest.raises(RuntimeError, match="finalized"):
        store.add(_first_outcome())
    with pytest.raises(FileNotFoundError):
        JsonlResultStore.load(tmp_path / "nowhere")


def _first_outcome():
    memory = MemoryResultStore()
    run_campaign(
        CampaignSpec(base=BASE, grid={"concentration": (1e-6,)}), seed=0, store=memory
    )
    return memory.outcomes()[0]


# ---------------------------------------------------------------------------
# make_store
# ---------------------------------------------------------------------------
def test_make_store_resolution(tmp_path):
    assert isinstance(make_store(None), MemoryResultStore)
    assert isinstance(make_store("memory"), MemoryResultStore)
    assert isinstance(make_store("jsonl", out=tmp_path / "a"), JsonlResultStore)
    assert isinstance(make_store(None, out=tmp_path / "b"), JsonlResultStore)
    assert isinstance(make_store(tmp_path / "c"), JsonlResultStore)
    existing = MemoryResultStore()
    assert make_store(existing) is existing
    with pytest.raises(ValueError, match="output directory"):
        make_store("jsonl")
    with pytest.raises(ValueError, match="writes nothing to disk"):
        make_store("memory", out=tmp_path / "d")
    with pytest.raises(ValueError, match="unknown store"):
        make_store("sqlite")
    # Directory *strings* are rejected: a typo'd store name must error,
    # not silently become a directory (Path or out= are the path spellings).
    with pytest.raises(ValueError, match="unknown store"):
        make_store(str(tmp_path / "dir-as-string"))
    # A store instance + a different out directory is a conflict ...
    with pytest.raises(ValueError, match="conflicts with the provided store"):
        make_store(MemoryResultStore(), out=tmp_path / "e")
    # ... but a JSONL instance already rooted at out passes through.
    rooted = JsonlResultStore(tmp_path / "f")
    assert make_store(rooted, out=tmp_path / "f") is rooted


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------
def test_numpy_scalar_metrics_survive_into_point_metadata():
    import numpy as np

    from repro.campaigns.store import _outcome_meta
    from repro.campaigns import PointOutcome
    from repro.experiments import ResultSet

    plan = CampaignSpec(base=BASE).compile(seed=0)
    result = ResultSet(
        kind="dna_assay", spec={}, seeds={}, version="0",
        metrics={
            "n_hits": np.int64(7), "ok": np.bool_(True), "ratio": np.float64(0.5),
            "plain": 3, "vector": np.arange(3),  # non-scalar: dropped
        },
    )
    meta = _outcome_meta(PointOutcome(point=plan[0], result=result, wall_s=0.1))
    assert meta["metrics"] == {"n_hits": 7, "ok": True, "ratio": 0.5, "plain": 3}


def test_load_rejects_foreign_manifest_schema(stored):
    out, _ = stored
    manifest = json.loads((out / "manifest.json").read_text())
    manifest["schema"] = "repro-campaign/99"
    (out / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(ValueError, match="repro-campaign/99"):
        JsonlResultStore.load(out)


def test_runner_run_campaign_forwards_out_for_jsonl(tmp_path):
    from repro.experiments import Runner

    out = tmp_path / "via-runner"
    result = Runner(seed=3).run_campaign(CAMPAIGN, store="jsonl", out=out)
    assert (out / "manifest.json").exists()
    assert result.manifest["seed"] == 3
    # And replicate-0 points match the plain-Runner result exactly.
    alone = Runner(seed=3).run(BASE.replace(concentration=1e-7))
    assert result.results()[0].to_json() == alone.to_json()


def test_metrics_table_from_live_and_loaded_store_match(stored):
    out, result = stored
    live = result.table(metrics=["discrimination_ratio"])
    loaded = metrics_table(JsonlResultStore.load(out), metrics=["discrimination_ratio"])
    assert live == loaded
    assert "concentration" in live and "discrimination_ratio" in live
    assert live.count("\n") == 4 + 2 - 1  # 4 points + header + rule


def test_metrics_table_defaults_to_common_scalar_metrics(stored):
    out, result = stored
    table = result.table()
    assert "discrimination_ratio" in table
    assert "wall_s" in table and "replicate" in table
    # The default-column table is identical live and reloaded (sorted
    # metric order on both paths).
    assert metrics_table(JsonlResultStore.load(out)) == table


def test_manifest_summary_block(stored):
    _, result = stored
    text = manifest_summary(result.manifest)
    assert "store-test" in text and "dna_assay" in text and "serial" in text


def test_empty_store_table():
    assert "no stored results" in metrics_table(MemoryResultStore())


def test_campaign_result_accessors(stored):
    _, result = stored
    assert result.n_points == len(result) == 4
    assert result.result_for(2).n_records == 128
    with pytest.raises(KeyError):
        result.result_for(99)
    assert "store=jsonl" in result.summary()
    assert result.total_wall_s > 0


def test_result_for_uses_offsets_on_loaded_stores(stored):
    out, result = stored
    loaded = JsonlResultStore.load(out)
    for point in (3, 0, 2):  # random access, any order
        assert loaded.result_for(point).to_json() == result.result_for(point).to_json()
    with pytest.raises(KeyError, match="point 99"):
        loaded.result_for(99)


# ---------------------------------------------------------------------------
# The streaming read API (iter_results / load_point)
# ---------------------------------------------------------------------------
def test_iter_results_is_lazy(stored):
    """Analyses stream a campaign: iterating must not materialise every
    ResultSet up front."""
    import types

    out, _ = stored
    loaded = JsonlResultStore.load(out)
    iterator = loaded.iter_results()
    assert isinstance(iterator, types.GeneratorType)
    meta, result = next(iterator)
    assert meta["point"] == 0 and result.n_records == 128
    iterator.close()  # abandoning mid-stream leaks nothing


def test_load_point_random_access(stored):
    out, result = stored
    loaded = JsonlResultStore.load(out)
    # O(1) seek on the recorded byte offset — same payload either way.
    assert loaded.load_point(3).to_json() == result.load_point(3).to_json()
    assert loaded.load_point(0).metrics["n_sites"] == 128
    with pytest.raises(KeyError, match="point 42"):
        loaded.load_point(42)


def test_load_point_on_memory_store(stored):
    _, result = stored
    memory = MemoryResultStore()
    reference = run_campaign(CAMPAIGN, seed=3, store=memory)
    assert memory.load_point(1).to_json() == reference.result_for(1).to_json()
    with pytest.raises(KeyError):
        memory.load_point(99)


def test_load_point_works_without_manifest(tmp_path):
    """A partial (crashed) campaign is still randomly accessible."""
    out = tmp_path / "partial"
    run_campaign(CAMPAIGN, seed=3, store="jsonl", out=out)
    (out / "manifest.json").unlink()
    loaded = JsonlResultStore.load(out)
    assert loaded.manifest is None
    assert loaded.load_point(2).n_records == 128


# ---------------------------------------------------------------------------
# Buffered append mode (flush_every > 1)
# ---------------------------------------------------------------------------
def test_buffered_store_round_trip_matches_per_point_flushing(tmp_path, stored):
    _, reference = stored
    out = tmp_path / "buffered"
    buffered = run_campaign(
        CAMPAIGN, seed=3, store="jsonl", out=out, flush_every=3
    )
    for a, b in zip(reference.results(), buffered.results()):
        assert a.to_json() == b.to_json()
    loaded = JsonlResultStore.load(out)
    assert loaded.manifest == buffered.store.manifest
    assert [meta["point"] for meta in loaded.point_metas()] == [
        meta["point"] for meta in buffered.store.point_metas()
    ]


def test_buffered_store_defers_disk_writes_until_threshold(tmp_path, stored):
    """Lines accumulate in the append buffer and land in whole batches
    — the partial file on disk only ever holds complete lines."""
    out_dir, reference = stored
    store = JsonlResultStore(tmp_path / "buffered", flush_every=2)
    from repro.campaigns.executors import PointOutcome

    plan = CAMPAIGN.compile(3)
    pairs = list(JsonlResultStore.load(out_dir).iter_results())
    path = store.root / store.RESULTS_NAME
    meta, result = pairs[0]
    store.add(PointOutcome(point=plan[meta["point"]], result=result, wall_s=1.0))
    assert path.stat().st_size == 0  # still buffered
    meta, result = pairs[1]
    store.add(PointOutcome(point=plan[meta["point"]], result=result, wall_s=1.0))
    size_after_flush = path.stat().st_size
    assert size_after_flush > 0
    with path.open() as handle:
        lines = handle.readlines()
    assert len(lines) == 2
    for line in lines:
        json.loads(line)  # every flushed line is complete JSON
    # One more buffered point: not on disk yet, but readable through the
    # store (result_for flushes pending lines first).
    meta, result = pairs[2]
    store.add(PointOutcome(point=plan[meta["point"]], result=result, wall_s=1.0))
    assert path.stat().st_size == size_after_flush
    fetched = store.result_for(meta["point"])
    assert fetched.to_json() == result.to_json()
    assert path.stat().st_size > size_after_flush


def test_buffered_store_partial_run_loses_only_the_tail(tmp_path, stored):
    out_dir, _ = stored
    store = JsonlResultStore(tmp_path / "buffered", flush_every=3)
    from repro.campaigns.executors import PointOutcome

    plan = CAMPAIGN.compile(3)
    pairs = list(JsonlResultStore.load(out_dir).iter_results())
    for meta, result in pairs:  # 4 points: one flush of 3, 1 buffered
        store.add(
            PointOutcome(point=plan[meta["point"]], result=result, wall_s=1.0)
        )
    # Simulate a crash: reload the directory without finalize — the
    # buffered point never reached disk, the three flushed ones did.
    loaded = JsonlResultStore.load(tmp_path / "buffered")
    assert loaded.manifest is None
    assert len(loaded.point_metas()) == 3


def test_buffered_store_finalize_flushes_everything(tmp_path):
    out = tmp_path / "buffered"
    result = run_campaign(CAMPAIGN, seed=3, store="jsonl", out=out, flush_every=1000)
    lines = (out / "results.jsonl").read_text().strip().splitlines()
    assert len(lines) == len(result.plan)


def test_flush_every_validation(tmp_path):
    with pytest.raises(ValueError, match="flush_every"):
        JsonlResultStore(tmp_path / "x", flush_every=0)
    with pytest.raises(ValueError, match="jsonl"):
        make_store("memory", flush_every=8)
    with pytest.raises(ValueError, match="jsonl"):
        make_store(None, flush_every=8)
    with pytest.raises(ValueError, match="jsonl"):
        make_store(MemoryResultStore(), flush_every=8)
    store = JsonlResultStore(tmp_path / "y", flush_every=4)
    assert make_store(store, flush_every=4) is store
    with pytest.raises(ValueError, match="conflicts"):
        make_store(store, flush_every=2)
    configured = make_store("jsonl", out=tmp_path / "z", flush_every=6)
    assert configured.flush_every == 6
