"""Op-amp and comparator behavioural models."""

import numpy as np
import pytest

from repro.core.signals import Trace
from repro.devices.comparator import Comparator
from repro.devices.opamp import OpAmp


class TestOpAmpStatic:
    def test_output_saturates(self):
        amp = OpAmp(dc_gain=1e4, rail_low=0.0, rail_high=5.0)
        assert amp.output_static(1.0, 0.0) == 5.0
        assert amp.output_static(0.0, 1.0) == 0.0

    def test_small_signal_linear(self):
        amp = OpAmp(dc_gain=100.0, rail_low=-10.0, rail_high=10.0)
        assert amp.output_static(0.01, 0.0) == pytest.approx(1.0)

    def test_offset_adds(self):
        amp = OpAmp(dc_gain=100.0, offset_v=0.001, rail_low=-10.0, rail_high=10.0)
        assert amp.output_static(0.0, 0.0) == pytest.approx(0.1)

    def test_closed_loop_gain(self):
        amp = OpAmp(dc_gain=1e5)
        assert amp.closed_loop_gain(1.0) == pytest.approx(1.0, rel=1e-4)
        assert amp.closed_loop_gain(0.1) == pytest.approx(10.0, rel=1e-3)

    def test_closed_loop_bandwidth(self):
        amp = OpAmp(gbw_hz=10e6)
        assert amp.closed_loop_bandwidth(0.5) == pytest.approx(5e6)

    def test_invalid_feedback(self):
        with pytest.raises(ValueError):
            OpAmp().closed_loop_gain(0.0)

    def test_invalid_rails(self):
        with pytest.raises(ValueError):
            OpAmp(rail_low=1.0, rail_high=0.0)


class TestOpAmpDynamic:
    def test_follower_tracks_dc(self):
        amp = OpAmp(dc_gain=1e5, gbw_hz=1e6)
        target = Trace(np.full(5000, 2.0), dt=1e-7)
        out = amp.follower_response(target)
        assert out.samples[-1] == pytest.approx(2.0, abs=1e-3)

    def test_follower_bandwidth_limits_step(self):
        amp = OpAmp(dc_gain=1e5, gbw_hz=1e5)
        samples = np.concatenate([np.zeros(10), np.ones(2000)])
        out = amp.follower_response(Trace(samples, dt=1e-7))
        # 10-90 settling of a 100 kHz pole ~ 3.5 us; at 1 us after the
        # step the output must still be well below the target.
        assert out.samples[20] < 0.8

    def test_slew_limit_enforced(self):
        amp = OpAmp(dc_gain=1e5, gbw_hz=1e8, slew_rate=1e5)  # 0.1 V/us
        samples = np.concatenate([np.zeros(10), np.ones(4000)])
        out = amp.follower_response(Trace(samples, dt=1e-7))
        max_step = np.max(np.abs(np.diff(out.samples)))
        assert max_step <= 1e5 * 1e-7 * 1.001

    def test_settling_time_linear_case(self):
        amp = OpAmp(dc_gain=1e5, gbw_hz=1e6)
        t = amp.settling_time(0.1, tolerance=1e-3)
        tau = 1 / (2 * np.pi * 1e6)
        assert t == pytest.approx(tau * np.log(1000), rel=1e-6)

    def test_settling_time_zero_step(self):
        assert OpAmp().settling_time(0.0) == 0.0

    def test_settling_invalid_tolerance(self):
        with pytest.raises(ValueError):
            OpAmp().settling_time(1.0, tolerance=2.0)


class TestComparatorStatic:
    def test_trip_above_threshold(self):
        comp = Comparator(threshold_v=1.0)
        assert comp.compare_static(1.1)
        assert not comp.compare_static(0.9)

    def test_offset_shifts_threshold(self):
        comp = Comparator(threshold_v=1.0, offset_v=0.2)
        assert not comp.compare_static(1.1)
        assert comp.compare_static(1.25)

    def test_hysteresis_memory(self):
        comp = Comparator(threshold_v=1.0, hysteresis_v=0.2)
        assert comp.compare_static(0.9, state=True)  # holds above falling level
        assert not comp.compare_static(0.9, state=False)
        assert not comp.compare_static(0.75, state=True)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Comparator(1.0, hysteresis_v=-0.1)
        with pytest.raises(ValueError):
            Comparator(1.0, delay_s=-1.0)


class TestComparatorDynamic:
    def test_process_ramp_fires_once(self):
        comp = Comparator(threshold_v=0.5)
        ramp = Trace(np.linspace(0, 1, 1000), dt=1e-6)
        out = comp.process(ramp)
        transitions = np.sum(np.abs(np.diff(out.samples)) > 0.5)
        assert transitions == 1

    def test_delay_shifts_edge(self):
        comp_fast = Comparator(threshold_v=0.5, delay_s=0.0)
        comp_slow = Comparator(threshold_v=0.5, delay_s=50e-6)
        ramp = Trace(np.linspace(0, 1, 1000), dt=1e-6)
        t_fast = comp_fast.first_crossing_time(ramp)
        t_slow = comp_slow.first_crossing_time(ramp)
        assert t_slow - t_fast == pytest.approx(50e-6, abs=2e-6)

    def test_no_crossing_returns_none(self):
        comp = Comparator(threshold_v=2.0)
        flat = Trace(np.zeros(100), dt=1e-6)
        assert comp.first_crossing_time(flat) is None

    def test_noise_jitters_trip_point(self):
        comp = Comparator(threshold_v=0.5, noise_rms_v=0.05)
        levels = {comp.trip_level(rng=i) for i in range(16)}
        assert len(levels) > 1

    def test_noiseless_trip_is_deterministic(self):
        comp = Comparator(threshold_v=0.5)
        assert comp.trip_level() == comp.trip_level()
