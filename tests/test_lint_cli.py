"""`repro lint` end-to-end: exit codes, JSON payloads, baselines.

Most cases drive ``repro.cli.main`` in-process (same entry the console
script uses); a subprocess case proves ``python -m repro lint`` works
without any PYTHONPATH tricks beyond what the test environment already
has, and a console-script case runs when ``repro`` is on PATH.
"""

import json
import shutil
import subprocess
import sys

import pytest

from repro.cli import main

DIRTY = """\
import time


def stamp():
    return time.time()
"""

CLEAN = """\
def stamp(clock):
    return clock()
"""


@pytest.fixture()
def dirty_file(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text(DIRTY)
    return path


@pytest.fixture()
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(CLEAN)
    return path


def run_lint(*argv):
    try:
        return main(["lint", *argv])
    except SystemExit as exit_:  # usage errors raise SystemExit(2)
        return exit_.code


# ----------------------------------------------------------------------
# Exit codes
# ----------------------------------------------------------------------


def test_clean_file_exits_zero(clean_file, capsys):
    assert run_lint(str(clean_file)) == 0
    assert capsys.readouterr().out.strip().endswith("0 findings")


def test_findings_exit_one(dirty_file, capsys):
    assert run_lint(str(dirty_file)) == 1
    out = capsys.readouterr().out
    assert "D102" in out
    assert out.strip().endswith("1 finding")


def test_unknown_rule_exits_two(dirty_file, capsys):
    assert run_lint(str(dirty_file), "--select", "Z999") == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_path_exits_two(tmp_path, capsys):
    assert run_lint(str(tmp_path / "nope.py")) == 2
    assert "no such file" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Output formats and filters
# ----------------------------------------------------------------------


def test_json_payload_shape(dirty_file, capsys):
    assert run_lint(str(dirty_file), "--json") == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    assert len(payload["rules"]) >= 13
    (finding,) = payload["findings"]
    assert finding["rule"] == "D102"
    assert finding["line"] == 5
    assert finding["path"].endswith("dirty.py")


def test_list_rules(capsys):
    assert run_lint("--list-rules") == 0
    out = capsys.readouterr().out
    for rule_id in ("D101", "D107", "S201", "S204", "C301", "C302"):
        assert rule_id in out
    assert "repro: noqa" in out


def test_select_and_ignore(dirty_file, capsys):
    assert run_lint(str(dirty_file), "--select", "C") == 0
    capsys.readouterr()
    assert run_lint(str(dirty_file), "--ignore", "D102") == 0
    capsys.readouterr()
    assert run_lint(str(dirty_file), "--select", "D102") == 1


def test_baseline_round_trip(dirty_file, tmp_path, capsys):
    assert run_lint(str(dirty_file), "--json") == 1
    baseline = tmp_path / "baseline.json"
    baseline.write_text(capsys.readouterr().out)
    assert run_lint(str(dirty_file), "--baseline", str(baseline)) == 0
    assert capsys.readouterr().out.strip().endswith("0 findings")


def test_unreadable_baseline_exits_two(dirty_file, tmp_path, capsys):
    bad = tmp_path / "baseline.json"
    bad.write_text("not json")
    assert run_lint(str(dirty_file), "--baseline", str(bad)) == 2
    assert "baseline" in capsys.readouterr().err


def test_directory_walk_is_recursive_and_sorted(tmp_path, capsys):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "b.py").write_text(DIRTY)
    (tmp_path / "pkg" / "a.py").write_text("def key(obj):\n    return id(obj)\n")
    assert run_lint(str(tmp_path)) == 1
    lines = [line for line in capsys.readouterr().out.splitlines() if ": " in line]
    assert len(lines) == 2
    assert "a.py" in lines[0] and "b.py" in lines[1]


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def test_python_dash_m_repro_lint(dirty_file):
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", str(dirty_file)],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    assert "D102" in proc.stdout


@pytest.mark.skipif(shutil.which("repro") is None, reason="console script not installed")
def test_console_script_lint(clean_file):
    proc = subprocess.run(
        ["repro", "lint", str(clean_file)],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0
    assert "0 findings" in proc.stdout
