"""repro.engine.kernels vs the per-object Fig. 3 ADC — parity contract.

Deterministic quantities must match :class:`SawtoothAdc` bit for bit;
noiseless counting must match exactly; noisy counting is checked in
distribution (see test_engine_parity_edges.py for the edge decades).
"""

import numpy as np
import pytest

from repro.core.units import fF, ns
from repro.devices.capacitor import Capacitor
from repro.devices.comparator import Comparator
from repro.engine import kernels
from repro.pixel.pixel import DnaSensorPixel, PixelVariation
from repro.pixel.sawtooth_adc import SawtoothAdc

CURRENTS = np.logspace(-12.3, -6.8, 45)  # straddles the 1 pA - 100 nA window


@pytest.fixture
def adc():
    """Noiseless reference ADC with a realistic leakage floor."""
    return SawtoothAdc(leakage_a=2e-15)


def kernel_kwargs(adc):
    return {
        "cint_f": adc.cint.capacitance_f,
        "swing_v": adc.swing_v,
        "leakage_a": adc.leakage_a,
        "comparator_delay_s": adc.comparator.delay_s,
        "tau_delay_s": adc.tau_delay_s,
    }


class TestDeterministicParity:
    def test_ramp_time_bitwise(self, adc):
        ramp = kernels.ramp_time(CURRENTS, adc.cint.capacitance_f, adc.swing_v, adc.leakage_a)
        expected = [adc.ramp_time(float(i)) for i in CURRENTS]
        np.testing.assert_array_equal(ramp, expected)

    def test_cycle_period_and_frequency_bitwise(self, adc):
        kw = kernel_kwargs(adc)
        period = kernels.cycle_period(CURRENTS, *kw.values())
        freq = kernels.frequency(CURRENTS, *kw.values())
        np.testing.assert_array_equal(period, [adc.cycle_period(float(i)) for i in CURRENTS])
        np.testing.assert_array_equal(freq, [adc.frequency(float(i)) for i in CURRENTS])

    def test_ideal_frequency_bitwise(self, adc):
        ideal = kernels.ideal_frequency(CURRENTS, adc.cint.capacitance_f, adc.swing_v)
        np.testing.assert_array_equal(ideal, [adc.ideal_frequency(float(i)) for i in CURRENTS])

    def test_max_frequency(self, adc):
        assert kernels.max_frequency(adc.comparator.delay_s, adc.tau_delay_s) == adc.max_frequency()

    def test_inverse_transfer_bitwise(self, adc):
        frequencies = np.array([0.0, 10.0, 1e3, 1e5, 1e6])
        kw = kernel_kwargs(adc)
        estimate = kernels.current_from_frequency(frequencies, *kw.values())
        np.testing.assert_array_equal(
            estimate, [adc.current_from_frequency(float(f)) for f in frequencies]
        )

    def test_inverse_transfer_rejects_over_ceiling(self, adc):
        kw = kernel_kwargs(adc)
        over = 1.01 * adc.max_frequency()
        with pytest.raises(ValueError):
            kernels.current_from_frequency(np.array([10.0, over]), *kw.values())

    def test_never_firing_pixel_maps_to_inf_and_zero(self, adc):
        kw = kernel_kwargs(adc)
        ramp = kernels.ramp_time(1e-15, adc.cint.capacitance_f, adc.swing_v, adc.leakage_a)
        assert np.isinf(ramp)
        assert kernels.frequency(1e-15, *kw.values()) == 0.0
        # The object model raises instead; frequency() maps it to 0 too.
        assert adc.frequency(1e-15) == 0.0


class TestNoiselessCounting:
    @pytest.mark.parametrize("phase", [0.0, 0.25, 0.999, 1.0])
    def test_counts_bitwise_across_window(self, adc, phase):
        counts = kernels.count_in_frame(
            CURRENTS, 2.0, start_phase=phase, **kernel_kwargs(adc)
        )
        expected = [adc.count_in_frame(float(i), 2.0, start_phase=phase) for i in CURRENTS]
        assert counts.tolist() == expected

    def test_drawn_phase_is_reproducible(self, adc):
        kw = kernel_kwargs(adc)
        a = kernels.count_in_frame(CURRENTS, 1.0, rng=5, **kw)
        b = kernels.count_in_frame(CURRENTS, 1.0, rng=5, **kw)
        np.testing.assert_array_equal(a, b)

    def test_phase_array_broadcasts_against_scalar_parameters(self, adc):
        """A per-pixel start_phase array sets the output shape even when
        every ADC parameter is scalar."""
        phases = np.array([[0.0, 0.25], [0.5, 0.75]])
        counts = kernels.count_in_frame(1e-9, 1.0, start_phase=phases, **kernel_kwargs(adc))
        assert counts.shape == (2, 2)
        expected = [adc.count_in_frame(1e-9, 1.0, start_phase=float(p)) for p in phases.reshape(-1)]
        assert counts.reshape(-1).tolist() == expected

    def test_invalid_arguments(self, adc):
        kw = kernel_kwargs(adc)
        with pytest.raises(ValueError):
            kernels.count_in_frame(CURRENTS, 0.0, **kw)
        with pytest.raises(ValueError):
            kernels.count_in_frame(CURRENTS, 1.0, start_phase=1.5, **kw)

    def test_counter_saturation_matches_pixel_counter(self):
        """A deliberately narrow counter saturates identically in both
        models (PixelCounter holds at full scale)."""
        pixel = DnaSensorPixel(PixelVariation(), counter_bits=8)
        pixel.adc.comparator.noise_rms_v = 0.0
        counts = kernels.count_in_frame(
            np.array([50e-9]),
            1.0,
            start_phase=0.5,
            counter_bits=8,
            cint_f=pixel.adc.cint.capacitance_f,
            swing_v=pixel.adc.swing_v,
            leakage_a=pixel.adc.leakage_a,
            comparator_delay_s=pixel.adc.comparator.delay_s,
            tau_delay_s=pixel.adc.tau_delay_s,
        )
        assert counts[0] == 255 == pixel.convert_current(50e-9, 1.0, rng=1)

    def test_saturate_counts_validation(self):
        with pytest.raises(ValueError):
            kernels.saturate_counts(np.array([1]), 65)
        with pytest.raises(ValueError):
            kernels.saturate_counts(np.array([1]), 0)

    def test_wide_counters_accept_pixel_counter_range(self):
        """Widths up to PixelCounter's 64-bit limit pass through: an
        int64 count can never reach a >= 63-bit full scale."""
        big = np.array([np.iinfo(np.int64).max])
        np.testing.assert_array_equal(kernels.saturate_counts(big, 64), big)
        np.testing.assert_array_equal(kernels.saturate_counts(big, 63), big)
        np.testing.assert_array_equal(kernels.saturate_counts(big, 62), [(1 << 62) - 1])


class TestHostSideKernels:
    def test_host_current_estimate_bitwise(self):
        variation = PixelVariation(comparator_offset_v=0.004, cint_relative_error=-0.02,
                                   leakage_a=1e-15)
        pixel = DnaSensorPixel(variation)
        pixel.gain_correction = 1.0173
        counts = np.arange(0, 5000, 37)
        nominal = pixel.adc.cint.capacitance_f / (1.0 + variation.cint_relative_error)
        estimate = kernels.host_current_estimate(
            counts, 0.5, nominal, pixel.gain_correction
        )
        expected = [pixel.current_estimate(int(c), 0.5) for c in counts]
        np.testing.assert_array_equal(estimate, expected)

    def test_host_current_estimate_validation(self):
        with pytest.raises(ValueError):
            kernels.host_current_estimate(np.array([1]), 0.0, 100 * fF)
        with pytest.raises(ValueError):
            kernels.host_current_estimate(np.array([-1]), 1.0, 100 * fF)

    def test_calibration_corrections_match_pixel_calibrate(self):
        variation = PixelVariation(comparator_offset_v=-0.006, cint_relative_error=0.03)
        i_ref = 8e-9
        frame = 0.05
        probe = DnaSensorPixel(variation)
        count = probe.convert_current(i_ref, frame, rng=5)
        fresh = DnaSensorPixel(variation)
        fresh.calibrate(i_ref, frame, rng=5)
        correction = kernels.calibration_corrections(
            np.array([count]), i_ref, frame, fresh.adc.dead_time()
        )
        assert correction[0] == fresh.gain_correction

    def test_calibration_rejects_zero_counts_and_bad_reference(self):
        with pytest.raises(ValueError, match="no counts"):
            kernels.calibration_corrections(np.array([10, 0]), 1e-9, 0.05, 150 * ns)
        with pytest.raises(ValueError, match="positive"):
            kernels.calibration_corrections(np.array([10]), 0.0, 0.05, 150 * ns)

    def test_dead_pixel_mask_matches_is_dead(self):
        leakages = np.array([0.0, 2e-15, 0.99e-12, 1e-12, 10e-12])
        mask = kernels.dead_pixel_mask(leakages)
        expected = []
        for leak in leakages:
            pixel = DnaSensorPixel(PixelVariation(leakage_a=float(leak)))
            expected.append(pixel.is_dead())
        assert mask.tolist() == expected

    def test_sensor_currents_bitwise(self):
        from repro.core.units import FARADAY
        from repro.electrochem.redox_cycling import RedoxCyclingSensor

        sensor = RedoxCyclingSensor()
        conc = np.array([0.0, 1e-6, 5e-4, 2e-3])
        species = sensor.species
        currents = kernels.sensor_currents(
            conc,
            species.electrons_transferred * FARADAY * species.diffusion_coefficient,
            sensor.electrode.geometry_factor(),
            sensor.background_current,
        )
        np.testing.assert_array_equal(currents, [sensor.current(float(c)) for c in conc])
        # Mis-biased chips read background only.
        misbiased = kernels.sensor_currents(
            conc,
            species.electrons_transferred * FARADAY * species.diffusion_coefficient,
            sensor.electrode.geometry_factor(),
            sensor.background_current,
            bias_ok=False,
        )
        np.testing.assert_array_equal(misbiased, np.full_like(conc, sensor.background_current))


class TestNoisyCountingDistribution:
    def test_gaussian_jitter_stays_within_budget(self):
        """Noisy counts sit within the accumulated-jitter envelope of
        the noiseless count (the documented cross-backend tolerance)."""
        comparator = Comparator(threshold_v=1.0, delay_s=50 * ns, noise_rms_v=0.002)
        adc = SawtoothAdc(comparator=comparator, leakage_a=2e-15)
        kw = kernel_kwargs(adc)
        currents = np.logspace(-11, -7, 30)
        sigma = kernels.count_noise_sigma(currents, 1.0, **kw, noise_rms_v=0.002)
        noiseless = kernels.count_in_frame(currents, 1.0, start_phase=0.5, **kw)
        noisy = kernels.count_in_frame(
            currents, 1.0, start_phase=0.5, noise_rms_v=0.002, rng=9, **kw
        )
        budget = 1 + np.ceil(8 * sigma)
        assert np.all(np.abs(noisy - noiseless) <= budget)

    def test_object_model_within_same_budget(self):
        comparator = Comparator(threshold_v=1.0, delay_s=50 * ns, noise_rms_v=0.002)
        adc = SawtoothAdc(comparator=comparator, leakage_a=2e-15)
        kw = kernel_kwargs(adc)
        currents = np.logspace(-11, -7, 12)
        sigma = kernels.count_noise_sigma(currents, 1.0, **kw, noise_rms_v=0.002)
        noiseless = kernels.count_in_frame(currents, 1.0, start_phase=0.5, **kw)
        budget = 1 + np.ceil(8 * sigma)
        rng = np.random.default_rng(3)
        counts = [adc.count_in_frame(float(i), 1.0, rng=rng) for i in currents]
        assert np.all(np.abs(np.asarray(counts) - noiseless) <= budget)
