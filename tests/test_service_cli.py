"""CLI surface of the service: sweep --cache-dir/--resume, serve, submit."""

import json

import pytest

from repro.campaigns import CampaignSpec
from repro.cli import main
from repro.experiments import DnaAssaySpec
from repro.service import start_server

BASE = DnaAssaySpec(probe_count=4, replicates=4, target_subset=(0, 1))
CAMPAIGN = CampaignSpec(
    base=BASE, grid={"concentration": (1e-7, 1e-6)}, replicates=2, name="cli-service"
)


@pytest.fixture()
def campaign_file(tmp_path):
    path = tmp_path / "campaign.json"
    path.write_text(json.dumps(CAMPAIGN.to_dict()))
    return str(path)


# ---------------------------------------------------------------------------
# sweep --cache-dir
# ---------------------------------------------------------------------------
def test_sweep_cache_dir_cold_then_warm(campaign_file, tmp_path, capsys):
    cache = str(tmp_path / "cache")
    assert main(["sweep", "--campaign", campaign_file, "--seed", "1",
                 "--cache-dir", cache, "--json"]) == 0
    cold = json.loads(capsys.readouterr().out)
    assert cold["cache"]["computed"] == 4
    assert main(["sweep", "--campaign", campaign_file, "--seed", "1",
                 "--cache-dir", cache, "--json"]) == 0
    warm = json.loads(capsys.readouterr().out)
    assert warm["cache"]["hits"] == 4
    assert warm["cache"]["computed"] == 0
    assert warm["points"][0]["metrics"] == cold["points"][0]["metrics"]


def test_sweep_table_mentions_cache_accounting(campaign_file, tmp_path, capsys):
    assert main(["sweep", "--campaign", campaign_file, "--seed", "1",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    out = capsys.readouterr().out
    assert "cache: 0 hits, 4 computed" in out


# ---------------------------------------------------------------------------
# sweep --resume
# ---------------------------------------------------------------------------
def test_sweep_resume_finishes_a_partial_directory(campaign_file, tmp_path, capsys):
    out = tmp_path / "run"
    assert main(["sweep", "--campaign", campaign_file, "--seed", "1",
                 "--out", str(out)]) == 0
    capsys.readouterr()
    # Fake an interruption: drop the manifest and the last two lines.
    (out / "manifest.json").unlink()
    lines = (out / "results.jsonl").read_text().splitlines(True)
    (out / "results.jsonl").write_text("".join(lines[:2]))
    assert main(["sweep", "--resume", str(out)]) == 0
    text = capsys.readouterr().out
    assert "2 points already done, 2 executed now" in text
    manifest = json.loads((out / "manifest.json").read_text())
    assert manifest["resumed"] == {"previously_completed": 2, "executed": 2}


def test_sweep_resume_rejects_conflicting_flags(campaign_file, tmp_path):
    with pytest.raises(SystemExit, match="--campaign"):
        main(["sweep", "--resume", str(tmp_path), "--campaign", campaign_file])
    with pytest.raises(SystemExit, match="--seed"):
        main(["sweep", "--resume", str(tmp_path), "--seed", "7"])


def test_sweep_resume_on_a_finished_directory_fails_cleanly(campaign_file, tmp_path):
    out = tmp_path / "run"
    assert main(["sweep", "--campaign", campaign_file, "--seed", "1",
                 "--out", str(out)]) == 0
    with pytest.raises(SystemExit, match="nothing to resume"):
        main(["sweep", "--resume", str(out)])


def test_sweep_resume_version_mismatch_needs_ignore_version(campaign_file, tmp_path, capsys):
    out = tmp_path / "run"
    assert main(["sweep", "--campaign", campaign_file, "--seed", "1",
                 "--out", str(out)]) == 0
    capsys.readouterr()
    (out / "manifest.json").unlink()
    sidecar = json.loads((out / "campaign.json").read_text())
    sidecar["version"] = "0.0.0-elsewhere"
    (out / "campaign.json").write_text(json.dumps(sidecar))
    with pytest.raises(SystemExit, match="--ignore-version"):
        main(["sweep", "--resume", str(out)])
    assert main(["sweep", "--resume", str(out), "--ignore-version"]) == 0
    manifest = json.loads((out / "manifest.json").read_text())
    assert manifest["resumed"]["sidecar_version"] == "0.0.0-elsewhere"


def test_sweep_ignore_version_requires_resume(campaign_file):
    with pytest.raises(SystemExit, match="--ignore-version"):
        main(["sweep", "--campaign", campaign_file, "--ignore-version"])


def test_sweep_resume_missing_sidecar_fails_cleanly(tmp_path):
    (tmp_path / "orphan").mkdir()
    (tmp_path / "orphan" / "results.jsonl").write_text("")
    with pytest.raises(SystemExit, match="campaign.json"):
        main(["sweep", "--resume", str(tmp_path / "orphan")])


# ---------------------------------------------------------------------------
# submit (against a live server)
# ---------------------------------------------------------------------------
@pytest.fixture()
def service_url(tmp_path):
    server, thread = start_server(port=0, cache=tmp_path / "cache")
    yield server.url
    server.shutdown()
    server.server_close()
    server.manager.shutdown()
    thread.join(timeout=10)


def test_submit_wait_prints_status_line(campaign_file, service_url, capsys):
    assert main(["submit", "--campaign", campaign_file, "--seed", "1",
                 "--url", service_url, "--wait"]) == 0
    out = capsys.readouterr().out
    assert "done (4/4 points)" in out
    assert main(["submit", "--campaign", campaign_file, "--seed", "1",
                 "--url", service_url, "--wait", "--json"]) == 0
    status = json.loads(capsys.readouterr().out)
    assert status["status"] == "done"
    assert status["cache"]["hits"] == 4


def test_submit_unreachable_server_fails_cleanly(campaign_file):
    with pytest.raises(SystemExit, match="cannot reach"):
        main(["submit", "--campaign", campaign_file,
              "--url", "http://127.0.0.1:1", "--wait"])


def test_submit_rejects_async_executor(campaign_file, service_url, capsys):
    with pytest.raises(SystemExit):
        main(["submit", "--campaign", campaign_file, "--url", service_url,
              "--executor", "async"])
    assert "invalid choice" in capsys.readouterr().err
