"""repro.engine neuro kernels/params/chip vs the object models.

Parity contract (see repro.engine.neuro_kernels): construction draws
and the template-AP recording path are bit-identical; the batched HH
integration matches to floating-point accumulation error with exact
spike times; detection kernels are bit-identical on equal traces.
"""

import numpy as np
import pytest

from repro.chip.neuro_chip import NeuralRecordingChip
from repro.core.rng import spawn_children
from repro.core.signals import Trace
from repro.engine import NeuroArrayParams, VectorizedNeuroChip, neuro_kernels
from repro.neuro.action_potential import (
    HodgkinHuxleyNeuron,
    StimulusProtocol,
)
from repro.neuro.array import NeuralArrayModel
from repro.neuro.culture import ArrayGeometry, Culture
from repro.neuro.spike_detection import detect_spikes, mad_noise_estimate


GEOMETRY = ArrayGeometry(16, 16, 7.8e-6)


class TestNeuroArrayParams:
    def test_single_chip_draw_is_bit_identical_to_object_model(self):
        model = NeuralArrayModel(GEOMETRY, rng=np.random.default_rng(5))
        params = NeuroArrayParams.draw(16, 16, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(params.vth[0], model.vth)
        np.testing.assert_array_equal(params.beta[0], model.beta)
        np.testing.assert_array_equal(params.i_m2[0], model.i_m2)
        np.testing.assert_array_equal(params.ktc_draws[0], model._ktc_draws)
        np.testing.assert_array_equal(params.injection_draws[0], model._injection_draws)

    def test_calibrate_droop_and_currents_match_object_model(self):
        model = NeuralArrayModel(GEOMETRY, rng=np.random.default_rng(7))
        params = NeuroArrayParams.draw(16, 16, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(params.calibrate()[0], model.calibrate())
        model.droop(1e-3)
        params.droop(1e-3)
        np.testing.assert_array_equal(params.stored_vgs[0], model.stored_vgs)
        np.testing.assert_array_equal(
            params.pixel_currents(2e-4)[0], model.pixel_currents(2e-4)
        )
        np.testing.assert_array_equal(params.offset_currents()[0], model.offset_currents())
        np.testing.assert_array_equal(
            params.uncalibrated_offset_currents()[0], model.uncalibrated_offset_currents()
        )
        np.testing.assert_array_equal(
            params.input_referred_offsets()[0], model.input_referred_offsets()
        )

    def test_batch_draw_matches_object_models_built_from_children(self):
        params = NeuroArrayParams.draw(8, 8, rng=np.random.default_rng(3), n_chips=3)
        children = spawn_children(np.random.default_rng(3), 3)
        for chip, child in enumerate(children):
            model = NeuralArrayModel(ArrayGeometry(8, 8, 7.8e-6), rng=child)
            np.testing.assert_array_equal(params.vth[chip], model.vth)
            np.testing.assert_array_equal(params.i_m2[chip], model.i_m2)

    def test_batched_calibration_uses_each_chips_own_typical_voltage(self):
        params = NeuroArrayParams.draw(8, 8, rng=np.random.default_rng(4), n_chips=2)
        stored = params.calibrate()
        children = spawn_children(np.random.default_rng(4), 2)
        for chip, child in enumerate(children):
            model = NeuralArrayModel(ArrayGeometry(8, 8, 7.8e-6), rng=child)
            np.testing.assert_array_equal(stored[chip], model.calibrate())

    def test_stack_and_from_array_model(self):
        a = NeuroArrayParams.draw(8, 8, rng=1)
        b = NeuroArrayParams.draw(8, 8, rng=2)
        stacked = NeuroArrayParams.stack([a, b])
        assert stacked.shape == (2, 8, 8)
        np.testing.assert_array_equal(stacked.vth[1], b.vth[0])
        model = NeuralArrayModel(ArrayGeometry(8, 8, 7.8e-6), rng=9)
        model.calibrate()
        wrapped = NeuroArrayParams.from_array_model(model)
        np.testing.assert_array_equal(wrapped.stored_vgs[0], model.stored_vgs)
        wrapped.droop(1.0)  # copies: must not touch the source model
        assert not np.array_equal(wrapped.stored_vgs[0], model.stored_vgs)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="n_chips, rows, cols"):
            NeuroArrayParams(
                vth=np.zeros((4, 4)),
                beta=np.ones((4, 4)),
                i_m2=np.ones((4, 4)),
                ktc_draws=np.zeros((4, 4)),
                injection_draws=np.zeros((4, 4)),
            )
        with pytest.raises(RuntimeError, match="calibrated"):
            NeuroArrayParams.draw(4, 4, rng=1).droop(1.0)


class TestHHBatch:
    def test_matches_object_integration_per_neuron(self):
        stimuli = [
            StimulusProtocol.single_pulse(),
            StimulusProtocol(pulses=[(1e-3, 0.5e-3, 40.0), (12e-3, 0.5e-3, 40.0)]),
        ]
        batch = neuro_kernels.hh_batch(stimuli, duration_s=0.03, dt_s=20e-6)
        for index, stimulus in enumerate(stimuli):
            reference = HodgkinHuxleyNeuron().simulate(0.03, dt_s=20e-6, stimulus=stimulus)
            np.testing.assert_allclose(
                batch.membrane_v[index],
                reference.membrane_voltage.samples,
                rtol=0,
                atol=1e-9,
            )
            np.testing.assert_allclose(
                batch.ionic_a_m2[index],
                reference.ionic_current_density.samples,
                rtol=0,
                atol=1e-8,
            )
            np.testing.assert_allclose(
                batch.capacitive_a_m2[index],
                reference.capacitive_current_density.samples,
                rtol=0,
                atol=1e-8,
            )
            np.testing.assert_array_equal(batch.spike_times[index], reference.spike_times)

    def test_batch_size_invariance(self):
        """Rows of a large batch equal a one-neuron batch bitwise — the
        property the campaign fast path's union batching rests on."""
        stimuli = [
            StimulusProtocol.spike_train(30.0, 0.02, rng=np.random.default_rng(i))
            for i in range(5)
        ]
        union = neuro_kernels.hh_batch(stimuli, duration_s=0.02, dt_s=20e-6)
        alone = neuro_kernels.hh_batch([stimuli[3]], duration_s=0.02, dt_s=20e-6)
        np.testing.assert_array_equal(union.membrane_v[3], alone.membrane_v[0])
        np.testing.assert_array_equal(union.ionic_a_m2[3], alone.ionic_a_m2[0])
        sub = union.subset(np.asarray([3]))
        np.testing.assert_array_equal(sub.membrane_v[0], alone.membrane_v[0])
        np.testing.assert_array_equal(sub.spike_times[0], alone.spike_times[0])

    def test_empty_batch(self):
        batch = neuro_kernels.hh_batch([], duration_s=0.01, dt_s=20e-6)
        assert batch.n_neurons == 0
        assert batch.membrane_v.shape == (0, 500)
        assert batch.spike_times == []

    def test_rejects_bad_grid(self):
        with pytest.raises(ValueError):
            neuro_kernels.hh_batch([], duration_s=0.0)


class TestWaveformSampling:
    def test_gather_reproduces_np_interp_bitwise(self):
        rng = np.random.default_rng(11)
        dt = 20e-6
        waveforms = rng.normal(size=(3, 400))
        grid = np.arange(400) * dt
        # Random offsets including exact grid hits and out-of-range times.
        times = np.concatenate(
            [
                rng.uniform(-2 * dt, 400 * dt * 1.1, size=96),
                grid[:3],
                [grid[-1], grid[-1] + dt],
            ]
        )[None, :].repeat(3, axis=0)
        values = neuro_kernels.sample_waveform_tables(
            waveforms, dt, np.arange(3), times
        )
        for row in range(3):
            expected = np.interp(times[row], grid, waveforms[row], left=0.0, right=0.0)
            np.testing.assert_array_equal(values[row], expected)

    def test_single_sample_waveform(self):
        values = neuro_kernels.sample_waveform_tables(
            np.asarray([[2.5]]), 1e-3, np.asarray([0]), np.asarray([[0.0, 1e-3]])
        )
        np.testing.assert_array_equal(values, [[2.5, 0.0]])

    def test_synthesize_matches_object_record_bitwise(self):
        culture = Culture.random(4, GEOMETRY, diameter_range=(20e-6, 60e-6), rng=3)
        model = NeuralArrayModel(GEOMETRY, rng=1)
        model.calibrate()
        dt = 20e-6
        rng = np.random.default_rng(8)
        traces = {
            neuron.index: Trace(rng.normal(scale=1e-4, size=2500), dt)
            for neuron in culture.neurons
        }
        movie = model.record(culture, traces, n_frames=100, frame_rate_hz=2000.0)
        tables = np.stack([traces[n.index].samples for n in culture.neurons])
        pair_rows, pair_cols, pair_waves = neuro_kernels.coverage_pairs(culture)
        frames = neuro_kernels.synthesize_frames(
            tables, dt, pair_rows, pair_cols, pair_waves, 100, 2000.0, 16, 16
        )
        np.testing.assert_array_equal(frames, movie.frames)

    def test_synthesize_empty_culture(self):
        frames = neuro_kernels.synthesize_frames(
            np.zeros((0, 10)), 1e-3, [], [], [], 5, 2000.0, 4, 4
        )
        np.testing.assert_array_equal(frames, np.zeros((5, 4, 4)))


class TestTemplateTables:
    def test_matches_object_template_branch_bitwise(self):
        geometry = ArrayGeometry(16, 16, 7.8e-6)
        chip = NeuralRecordingChip(geometry=geometry, rng=1)
        chip.calibrate()
        culture = Culture.random(3, geometry, diameter_range=(30e-6, 60e-6), rng=2)
        recording = chip.record_culture(
            culture, duration_s=0.05, firing_rate_hz=40.0, rng=3, use_hh=False
        )
        vchip = VectorizedNeuroChip(geometry=geometry, rng=1)
        vchip.calibrate()
        vrec = vchip.record_culture(
            culture, duration_s=0.05, firing_rate_hz=40.0, rng=3, use_hh=False
        )
        np.testing.assert_array_equal(
            vrec.electrode_movie.frames, recording.electrode_movie.frames
        )
        np.testing.assert_array_equal(
            vrec.output_movie.frames, recording.output_movie.frames
        )
        for index, truth in recording.ground_truth.items():
            np.testing.assert_array_equal(vrec.ground_truth[index], truth)


class TestChainAndDetection:
    def test_chain_transfer_matches_object_chip(self):
        chip = NeuralRecordingChip(geometry=GEOMETRY, rng=6)
        chip.calibrate()
        frames = np.random.default_rng(1).normal(scale=2e-3, size=(20, 16, 16))
        expected = chip._apply_chain_gain(frames)
        coupling = chip.array.design.coupling_factor
        gains = [c.chain.actual_gain * coupling for c in chip.channels]
        rails = [c.chain.stages[-1].rail_high for c in chip.channels]
        out = neuro_kernels.apply_chain_transfer(frames, gains, rails, chip.scan.mux_depth)
        np.testing.assert_array_equal(out, expected)
        assert np.any(np.abs(out) == rails[0])  # mV-scale inputs do clip

    def test_chain_transfer_rejects_mismatched_columns(self):
        with pytest.raises(ValueError, match="columns"):
            neuro_kernels.apply_chain_transfer(np.zeros((2, 4, 6)), [1.0], [1.0], 4)

    def test_detect_spikes_matrix_matches_scalar_detector(self):
        rng = np.random.default_rng(9)
        dt = 5e-4
        traces = rng.normal(scale=1e-5, size=(6, 400))
        spikes = np.zeros(400)
        spikes[[50, 51, 200]] = 4e-4
        traces[2] += spikes
        traces[4] -= spikes
        matrix = neuro_kernels.detect_spikes_matrix(traces, dt, threshold_sigma=4.5)
        sigmas = neuro_kernels.mad_sigma_matrix(traces)
        for row in range(6):
            trace = Trace(traces[row], dt)
            np.testing.assert_array_equal(
                matrix[row], detect_spikes(trace, threshold_sigma=4.5)
            )
            assert sigmas[row] == mad_noise_estimate(trace)

    def test_detect_spikes_matrix_polarities_and_validation(self):
        traces = np.zeros((1, 50))
        traces[0, 20] = 1.0
        assert len(neuro_kernels.detect_spikes_matrix(traces, 1e-3, polarity="pos")[0]) == 1
        assert len(neuro_kernels.detect_spikes_matrix(traces, 1e-3, polarity="neg")[0]) == 0
        with pytest.raises(ValueError, match="polarity"):
            neuro_kernels.detect_spikes_matrix(traces, 1e-3, polarity="up")
        with pytest.raises(ValueError, match="threshold"):
            neuro_kernels.detect_spikes_matrix(traces, 1e-3, threshold_sigma=0.0)


class TestVectorizedNeuroChip:
    def test_construction_parity_with_object_chip(self):
        chip = NeuralRecordingChip(geometry=GEOMETRY, rng=21)
        vchip = VectorizedNeuroChip(geometry=GEOMETRY, rng=21)
        np.testing.assert_array_equal(vchip.params.vth[0], chip.array.vth)
        np.testing.assert_array_equal(vchip.params.beta[0], chip.array.beta)
        assert vchip.input_referred_noise_v() == chip.input_referred_noise_v()
        assert [c.chain.actual_gain for c in vchip.channels] == [
            c.chain.actual_gain for c in chip.channels
        ]
        assert vchip.timing_report() == chip.timing_report()
        chip.calibrate()
        vchip.calibrate()
        np.testing.assert_array_equal(vchip.params.stored_vgs[0], chip.array.stored_vgs)

    def test_record_requires_calibration_and_positive_duration(self):
        vchip = VectorizedNeuroChip(geometry=GEOMETRY, rng=1)
        culture = Culture.random(1, GEOMETRY, rng=2)
        with pytest.raises(RuntimeError, match="calibrate"):
            vchip.record_culture(culture, duration_s=0.01)
        vchip.calibrate()
        with pytest.raises(ValueError, match="duration"):
            vchip.record_culture(culture, duration_s=0.0)
