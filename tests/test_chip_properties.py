"""Hypothesis property tests on chip-level invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chip.registers import dna_chip_registers
from repro.chip.sequencer import ScanTiming
from repro.pixel.sawtooth_adc import SawtoothAdc


class TestScanTimingProperties:
    @given(
        rows=st.integers(min_value=1, max_value=256),
        mux=st.integers(min_value=1, max_value=16),
        channels=st.integers(min_value=1, max_value=32),
        rate=st.floats(min_value=1.0, max_value=1e5),
    )
    @settings(max_examples=60, deadline=None)
    def test_timing_identities(self, rows, mux, channels, rate):
        cols = mux * channels
        timing = ScanTiming(rows=rows, cols=cols, channels=channels, frame_rate_hz=rate)
        # Slot * mux * rows = frame time (the scan covers the array).
        assert timing.slot_time_s * timing.mux_depth * rows == pytest.approx(
            timing.frame_time_s, rel=1e-9
        )
        # Aggregate rate = all pixels per frame x frame rate.
        assert timing.aggregate_pixel_rate_hz == pytest.approx(
            rows * cols * rate, rel=1e-9
        )

    @given(
        rows=st.integers(min_value=2, max_value=64),
        mux=st.integers(min_value=1, max_value=8),
        channels=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_pixel_order_is_a_permutation(self, rows, mux, channels):
        cols = mux * channels
        timing = ScanTiming(rows=rows, cols=cols, channels=channels, frame_rate_hz=100.0)
        order = timing.pixel_order()
        assert len(order) == rows * cols
        assert len(set(order)) == rows * cols
        assert all(0 <= r < rows and 0 <= c < cols for r, c in order)

    @given(
        rows=st.integers(min_value=1, max_value=64),
        mux=st.integers(min_value=1, max_value=8),
        channels=st.integers(min_value=1, max_value=8),
        rate=st.floats(min_value=10.0, max_value=1e4),
    )
    @settings(max_examples=40, deadline=None)
    def test_sample_times_inside_frame(self, rows, mux, channels, rate):
        cols = mux * channels
        timing = ScanTiming(rows=rows, cols=cols, channels=channels, frame_rate_hz=rate)
        assert timing.sample_time_s(rows - 1, cols - 1) < timing.frame_time_s


class TestRegisterProperties:
    @given(
        value=st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=40, deadline=None)
    def test_write_read_roundtrip(self, value):
        regs = dna_chip_registers()
        regs.write("generator_dac", value)
        assert regs.read("generator_dac") == value

    @given(value=st.integers(min_value=16, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_oversized_writes_always_rejected(self, value):
        regs = dna_chip_registers()
        with pytest.raises(ValueError):
            regs.write("frame_exponent", value)  # 4-bit register


class TestAdcProperties:
    @given(
        exp_a=st.floats(min_value=-12, max_value=-7.2),
        exp_b=st.floats(min_value=-12, max_value=-7.2),
    )
    @settings(max_examples=60, deadline=None)
    def test_frequency_order_preserved(self, exp_a, exp_b):
        adc = SawtoothAdc()
        ia, ib = 10.0**exp_a, 10.0**exp_b
        fa, fb = adc.frequency(ia), adc.frequency(ib)
        if ia < ib:
            assert fa <= fb
        elif ia > ib:
            assert fa >= fb

    @given(exp=st.floats(min_value=-12, max_value=-8))
    @settings(max_examples=40, deadline=None)
    def test_inverse_transfer_is_true_inverse(self, exp):
        adc = SawtoothAdc()
        current = 10.0**exp
        assert adc.current_from_frequency(adc.frequency(current)) == pytest.approx(
            current, rel=1e-9
        )

    @given(
        exp=st.floats(min_value=-11, max_value=-8),
        frame=st.floats(min_value=0.5, max_value=8.0),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=40, deadline=None)
    def test_count_rate_tracks_frequency(self, exp, frame, seed):
        adc = SawtoothAdc()
        current = 10.0**exp
        count = adc.count_in_frame(current, frame, rng=seed)
        expected = adc.frequency(current) * frame
        assert count == pytest.approx(expected, abs=max(2.0, 0.05 * expected))
