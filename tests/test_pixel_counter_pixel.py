"""Pixel counter/shift register and the integrated DNA sensor pixel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pixel.counter import PixelCounter, required_bits
from repro.pixel.pixel import DnaSensorPixel, PixelVariation


class TestCounter:
    def test_counts(self):
        counter = PixelCounter(bits=8)
        counter.clock(5)
        counter.clock(3)
        assert counter.value == 8

    def test_saturating_overflow(self):
        counter = PixelCounter(bits=4, saturate=True)
        counter.clock(100)
        assert counter.value == 15
        assert counter.overflowed

    def test_wrapping_overflow(self):
        counter = PixelCounter(bits=4, saturate=False)
        counter.clock(18)
        assert counter.value == 2
        assert counter.overflowed

    def test_reset(self):
        counter = PixelCounter(bits=8)
        counter.clock(10)
        counter.reset()
        assert counter.value == 0
        assert not counter.overflowed

    def test_negative_pulses_rejected(self):
        with pytest.raises(ValueError):
            PixelCounter().clock(-1)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            PixelCounter(bits=0)

    def test_bits_roundtrip(self):
        counter = PixelCounter(bits=12)
        counter.clock(1234)
        rebuilt = PixelCounter.from_bits(counter.to_bits())
        assert rebuilt.value == 1234

    @given(value=st.integers(min_value=0, max_value=2**20 - 1))
    @settings(max_examples=60, deadline=None)
    def test_bits_roundtrip_property(self, value):
        counter = PixelCounter(bits=20)
        counter.clock(value)
        assert PixelCounter.from_bits(counter.to_bits()).value == value

    def test_from_bits_validates(self):
        with pytest.raises(ValueError):
            PixelCounter.from_bits([0, 1, 2])
        with pytest.raises(ValueError):
            PixelCounter.from_bits([])

    def test_shift_out_sequence(self):
        counter = PixelCounter(bits=4)
        counter.clock(0b1010)
        bits = []
        for _ in range(4):
            msb, _ = counter.shift_out()
            bits.append(msb)
        assert bits == [1, 0, 1, 0]

    def test_shift_in_bit(self):
        counter = PixelCounter(bits=4)
        counter.shift_out(incoming=1)
        assert counter.value & 1 == 1

    def test_shift_invalid_bit(self):
        with pytest.raises(ValueError):
            PixelCounter().shift_out(incoming=2)

    def test_required_bits(self):
        # 1 MHz for 1 s -> ~2^20.
        assert required_bits(1e6, 1.0) == 20
        assert required_bits(10.0, 1.0) == 4

    def test_required_bits_invalid(self):
        with pytest.raises(ValueError):
            required_bits(0.0, 1.0)


class TestPixelVariation:
    def test_draw_reproducible(self):
        a = PixelVariation.draw(rng=5)
        b = PixelVariation.draw(rng=5)
        assert a.comparator_offset_v == b.comparator_offset_v

    def test_draw_spreads(self):
        offsets = [PixelVariation.draw(rng=i).comparator_offset_v for i in range(50)]
        assert min(offsets) < 0 < max(offsets)

    def test_leakage_non_negative(self):
        for i in range(20):
            assert PixelVariation.draw(rng=i).leakage_a >= 0


class TestDnaSensorPixel:
    def test_conversion_close_to_nominal(self):
        pixel = DnaSensorPixel()  # no variation
        count = pixel.convert_current(1e-9, 1.0, rng=1)
        assert count == pytest.approx(1e-9 / (100e-15 * 1.0), rel=0.02)

    def test_variation_shifts_counts(self):
        nominal = DnaSensorPixel()
        varied = DnaSensorPixel(PixelVariation(comparator_offset_v=0.05, cint_relative_error=0.05))
        c_nom = nominal.convert_current(1e-9, 1.0, rng=1)
        c_var = varied.convert_current(1e-9, 1.0, rng=1)
        assert c_var != c_nom

    def test_calibration_corrects_gain(self):
        pixel = DnaSensorPixel(PixelVariation(cint_relative_error=0.05), counter_bits=24)
        pixel.calibrate(1e-8, 1.0, rng=2)
        count = pixel.convert_current(1e-9, 1.0, rng=3)
        estimate = pixel.current_estimate(count, 1.0)
        assert estimate == pytest.approx(1e-9, rel=0.01)

    def test_calibration_needs_counts(self):
        pixel = DnaSensorPixel()
        with pytest.raises(ValueError):
            pixel.calibrate(1e-18, 0.001, rng=1)  # too small to fire

    def test_measure_concentration_path(self):
        pixel = DnaSensorPixel()
        count = pixel.measure_concentration(0.01, 1.0, rng=4)
        assert count > 0

    def test_current_estimate_validation(self):
        pixel = DnaSensorPixel()
        with pytest.raises(ValueError):
            pixel.current_estimate(-1, 1.0)
        with pytest.raises(ValueError):
            pixel.current_estimate(10, 0.0)

    def test_dead_pixel_flag(self):
        healthy = DnaSensorPixel()
        sick = DnaSensorPixel(PixelVariation(leakage_a=10e-12))
        assert not healthy.is_dead()
        assert sick.is_dead()

    def test_counter_saturation_guard(self):
        pixel = DnaSensorPixel(counter_bits=8)
        count = pixel.convert_current(100e-9, 1.0, rng=5)
        assert count == pixel.counter.full_scale
        assert pixel.counter.overflowed
