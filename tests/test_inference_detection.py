"""Hybridization calling: ROC/AUC, thresholds, match/mismatch splits."""

import numpy as np
import pytest

from repro.inference import (
    auc_score,
    bootstrap_auc,
    match_mismatch_scores,
    operating_point,
    roc_curve,
    separation_stats,
)


@pytest.fixture(scope="module")
def overlapping():
    rng = np.random.default_rng(11)
    return rng.normal(2.0, 1.0, 300), rng.normal(0.0, 1.0, 500)


class TestRocCurve:
    def test_perfect_separation(self):
        roc = roc_curve([10.0, 11.0, 12.0], [1.0, 2.0, 3.0])
        assert roc.auc == pytest.approx(1.0)
        assert roc.tpr[-1] == 1.0 and roc.fpr[-1] == 1.0
        assert roc.tpr[0] == 0.0 and roc.fpr[0] == 0.0

    def test_useless_scores(self):
        roc = roc_curve([1.0, 1.0], [1.0, 1.0])
        assert roc.auc == pytest.approx(0.5)

    def test_monotone_and_matches_mann_whitney(self, overlapping):
        pos, neg = overlapping
        roc = roc_curve(pos, neg)
        assert np.all(np.diff(roc.fpr) >= 0)
        assert np.all(np.diff(roc.tpr) >= 0)
        assert roc.auc == pytest.approx(auc_score(pos, neg), abs=1e-12)

    def test_counts(self, overlapping):
        pos, neg = overlapping
        roc = roc_curve(pos, neg)
        assert roc.n_pos == 300 and roc.n_neg == 500

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            roc_curve([], [1.0])


class TestAucScore:
    def test_ties_average(self):
        # All scores equal: AUC must be exactly 1/2, not sort-order noise.
        assert auc_score([5.0, 5.0, 5.0], [5.0, 5.0]) == pytest.approx(0.5)

    def test_orientation(self, overlapping):
        pos, neg = overlapping
        assert auc_score(pos, neg) > 0.8
        assert auc_score(neg, pos) == pytest.approx(1.0 - auc_score(pos, neg))


class TestOperatingPoint:
    def test_zero_fpr_target(self, overlapping):
        pos, neg = overlapping
        op = operating_point(roc_curve(pos, neg), target_fpr=0.0)
        assert op.fpr == 0.0
        assert op.threshold > float(np.max(neg)) or op.tpr == 0.0

    def test_respects_target(self, overlapping):
        pos, neg = overlapping
        op = operating_point(roc_curve(pos, neg), target_fpr=0.05)
        assert op.fpr <= 0.05
        assert op.tpr > 0.5  # d' ~ 2: decent sensitivity at 5% FPR
        # The achieved FPR is real: applying the threshold reproduces it.
        assert np.mean(neg >= op.threshold) == pytest.approx(op.fpr)

    def test_invalid_target(self, overlapping):
        pos, neg = overlapping
        with pytest.raises(ValueError, match="target_fpr"):
            operating_point(roc_curve(pos, neg), target_fpr=1.5)


class TestSeparationStats:
    def test_separated_populations(self, overlapping):
        pos, neg = overlapping
        stats = separation_stats(pos, neg)
        assert stats.d_prime == pytest.approx(2.0, abs=0.2)
        assert stats.median_match > stats.median_mismatch
        assert 0.85 < stats.auc < 1.0
        assert stats.n_match == 300 and stats.n_mismatch == 500

    def test_nonpositive_mismatch_median(self):
        stats = separation_stats([2.0, 3.0], [-1.0, -2.0])
        assert stats.median_ratio == float("inf")


class TestBootstrapAuc:
    def test_deterministic(self, overlapping):
        pos, neg = overlapping
        assert bootstrap_auc(pos, neg, seed=2) == bootstrap_auc(pos, neg, seed=2)

    def test_brackets_auc(self, overlapping):
        pos, neg = overlapping
        low, high = bootstrap_auc(pos, neg, n_resamples=400, seed=0)
        auc = auc_score(pos, neg)
        assert low < auc < high
        assert 0.0 <= low and high <= 1.0

    def test_chunking_matches_one_block(self, overlapping, monkeypatch):
        pos, neg = overlapping
        whole = bootstrap_auc(pos, neg, n_resamples=64, seed=1)
        monkeypatch.setattr(
            "repro.inference.bootstrap.MAX_BLOCK_ELEMENTS", 10 * (len(pos) + len(neg))
        )
        assert bootstrap_auc(pos, neg, n_resamples=64, seed=1) == whole


class TestMatchMismatchScores:
    def test_from_result_records(self):
        records = {
            "sensor_current_a": np.array([5.0, 4.0, 1.0, 0.5, 9.0]),
            "is_match": np.array([True, False, False, False, True]),
            "probe": np.array(["m", "mm", "mm", "", "m"], dtype=object),
        }
        pos, neg = match_mismatch_scores(records)
        np.testing.assert_array_equal(pos, [5.0, 9.0])
        np.testing.assert_array_equal(neg, [4.0, 1.0])  # the empty spot is neither

    def test_from_real_assay(self):
        from repro.experiments import DnaAssaySpec, Runner

        result = Runner(seed=1).run(
            DnaAssaySpec(probe_count=4, replicates=4, target_subset=(0, 1))
        )
        pos, neg = match_mismatch_scores(result)
        assert len(pos) == result.metrics["n_match_sites"]
        assert len(pos) + len(neg) == result.metrics["n_probe_sites"]
        assert np.median(pos) > np.median(neg)

    def test_missing_column(self):
        with pytest.raises(KeyError, match="is_match"):
            match_mismatch_scores({"sensor_current_a": np.array([1.0])})
