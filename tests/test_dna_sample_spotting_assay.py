"""Samples, probe layouts and the end-to-end assay integration."""

import numpy as np
import pytest

from repro.dna import (
    AssayProtocol,
    DnaSequence,
    MicroarrayAssay,
    Probe,
    ProbeLayout,
    Sample,
    Target,
    perfect_target_for,
)


@pytest.fixture
def probes(rng):
    return [Probe(f"p{i}", DnaSequence.random(20, rng)) for i in range(4)]


class TestSample:
    def test_add_and_query(self, probes):
        sample = Sample()
        target = perfect_target_for(probes[0])
        sample.add(target, 1e-6)
        assert sample.concentration_of(target) == 1e-6
        assert len(sample) == 1

    def test_add_accumulates(self, probes):
        sample = Sample()
        target = perfect_target_for(probes[0])
        sample.add(target, 1e-6)
        sample.add(target, 1e-6)
        assert sample.concentration_of(target) == pytest.approx(2e-6)

    def test_rejects_negative(self, probes):
        with pytest.raises(ValueError):
            Sample().add(perfect_target_for(probes[0]), -1.0)

    def test_diluted(self, probes):
        sample = Sample({perfect_target_for(probes[0]): 1e-6})
        assert sample.diluted(10).total_concentration() == pytest.approx(1e-7)

    def test_for_probes_subset(self, probes):
        sample = Sample.for_probes(probes, 1e-6, subset=[0, 2])
        assert len(sample) == 2

    def test_for_probes_bad_index(self, probes):
        with pytest.raises(IndexError):
            Sample.for_probes(probes, 1e-6, subset=[99])

    def test_random_background(self):
        sample = Sample.random_background(5, 1e-7, rng=1)
        assert len(sample) == 5
        assert sample.total_concentration() == pytest.approx(5e-7)

    def test_merged(self, probes):
        a = Sample({perfect_target_for(probes[0]): 1e-6})
        b = Sample({perfect_target_for(probes[1]): 2e-6})
        merged = a.merged_with(b)
        assert len(merged) == 2
        assert merged.total_concentration() == pytest.approx(3e-6)


class TestProbeLayout:
    def test_tiled_fills_row_major(self, probes):
        layout = ProbeLayout.tiled(probes, rows=4, cols=4, replicates=4)
        assert layout.spot(0, 0).probe == probes[0]
        assert layout.spot(0, 3).probe == probes[0]
        assert layout.spot(1, 0).probe == probes[1]

    def test_replicate_count(self, probes):
        layout = ProbeLayout.tiled(probes, rows=4, cols=4, replicates=4)
        assert layout.replicate_count(probes[0]) == 4

    def test_control_spots(self, probes):
        layout = ProbeLayout.tiled(probes, rows=4, cols=4, replicates=4, control_every=4)
        controls = [p for p in layout.all_positions() if layout.spot(*p).probe is None]
        assert len(controls) == 4

    def test_unassigned_is_bare(self):
        layout = ProbeLayout(rows=2, cols=2)
        spot = layout.spot(1, 1)
        assert spot.probe is None
        assert spot.probe_density == 0.0

    def test_out_of_bounds(self, probes):
        layout = ProbeLayout(rows=2, cols=2)
        with pytest.raises(IndexError):
            layout.assign(5, 0, probes[0])
        with pytest.raises(IndexError):
            layout.spot(0, 9)

    def test_probes_unique_in_order(self, probes):
        layout = ProbeLayout.tiled(probes, rows=4, cols=4, replicates=2)
        assert layout.probes() == probes

    def test_random_panel_dimensions(self):
        layout = ProbeLayout.random_panel(8, rows=16, cols=8, rng=1)
        assert layout.rows == 16
        assert layout.cols == 8
        assert len(layout.probes()) == 8

    def test_occupancy_map(self, probes):
        layout = ProbeLayout(rows=2, cols=2)
        image = layout.occupancy_map({(0, 0): 1.5})
        assert image[0, 0] == 1.5
        assert np.isnan(image[1, 1])

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            ProbeLayout(rows=0, cols=4)


class TestAssayIntegration:
    def test_match_sites_light_up(self, probes):
        layout = ProbeLayout.tiled(probes, rows=4, cols=4, replicates=4)
        sample = Sample.for_probes(probes, 1e-5, subset=[0])
        result = MicroarrayAssay(layout).run(sample)
        match = result.match_sites()
        assert len(match) == 4
        others = result.mismatch_sites()
        assert min(s.sensor_current for s in match) > 10 * max(
            s.sensor_current for s in others
        )

    def test_bare_controls_stay_dark(self, probes):
        layout = ProbeLayout.tiled(probes, rows=4, cols=4, replicates=3, control_every=4)
        sample = Sample.for_probes(probes, 1e-5)
        result = MicroarrayAssay(layout).run(sample)
        bare = [s for s in result.sites if not s.probe_name]
        assert bare
        for site in bare:
            assert site.sensor_current < 1e-11

    def test_discrimination_ratio(self, probes):
        layout = ProbeLayout.tiled(probes, rows=4, cols=4, replicates=4)
        sample = Sample.for_probes(probes, 1e-5, subset=[0, 1])
        result = MicroarrayAssay(layout).run(sample)
        assert result.discrimination_ratio() > 100

    def test_dose_monotone(self, probes):
        layout = ProbeLayout.tiled(probes[:1], rows=2, cols=2, replicates=4)
        assay = MicroarrayAssay(layout)
        currents = []
        for conc in (1e-8, 1e-6, 1e-4):
            result = assay.run(Sample.for_probes(probes[:1], conc))
            currents.append(np.median([s.sensor_current for s in result.match_sites()]))
        assert currents[0] < currents[1] < currents[2]

    def test_current_map_shape(self, probes):
        layout = ProbeLayout.tiled(probes, rows=4, cols=4, replicates=4)
        result = MicroarrayAssay(layout).run(Sample.for_probes(probes, 1e-6))
        assert result.current_map().shape == (4, 4)

    def test_dynamic_range_reported(self, probes):
        layout = ProbeLayout.tiled(probes, rows=4, cols=4, replicates=3, control_every=4)
        result = MicroarrayAssay(layout).run(Sample.for_probes(probes, 1e-4))
        assert result.dynamic_range_decades() > 2

    def test_competition_shares_site(self, rng):
        # Two targets matching the same probe: occupancy must not exceed 1.
        probe = Probe("p", DnaSequence.random(20, rng))
        t1 = perfect_target_for(probe, name="t1")
        t2 = Target("t2", probe.sequence.reverse_complement().with_mismatches(1, rng))
        layout = ProbeLayout.tiled([probe], rows=2, cols=2, replicates=4)
        sample = Sample({t1: 1.0, t2: 1.0})  # saturating levels
        result = MicroarrayAssay(layout).run(sample)
        for site in result.sites:
            if site.probe_name:
                assert site.occupancy_after_hybridization <= 1.0 + 1e-9

    def test_wrong_grid_protocol(self, probes):
        layout = ProbeLayout.tiled(probes, rows=4, cols=4)
        with pytest.raises(ValueError):
            AssayProtocol(hybridization_s=-1.0)

    def test_site_lookup(self, probes):
        layout = ProbeLayout.tiled(probes, rows=4, cols=4, replicates=4)
        result = MicroarrayAssay(layout).run(Sample.for_probes(probes, 1e-6))
        site = result.site_at(0, 0)
        assert site.row == 0 and site.col == 0
        with pytest.raises(KeyError):
            result.site_at(99, 0)
