"""Yield statistics: Wilson intervals, spread, dead pixels, criteria."""

import numpy as np
import pytest

from repro.inference import (
    apply_criterion,
    dead_pixel_stats,
    pass_fail_yield,
    spread,
    wilson_interval,
)


class TestWilsonInterval:
    def test_contains_the_proportion(self):
        low, high = wilson_interval(30, 100)
        assert low < 0.30 < high

    def test_edges_stay_in_unit_interval(self):
        low0, high0 = wilson_interval(0, 20)
        lowN, highN = wilson_interval(20, 20)
        assert low0 == 0.0 and high0 < 0.25
        assert lowN > 0.75 and highN == 1.0

    def test_matches_textbook_value(self):
        # Wilson 95% for 8/10: (0.490, 0.943) (standard worked example).
        low, high = wilson_interval(8, 10)
        assert low == pytest.approx(0.4902, abs=2e-3)
        assert high == pytest.approx(0.9433, abs=2e-3)

    def test_narrows_with_n(self):
        narrow = wilson_interval(300, 1000)
        wide = wilson_interval(3, 10)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_errors(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)
        with pytest.raises(ValueError):
            wilson_interval(5, 10, confidence=0.0)


class TestSpread:
    def test_summary(self):
        stats = spread([1.0, 2.0, 3.0, 4.0])
        assert stats.mean == 2.5
        assert stats.median == 2.5
        assert stats.minimum == 1.0 and stats.maximum == 4.0
        assert stats.cv == pytest.approx(stats.std / 2.5)
        assert stats.n == 4

    def test_single_value(self):
        stats = spread([7.0])
        assert stats.std == 0.0 and stats.cv == 0.0

    def test_zero_mean(self):
        assert spread([-1.0, 1.0]).cv == float("inf")
        assert spread([0.0, 0.0]).cv == 0.0

    def test_empty(self):
        with pytest.raises(ValueError):
            spread([])


class TestPassFailYield:
    def test_yield_with_interval(self):
        stats = pass_fail_yield([True] * 18 + [False] * 2)
        assert stats.n == 20 and stats.passes == 18
        assert stats.fraction == pytest.approx(0.9)
        assert stats.ci_low < 0.9 < stats.ci_high

    def test_unanimous(self):
        stats = pass_fail_yield([True] * 5)
        assert stats.fraction == 1.0
        assert stats.ci_high == 1.0 and stats.ci_low > 0.5

    def test_empty(self):
        with pytest.raises(ValueError):
            pass_fail_yield([])


class TestDeadPixelStats:
    def test_pooled_rate(self):
        stats = dead_pixel_stats([2, 0, 1, 3], sites_per_chip=128)
        assert stats.n_chips == 4
        assert stats.total_sites == 512 and stats.total_dead == 6
        assert stats.rate == pytest.approx(6 / 512)
        assert stats.ci_low < stats.rate < stats.ci_high
        assert stats.per_chip.maximum == pytest.approx(3 / 128)

    def test_validation(self):
        with pytest.raises(ValueError):
            dead_pixel_stats([], 128)
        with pytest.raises(ValueError):
            dead_pixel_stats([1], 0)
        with pytest.raises(ValueError):
            dead_pixel_stats([200], 128)


class TestApplyCriterion:
    def test_operators(self):
        values = np.array([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(apply_criterion(values, ">=", 2.0), [False, True, True])
        np.testing.assert_array_equal(apply_criterion(values, "<", 2.0), [True, False, False])

    def test_unknown_operator(self):
        with pytest.raises(ValueError, match="criterion"):
            apply_criterion([1.0], "==", 1.0)
