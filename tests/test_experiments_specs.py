"""Spec serialization, validation and the experiment registry."""

import json

import pytest

from repro.experiments import (
    AdcTransferSpec,
    DnaAssaySpec,
    ExperimentSpec,
    NeuralRecordingSpec,
    ScreeningSpec,
    experiment_kinds,
    experiment_type,
    spec_from_dict,
)

ALL_SPECS = [
    DnaAssaySpec(),
    DnaAssaySpec(panel="mismatch", mismatch_counts=(1, 2), replicates=28, control_every=16),
    DnaAssaySpec(target_subset=(0, 1, 2, 3), concentration=1e-6),
    NeuralRecordingSpec(),
    NeuralRecordingSpec(rows=32, cols=32, n_neurons=3, use_hh=False),
    ScreeningSpec(),
    ScreeningSpec(library_size=5000, cmos=True),
    AdcTransferSpec(),
    AdcTransferSpec(points_per_decade=2, frame_s=4.0),
]


@pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.content_hash()[:8])
def test_to_dict_from_dict_round_trip(spec):
    data = spec.to_dict()
    assert data["kind"] == spec.kind
    rebuilt = type(spec).from_dict(data)
    assert rebuilt == spec
    # And through the kind-dispatching loader, including a JSON hop.
    assert spec_from_dict(json.loads(spec.to_json())) == spec


@pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.content_hash()[:8])
def test_content_hash_is_stable_and_discriminating(spec):
    assert spec.content_hash() == type(spec).from_dict(spec.to_dict()).content_hash()
    others = [other for other in ALL_SPECS if other != spec]
    assert all(other.content_hash() != spec.content_hash() for other in others)


def test_replace_produces_new_validated_spec():
    spec = DnaAssaySpec()
    swept = spec.replace(concentration=1e-7)
    assert swept.concentration == 1e-7
    assert spec.concentration == 1e-5  # original untouched (frozen)
    with pytest.raises(ValueError):
        spec.replace(concentration=-1.0)


def test_registry_contains_all_builtin_kinds():
    kinds = experiment_kinds()
    for kind in ("adc_transfer", "dna_assay", "neural_recording", "screening"):
        assert kind in kinds
    assert experiment_type("dna_assay") is DnaAssaySpec


def test_registry_unknown_kind_errors():
    with pytest.raises(KeyError, match="unknown experiment kind"):
        experiment_type("does_not_exist")
    with pytest.raises(KeyError, match="does_not_exist"):
        spec_from_dict({"kind": "does_not_exist"})
    with pytest.raises(ValueError, match="kind"):
        spec_from_dict({"concentration": 1e-6})


def test_from_dict_rejects_unknown_fields_and_wrong_kind():
    with pytest.raises(ValueError, match="unknown fields"):
        DnaAssaySpec.from_dict({"kind": "dna_assay", "not_a_field": 1})
    with pytest.raises(ValueError, match="cannot load kind"):
        DnaAssaySpec.from_dict(ScreeningSpec().to_dict())


@pytest.mark.parametrize(
    "factory",
    [
        lambda: DnaAssaySpec(panel="nonsense"),
        lambda: DnaAssaySpec(replicates=0),
        lambda: DnaAssaySpec(concentration=-1e-9),
        lambda: DnaAssaySpec(target_subset=(99,)),
        lambda: DnaAssaySpec(panel="mismatch", mismatch_counts=(0,)),
        lambda: NeuralRecordingSpec(n_neurons=0),
        lambda: NeuralRecordingSpec(diameter_range_m=(80e-6, 25e-6)),
        lambda: NeuralRecordingSpec(duration_s=0.0),
        lambda: ScreeningSpec(library_size=0),
        lambda: ScreeningSpec(viable_rate=1.5),
        lambda: AdcTransferSpec(i_low_a=1e-9, i_high_a=1e-12),
        lambda: AdcTransferSpec(frame_s=0.0),
    ],
)
def test_validation_rejects_bad_specs(factory):
    with pytest.raises(ValueError):
        factory()


def test_facet_keys_separate_chip_from_sample():
    a = DnaAssaySpec(concentration=1e-7)
    b = DnaAssaySpec(concentration=1e-4)
    # Same chip + layout facets (shareable substrates) ...
    assert a.chip_key() == b.chip_key()
    assert a.layout_key() == b.layout_key()
    # ... but distinct experiments.
    assert a.content_hash() != b.content_hash()
    assert a.chip_key() != DnaAssaySpec(v_generator=0.5).chip_key()
    assert a.layout_key() != DnaAssaySpec(replicates=4).layout_key()


def test_custom_registration_round_trips():
    from dataclasses import dataclass

    from repro.experiments import register_experiment
    from repro.experiments.specs import _REGISTRY

    @register_experiment("test_only_kind")
    @dataclass(frozen=True)
    class TestOnlySpec(ExperimentSpec):
        knob: float = 1.0

    try:
        assert experiment_type("test_only_kind") is TestOnlySpec
        assert spec_from_dict({"kind": "test_only_kind", "knob": 2.5}) == TestOnlySpec(knob=2.5)
        with pytest.raises(ValueError, match="already registered"):
            register_experiment("test_only_kind")(DnaAssaySpec)
    finally:
        _REGISTRY.pop("test_only_kind", None)
