"""Gain stages and amplifier chains (the Fig. 6 building blocks)."""

import numpy as np
import pytest

from repro.core.signals import Trace
from repro.devices.amplifier import AmplifierChain, GainStage
from repro.neuro.readout_chain import build_readout_chain


def sine(freq, duration, dt, amplitude=1.0):
    t = np.arange(0, duration, dt)
    return Trace(amplitude * np.sin(2 * np.pi * freq * t), dt)


class TestGainStage:
    def test_dc_transfer(self):
        stage = GainStage(nominal_gain=10.0, bandwidth_hz=1e6)
        assert stage.dc_transfer(0.1) == pytest.approx(1.0)

    def test_gain_error_applied(self):
        stage = GainStage(nominal_gain=10.0, bandwidth_hz=1e6, gain_error=0.05)
        assert stage.actual_gain == pytest.approx(10.5)

    def test_clipping(self):
        stage = GainStage(nominal_gain=10.0, bandwidth_hz=1e6, rail_low=-1.0, rail_high=1.0)
        assert stage.dc_transfer(1.0) == 1.0
        assert stage.dc_transfer(-1.0) == -1.0

    def test_offset_calibration(self):
        stage = GainStage(nominal_gain=10.0, bandwidth_hz=1e6, offset_v=0.01)
        assert stage.dc_transfer(0.0) == pytest.approx(0.1)
        stage.calibrate_offset()
        assert stage.dc_transfer(0.0) == pytest.approx(0.0, abs=1e-12)

    def test_calibration_residual(self):
        stage = GainStage(nominal_gain=10.0, bandwidth_hz=1e6, offset_v=0.01)
        stage.calibrate_offset(residual_v=0.001)
        assert stage.residual_offset == pytest.approx(0.001)

    def test_reset_calibration(self):
        stage = GainStage(nominal_gain=10.0, bandwidth_hz=1e6, offset_v=0.01)
        stage.calibrate_offset()
        stage.reset_calibration()
        assert stage.residual_offset == pytest.approx(0.01)

    def test_bandwidth_attenuates(self):
        stage = GainStage(nominal_gain=1.0, bandwidth_hz=1e4)
        fast = sine(1e6, 1e-4, 1e-8)
        out = stage.process(fast, include_noise=False)
        settled = out.slice_time(2e-5, 1e-4)
        assert settled.rms() < 0.05 * fast.rms()

    def test_noise_added(self):
        stage = GainStage(nominal_gain=1.0, bandwidth_hz=1e6, input_noise_density=1e-12)
        silent = Trace(np.zeros(10000), 1e-7)
        out = stage.process(silent, rng=1)
        assert out.rms() > 0

    def test_output_noise_rms_positive(self):
        stage = GainStage(nominal_gain=10.0, bandwidth_hz=1e6, input_noise_density=1e-16)
        assert stage.output_noise_rms() > 0

    def test_invalid_gain(self):
        with pytest.raises(ValueError):
            GainStage(nominal_gain=0.0, bandwidth_hz=1e6)


class TestAmplifierChain:
    def build_paper_chain(self):
        return AmplifierChain([
            GainStage(100.0, 12e6, label="x100"),
            GainStage(7.0, 4e6, label="x7"),
            GainStage(1.0, 32e6, label="driver"),
            GainStage(4.0, 32e6, label="x4"),
            GainStage(2.0, 32e6, label="x2"),
        ])

    def test_total_gain_5600(self):
        assert self.build_paper_chain().nominal_gain == pytest.approx(5600.0)

    def test_bandwidth_dominated_by_4mhz(self):
        bw = self.build_paper_chain().bandwidth_hz()
        assert 1.5e6 < bw <= 4e6

    def test_dc_transfer_through_chain(self):
        chain = self.build_paper_chain()
        assert chain.dc_transfer(1e-4) == pytest.approx(0.56, rel=1e-6)

    def test_input_referred_offset_dominated_by_first_stage(self):
        chain = AmplifierChain([
            GainStage(100.0, 1e6, offset_v=0.001),
            GainStage(7.0, 1e6, offset_v=0.1),
        ])
        # Second stage offset is divided by 100.
        assert chain.input_referred_offset() == pytest.approx(0.001 + 0.1 / 100)

    def test_calibrate_all(self):
        chain = AmplifierChain([
            GainStage(10.0, 1e6, offset_v=0.01),
            GainStage(10.0, 1e6, offset_v=0.02),
        ])
        chain.calibrate_all()
        assert chain.input_referred_offset() == pytest.approx(0.0, abs=1e-12)

    def test_process_amplifies(self):
        chain = self.build_paper_chain()
        small = sine(1e3, 5e-3, 1e-6, amplitude=1e-4)
        out = chain.process(small, include_noise=False)
        assert out.slice_time(1e-3, 5e-3).peak_abs() == pytest.approx(0.56, rel=0.05)

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            AmplifierChain([])

    def test_input_referred_noise_positive(self):
        chain = build_readout_chain(rng=1)
        noise = chain.input_referred_noise_rms()
        assert 1e-6 < noise < 1e-3


class TestReadoutChainFactory:
    def test_stage_structure(self):
        chain = build_readout_chain(rng=2)
        assert len(chain.stages) == 5
        assert chain.nominal_gain == pytest.approx(5600.0)

    def test_instances_differ(self):
        a = build_readout_chain(rng=1)
        b = build_readout_chain(rng=2)
        assert a.actual_gain != b.actual_gain

    def test_gain_spread_reasonable(self):
        gains = [build_readout_chain(rng=i).actual_gain for i in range(20)]
        assert np.std(gains) / np.mean(gains) < 0.15
