"""The correlated mismatch field: variance split, determinism, draw order."""

import hashlib

import numpy as np
import pytest

from repro.core.rng import SeedTree
from repro.engine.params import DEFAULT_SIGMA_CINT_REL, DEFAULT_SIGMA_OFFSET_V
from repro.wafer import WaferSpec, sample_field, wafer_field_for

SPEC = WaferSpec(
    wafer_diameter_mm=60.0,
    die_width_mm=12.0,
    die_height_mm=12.0,
    rows=8,
    cols=8,
    radial_gradient=0.3,
    reticle_sigma=0.2,
)

# SHA256 over every placed die's (offset, cint) planes for SPEC at root
# seed 12345 — the frozen bytes of the correlated field.  If this test
# fails, the field recipe changed and every stored correlated wafer run
# is silently invalidated.
FIELD_DIGEST = "83d91ca2e90642bee00c22e15b2ce82ff158c450d9d2a918b7b2169464c71bee"


def field_digest(field):
    digest = hashlib.sha256()
    for die in field.layout.dies:
        offset, cint = field.die_planes(die)
        digest.update(np.ascontiguousarray(offset).tobytes())
        digest.update(np.ascontiguousarray(cint).tobytes())
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Variance decomposition
# ---------------------------------------------------------------------------
def test_radial_profile_is_standardised_over_placed_pixels():
    field = wafer_field_for(SPEC, 0)
    profiles = np.stack([field.radial_profile(d) for d in field.layout.dies])
    assert float(profiles.mean()) == pytest.approx(0.0, abs=1e-12)
    assert float(profiles.var()) == pytest.approx(1.0, rel=1e-12)


def test_radial_component_variance_is_exactly_its_share():
    # Standardisation makes the radial share exact (population variance
    # over placed pixels), not just exact in expectation.
    field = wafer_field_for(SPEC, 0)
    profiles = np.stack([field.radial_profile(d) for d in field.layout.dies])
    radial_offset = field.radial_amp_offset_v * profiles
    assert float(radial_offset.var()) == pytest.approx(
        SPEC.radial_gradient * DEFAULT_SIGMA_OFFSET_V**2, rel=1e-9
    )
    radial_cint = field.radial_amp_cint_rel * profiles
    assert float(radial_cint.var()) == pytest.approx(
        SPEC.radial_gradient * DEFAULT_SIGMA_CINT_REL**2, rel=1e-9
    )


def test_reticle_component_variance_matches_its_share():
    # One die per reticle on a large wafer -> enough independent
    # exposures for the sample variance to sit near its share.
    spec = WaferSpec(
        wafer_diameter_mm=150.0,
        die_width_mm=8.0,
        die_height_mm=8.0,
        rows=4,
        cols=4,
        reticle_rows=1,
        reticle_cols=1,
        radial_gradient=0.0,
        reticle_sigma=0.5,
    )
    field = wafer_field_for(spec, 11)
    assert field.layout.n_reticles > 200
    offsets = np.asarray(
        [field.reticle_offset_v[d.reticle_y, d.reticle_x] for d in field.layout.dies]
    )
    expected = spec.reticle_sigma * DEFAULT_SIGMA_OFFSET_V**2
    assert float(offsets.var()) == pytest.approx(expected, rel=0.25)
    cints = np.asarray(
        [field.reticle_cint_rel[d.reticle_y, d.reticle_x] for d in field.layout.dies]
    )
    assert float(cints.var()) == pytest.approx(
        spec.reticle_sigma * DEFAULT_SIGMA_CINT_REL**2, rel=0.25
    )


def test_white_scale_is_sqrt_of_the_remaining_fraction():
    field = wafer_field_for(SPEC, 0)
    assert field.white_scale == pytest.approx(np.sqrt(SPEC.white_fraction))
    assert wafer_field_for(SPEC.replace(radial_gradient=0.0, reticle_sigma=0.0), 0).white_scale == 1.0


def test_variance_fractions_sum_to_total():
    # The three shares reconstruct the engine's default variance.
    field = wafer_field_for(SPEC, 3)
    total = (
        field.white_scale**2 * DEFAULT_SIGMA_OFFSET_V**2
        + SPEC.radial_gradient * DEFAULT_SIGMA_OFFSET_V**2
        + SPEC.reticle_sigma * DEFAULT_SIGMA_OFFSET_V**2
    )
    assert total == pytest.approx(DEFAULT_SIGMA_OFFSET_V**2)


# ---------------------------------------------------------------------------
# Determinism and draw order
# ---------------------------------------------------------------------------
def test_field_bytes_are_frozen_for_a_fixed_seed():
    assert field_digest(wafer_field_for(SPEC, 12345)) == FIELD_DIGEST


def test_wafer_field_for_matches_the_runner_stream():
    rng = SeedTree(7).generator("wafer", "field", SPEC.field_key())
    direct = sample_field(SPEC, rng)
    via = wafer_field_for(SPEC, 7)
    assert field_digest(direct) == field_digest(via)


def test_draw_order_is_independent_of_the_split():
    # All four stream draws happen regardless of the fractions, so from
    # the same generator state the underlying realisation is shared and
    # only the scaling differs.
    a = sample_field(SPEC, np.random.default_rng(42))
    b = sample_field(
        SPEC.replace(radial_gradient=0.0, reticle_sigma=0.8), np.random.default_rng(42)
    )
    np.testing.assert_allclose(
        a.reticle_offset_v / np.sqrt(SPEC.reticle_sigma),
        b.reticle_offset_v / np.sqrt(0.8),
    )
    c = sample_field(
        SPEC.replace(radial_gradient=0.9, reticle_sigma=0.0), np.random.default_rng(42)
    )
    assert np.sign(a.radial_amp_offset_v) == np.sign(c.radial_amp_offset_v)


def test_white_only_field_has_no_correlated_component():
    field = wafer_field_for(SPEC.replace(radial_gradient=0.0, reticle_sigma=0.0), 5)
    assert field.white_only
    assert field.radial_amp_offset_v == 0.0
    assert not field.reticle_offset_v.any()
    assert not wafer_field_for(SPEC, 5).white_only


def test_reticle_offsets_cover_the_full_reticle_extent():
    field = wafer_field_for(SPEC, 9)
    layout = field.layout
    assert field.reticle_offset_v.shape == (layout.n_reticle_y, layout.n_reticle_x)
    assert field.reticle_cint_rel.shape == (layout.n_reticle_y, layout.n_reticle_x)


# ---------------------------------------------------------------------------
# Spec-side validation of the split
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs, message",
    [
        (dict(radial_gradient=-0.1), r"radial_gradient must lie in \[0, 1\]"),
        (dict(reticle_sigma=1.5), r"reticle_sigma must lie in \[0, 1\]"),
        (dict(radial_gradient=0.7, reticle_sigma=0.7), "exceed the total"),
    ],
)
def test_invalid_variance_split_raises(kwargs, message):
    with pytest.raises(ValueError, match=message):
        SPEC.replace(**kwargs)
