"""The `repro` CLI: run / sweep / report / kinds round-trips."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments import DnaAssaySpec

REPO = Path(__file__).resolve().parent.parent
DNA_SPEC_JSON = REPO / "examples" / "specs" / "dna_assay.json"
CAMPAIGN_JSON = REPO / "examples" / "specs" / "fig4_concentration_campaign.json"

SMALL_SPEC = DnaAssaySpec(probe_count=4, replicates=4, target_subset=(0, 1))


@pytest.fixture()
def small_spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(SMALL_SPEC.to_json())
    return path


def test_committed_example_specs_are_loadable():
    """The CI smoke assets must stay valid."""
    from repro.campaigns import CampaignSpec
    from repro.experiments import spec_from_dict
    from repro.inference import analysis_from_dict

    spec = spec_from_dict(json.loads(DNA_SPEC_JSON.read_text()))
    assert spec.kind == "dna_assay"
    campaign = CampaignSpec.from_dict(json.loads(CAMPAIGN_JSON.read_text()))
    assert campaign.n_points == 12
    analysis = analysis_from_dict(
        json.loads((REPO / "examples" / "specs" / "dose_response_analysis.json").read_text())
    )
    assert analysis.kind == "dose_response"


def test_kinds_lists_registry(capsys):
    assert main(["kinds"]) == 0
    out = capsys.readouterr().out.split()
    assert "dna_assay" in out and "screening" in out


def test_run_prints_metrics(small_spec_file, capsys):
    assert main(["run", "--spec", str(small_spec_file), "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "discrimination_ratio" in out and "128 sites" in out


def test_run_json_matches_library(small_spec_file, capsys):
    from repro.experiments import Runner

    assert main(["run", "--spec", str(small_spec_file), "--seed", "1", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    expected = json.loads(Runner(seed=1).run(SMALL_SPEC).to_json())
    assert payload == expected


def test_run_missing_file_exits_cleanly(tmp_path):
    with pytest.raises(SystemExit, match="no such file"):
        main(["run", "--spec", str(tmp_path / "ghost.json")])


def test_run_bad_spec_exits_cleanly(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"kind": "dna_assay", "bogus_field": 1}))
    with pytest.raises(SystemExit, match="unknown fields"):
        main(["run", "--spec", str(bad)])
    with pytest.raises(SystemExit, match="cannot read"):
        main(["run", "--spec", str(tmp_path)])  # a directory, not a file


def test_sweep_refuses_to_overwrite_finished_campaign_without_force(
    small_spec_file, tmp_path, capsys
):
    out = tmp_path / "precious"
    argv = ["sweep", "--spec", str(small_spec_file), "--grid", "concentration=1e-6",
            "--store", "jsonl", "--out", str(out)]
    assert main(argv) == 0
    capsys.readouterr()
    with pytest.raises(SystemExit, match="--force"):
        main(argv)
    assert (out / "manifest.json").exists()  # untouched
    assert main(argv + ["--force"]) == 0


def test_force_with_invalid_setup_leaves_old_campaign_intact(
    small_spec_file, tmp_path, capsys
):
    out = tmp_path / "precious"
    good = ["sweep", "--spec", str(small_spec_file), "--grid", "concentration=1e-6",
            "--store", "jsonl", "--out", str(out)]
    assert main(good) == 0
    capsys.readouterr()
    before = (out / "results.jsonl").read_text()
    bad_axis = ["sweep", "--spec", str(small_spec_file), "--grid", "probe_count=0,4",
                "--store", "jsonl", "--out", str(out), "--force"]
    with pytest.raises(SystemExit, match="probe_count"):
        main(bad_axis)
    # A workload-unsupported backend is setup too (screening is object-only).
    screen = tmp_path / "screen.json"
    screen.write_text(json.dumps({"kind": "screening", "library_size": 500}))
    bad_backend = ["sweep", "--spec", str(screen), "--backend", "vectorized",
                   "--store", "jsonl", "--out", str(out), "--force"]
    with pytest.raises(SystemExit, match="does not support backend"):
        main(bad_backend)
    # Validation fired before --force could truncate anything.
    assert (out / "results.jsonl").read_text() == before
    assert (out / "manifest.json").exists()


def test_run_rejects_unsupported_backend_cleanly(tmp_path):
    screen = tmp_path / "screen.json"
    screen.write_text(json.dumps({"kind": "screening", "library_size": 500}))
    with pytest.raises(SystemExit, match="does not support backend"):
        main(["run", "--spec", str(screen), "--backend", "vectorized"])


def test_split_values_respects_quotes_and_brackets():
    from repro.cli import _split_values

    assert _split_values("[1,2],[1,2,3]") == ["[1,2]", "[1,2,3]"]
    assert _split_values('"a,b","c"') == ['"a,b"', '"c"']
    assert _split_values('["x,y",2],3') == ['["x,y",2]', "3"]
    assert _split_values('"esc\\",a",b') == ['"esc\\",a"', "b"]
    assert _split_values("1e-7,1e-6") == ["1e-7", "1e-6"]


def test_sweep_from_flags_with_jsonl_store_then_report(small_spec_file, tmp_path, capsys):
    out_dir = tmp_path / "results"
    code = main(
        [
            "sweep",
            "--spec", str(small_spec_file),
            "--grid", "concentration=1e-7,1e-6",
            "--replicates", "2",
            "--seed", "5",
            "--executor", "thread",
            "--workers", "2",
            "--store", "jsonl",
            "--out", str(out_dir),
            "--metrics", "discrimination_ratio",
        ]
    )
    assert code == 0
    sweep_out = capsys.readouterr().out
    assert "4" in sweep_out and "discrimination_ratio" in sweep_out
    assert (out_dir / "manifest.json").exists()

    assert main(
        ["report", "--store", str(out_dir), "--metrics", "discrimination_ratio"]
    ) == 0
    report_out = capsys.readouterr().out
    assert "concentration" in report_out and "discrimination_ratio" in report_out
    # The sweep table reappears verbatim in the report output.
    table_lines = [l for l in sweep_out.splitlines() if l.startswith(("point", "-", "0", "1", "2", "3"))]
    assert all(line in report_out for line in table_lines)


def test_sweep_from_campaign_file_json_manifest(tmp_path, capsys):
    campaign = {
        "name": "cli-mini",
        "base": SMALL_SPEC.to_dict(),
        "grid": {"concentration": [1e-6]},
        "replicates": 2,
    }
    path = tmp_path / "campaign.json"
    path.write_text(json.dumps(campaign))
    assert main(["sweep", "--campaign", str(path), "--seed", "2", "--json"]) == 0
    manifest = json.loads(capsys.readouterr().out)
    assert manifest["name"] == "cli-mini"
    assert manifest["n_points"] == 2
    assert [p["wall_s"] > 0 for p in manifest["points"]] == [True, True]


def test_sweep_flag_errors(small_spec_file):
    with pytest.raises(SystemExit, match="--campaign or --spec"):
        main(["sweep"])
    with pytest.raises(SystemExit, match="field=v1,v2"):
        main(["sweep", "--spec", str(small_spec_file), "--grid", "concentration"])
    with pytest.raises(SystemExit, match="duplicate"):
        main(
            ["sweep", "--spec", str(small_spec_file),
             "--grid", "concentration=1e-7", "--grid", "concentration=1e-6"]
        )
    with pytest.raises(SystemExit, match="output directory"):
        main(["sweep", "--spec", str(small_spec_file), "--store", "jsonl"])
    # Validation errors surface as clean messages, not tracebacks.
    with pytest.raises(SystemExit, match="not on DnaAssaySpec"):
        main(["sweep", "--spec", str(small_spec_file), "--grid", "bogus=1,2"])
    # ... including per-point spec validation of axis values.
    with pytest.raises(SystemExit, match="non-negative"):
        main(["sweep", "--spec", str(small_spec_file), "--grid", "concentration=-1e-7"])
    with pytest.raises(SystemExit, match="writes nothing to disk"):
        main(
            ["sweep", "--spec", str(small_spec_file), "--store", "memory",
             "--out", "somewhere"]
        )
    with pytest.raises(SystemExit, match="already defines the sweep"):
        main(
            ["sweep", "--campaign", str(CAMPAIGN_JSON), "--replicates", "16",
             "--grid", "concentration=1e-6"]
        )


def test_grid_axis_accepts_json_list_values(tmp_path, capsys):
    """Tuple-valued spec fields sweep from the CLI: top-level commas
    split values, commas inside [] do not."""
    from repro.cli import _parse_axis

    axes = _parse_axis("--grid", ["mismatch_counts=[1,2],[1,2,3]"])
    assert axes == {"mismatch_counts": ([1, 2], [1, 2, 3])}

    spec_path = tmp_path / "mm.json"
    spec_path.write_text(
        json.dumps({"kind": "dna_assay", "panel": "mismatch", "replicates": 4})
    )
    out_dir = tmp_path / "mm-results"
    code = main(
        ["sweep", "--spec", str(spec_path), "--grid", "mismatch_counts=[1,2],[1,2,3]",
         "--seed", "1", "--metrics", "n_sites", "--store", "jsonl", "--out", str(out_dir)]
    )
    assert code == 0
    sweep_out = capsys.readouterr().out
    assert "mismatch_counts" in sweep_out and "[1, 2, 3]" in sweep_out
    # Live and reloaded reports agree even for tuple-valued axes.
    assert main(["report", "--store", str(out_dir), "--metrics", "n_sites"]) == 0
    report_out = capsys.readouterr().out
    assert "[1, 2, 3]" in report_out


def test_report_missing_store_exits_cleanly(tmp_path):
    with pytest.raises(SystemExit, match="results.jsonl"):
        main(["report", "--store", str(tmp_path / "nowhere")])


# ---------------------------------------------------------------------------
# repro analyze
# ---------------------------------------------------------------------------
@pytest.fixture()
def analyzed_campaign(small_spec_file, tmp_path):
    out = tmp_path / "campaign"
    argv = ["sweep", "--spec", str(small_spec_file),
            "--grid", "concentration=1e-7,1e-6,1e-5", "--replicates", "2",
            "--seed", "1", "--store", "jsonl", "--out", str(out)]
    assert main(argv) == 0
    return out


def test_analyze_lists_kinds(capsys):
    assert main(["analyze", "--list"]) == 0
    out = capsys.readouterr().out.split()
    assert out == ["detection", "dose_response", "fault_tolerance", "wafer_yield", "yield"]


def test_analyze_infers_dose_response(analyzed_campaign, capsys):
    capsys.readouterr()
    assert main(["analyze", str(analyzed_campaign)]) == 0
    out = capsys.readouterr().out
    assert "analysis: dose_response" in out
    assert "lod" in out and "dynamic_range_decades" in out


def test_analyze_json_is_bit_reproducible(analyzed_campaign, capsys):
    capsys.readouterr()
    assert main(["analyze", str(analyzed_campaign), "--json"]) == 0
    first = capsys.readouterr().out
    assert main(["analyze", str(analyzed_campaign), "--json"]) == 0
    second = capsys.readouterr().out
    assert first == second  # byte-identical across invocations
    payload = json.loads(first)
    assert payload["scalars"]["lod"] > 0
    assert payload["scalars"]["lod_ci_low"] <= payload["scalars"]["lod_ci_high"]


def test_analyze_markdown_and_out_file(analyzed_campaign, tmp_path, capsys):
    capsys.readouterr()
    target = tmp_path / "report.md"
    assert main(["analyze", str(analyzed_campaign), "--markdown",
                 "--out", str(target)]) == 0
    assert "written to" in capsys.readouterr().out
    assert "## Analysis: dose_response" in target.read_text()


def test_analyze_set_overrides_fields(analyzed_campaign, capsys):
    capsys.readouterr()
    assert main(["analyze", str(analyzed_campaign), "--analysis", "yield",
                 "--set", "metric=n_sites", "--set", "threshold=100", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["scalars"]["criterion"] == "n_sites >= 100"
    assert payload["scalars"]["yield"] == 1.0


def test_analyze_spec_file(analyzed_campaign, tmp_path, capsys):
    capsys.readouterr()
    spec = tmp_path / "analysis.json"
    spec.write_text(json.dumps({"kind": "detection", "target_fpr": 0.05}))
    assert main(["analyze", str(analyzed_campaign), "--spec", str(spec), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == "detection"
    assert payload["analysis"]["target_fpr"] == 0.05


def test_analyze_error_paths(analyzed_campaign, tmp_path):
    with pytest.raises(SystemExit, match="needs a campaign directory"):
        main(["analyze"])
    with pytest.raises(SystemExit, match="no results.jsonl"):
        main(["analyze", str(tmp_path / "ghost")])
    with pytest.raises(SystemExit, match="unknown analysis kind"):
        main(["analyze", str(analyzed_campaign), "--analysis", "anova"])
    with pytest.raises(SystemExit, match="--set expects"):
        main(["analyze", str(analyzed_campaign), "--set", "oops"])
    with pytest.raises(SystemExit, match="not both"):
        main(["analyze", str(analyzed_campaign), "--analysis", "yield",
              "--spec", str(analyzed_campaign / "manifest.json")])
    with pytest.raises(SystemExit, match="unknown fields"):
        main(["analyze", str(analyzed_campaign), "--set", "bogus=1"])


# ---------------------------------------------------------------------------
# repro trace
# ---------------------------------------------------------------------------
def test_trace_event_table(small_spec_file, capsys):
    assert main(["trace", "--spec", str(small_spec_file), "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "serial.din" in out and "WRITE_REG" in out and "seq.sample" in out


def test_trace_waveform(small_spec_file, capsys):
    assert main(["trace", "--spec", str(small_spec_file), "--seed", "3",
                 "--render", "waveform", "--width", "60"]) == 0
    out = capsys.readouterr().out
    assert "seq.state" in out and "|" in out


def test_trace_check_passes_clean(small_spec_file, capsys):
    assert main(["trace", "--spec", str(small_spec_file), "--seed", "3",
                 "--check"]) == 0
    assert "all invariants hold" in capsys.readouterr().out


def test_trace_corruption_fails_check_and_localizes(small_spec_file, capsys):
    code = main(["trace", "--spec", str(small_spec_file), "--seed", "3",
                 "--flip", "42,43", "--render", "bits", "--check"])
    assert code == 1
    out = capsys.readouterr().out
    assert "CORRUPT" in out and "^^" in out
    assert "readout FAILED" in out and "frames-intact" in out


def test_trace_out_jsonl_is_deterministic(small_spec_file, tmp_path, capsys):
    from repro.trace import TraceTable

    first = tmp_path / "a.jsonl"
    second = tmp_path / "b.jsonl"
    for path in (first, second):
        assert main(["trace", "--spec", str(small_spec_file), "--seed", "3",
                     "--out", str(path)]) == 0
    capsys.readouterr()
    assert first.read_bytes() == second.read_bytes()
    assert len(TraceTable.from_jsonl(first.read_text())) > 0


def test_trace_filters_and_renders_jsonl(small_spec_file, capsys):
    assert main(["trace", "--spec", str(small_spec_file), "--seed", "3",
                 "--kinds", "serial.frame", "--channels", "serial.",
                 "--render", "jsonl"]) == 0
    lines = capsys.readouterr().out.splitlines()
    assert json.loads(lines[0])["schema"] == 1


def test_trace_error_paths(tmp_path):
    with pytest.raises(SystemExit, match="no such file"):
        main(["trace", "--spec", str(tmp_path / "ghost.json")])
    with pytest.raises(SystemExit, match="--flip expects"):
        main(["trace", "--flip", "abc"])
