"""Electrochemical substrate: species, electrodes, redox cycling, loop."""

import numpy as np
import pytest

from repro.electrochem import (
    ALKALINE_PHOSPHATASE,
    FERROCENE,
    InterdigitatedElectrode,
    LabelledSurface,
    P_AMINOPHENOL,
    Potentiostat,
    RedoxCyclingSensor,
    RedoxSpecies,
)


class TestSpecies:
    def test_pap_parameters(self):
        assert P_AMINOPHENOL.electrons_transferred == 2
        assert P_AMINOPHENOL.diffusion_coefficient == pytest.approx(6e-10)

    def test_invalid_diffusion(self):
        with pytest.raises(ValueError):
            RedoxSpecies("x", -1.0, 1, 0.0)

    def test_invalid_electrons(self):
        with pytest.raises(ValueError):
            RedoxSpecies("x", 1e-9, 0, 0.0)

    def test_enzyme_turnover_michaelis_menten(self):
        enzyme = ALKALINE_PHOSPHATASE
        # At S = Km, rate = kcat/2.
        assert enzyme.turnover_rate(enzyme.k_m) == pytest.approx(enzyme.k_cat / 2)

    def test_enzyme_saturates(self):
        enzyme = ALKALINE_PHOSPHATASE
        assert enzyme.turnover_rate(100.0) == pytest.approx(enzyme.k_cat, rel=0.01)

    def test_enzyme_zero_substrate(self):
        assert ALKALINE_PHOSPHATASE.turnover_rate(0.0) == 0.0

    def test_enzyme_rejects_negative(self):
        with pytest.raises(ValueError):
            ALKALINE_PHOSPHATASE.turnover_rate(-1.0)


class TestElectrode:
    def test_areas(self):
        el = InterdigitatedElectrode(finger_width=1e-6, gap=1e-6,
                                     finger_length=100e-6, finger_pairs=25)
        assert el.metal_area == pytest.approx(2 * 25 * 1e-6 * 100e-6)
        assert el.footprint_area > el.metal_area

    def test_gap_count(self):
        el = InterdigitatedElectrode(finger_pairs=25)
        assert el.gap_count == 49

    def test_collection_efficiency_improves_with_tighter_gap(self):
        tight = InterdigitatedElectrode(finger_width=1e-6, gap=0.5e-6)
        loose = InterdigitatedElectrode(finger_width=1e-6, gap=3e-6)
        assert tight.collection_efficiency() > loose.collection_efficiency()

    def test_collection_efficiency_below_unity(self):
        assert InterdigitatedElectrode().collection_efficiency() < 1.0

    def test_cycling_gain_exceeds_one(self):
        assert InterdigitatedElectrode().cycling_gain() > 1.0

    def test_cycling_gain_grows_with_boundary_layer(self):
        el = InterdigitatedElectrode()
        assert el.cycling_gain(100e-6) > el.cycling_gain(20e-6)

    def test_double_layer_capacitance_positive(self):
        assert InterdigitatedElectrode().double_layer_capacitance > 0

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            InterdigitatedElectrode(finger_width=0.0)
        with pytest.raises(ValueError):
            InterdigitatedElectrode(finger_pairs=0)


class TestRedoxCyclingSensor:
    def test_current_linear_in_concentration(self):
        sensor = RedoxCyclingSensor()
        i1 = sensor.current(0.01) - sensor.background_current
        i2 = sensor.current(0.02) - sensor.background_current
        assert i2 == pytest.approx(2 * i1, rel=1e-9)

    def test_zero_concentration_gives_background(self):
        sensor = RedoxCyclingSensor(background_current=0.7e-12)
        assert sensor.current(0.0) == pytest.approx(0.7e-12)

    def test_paper_current_range_reachable(self):
        sensor = RedoxCyclingSensor()
        # Concentrations that bound the assay chemistry map into 1 pA-100 nA.
        assert sensor.current(1e-6) < 10e-12
        assert 10e-9 < sensor.current(0.2) < 500e-9

    def test_concentration_inverse(self):
        sensor = RedoxCyclingSensor()
        c = sensor.concentration_for_current(sensor.current(0.05))
        assert c == pytest.approx(0.05, rel=1e-9)

    def test_concentration_inverse_below_background(self):
        sensor = RedoxCyclingSensor()
        assert sensor.concentration_for_current(0.1e-12) == 0.0

    def test_bias_check_good(self):
        sensor = RedoxCyclingSensor()
        e0 = sensor.species.standard_potential_v
        assert sensor.check_bias(e0 + 0.3, e0 - 0.3)
        assert sensor.bias_ok

    def test_bias_check_bad_disables_cycling(self):
        sensor = RedoxCyclingSensor()
        e0 = sensor.species.standard_potential_v
        assert not sensor.check_bias(e0 + 0.3, e0 + 0.2)  # collector too high
        assert sensor.current(0.1) == sensor.background_current

    def test_amplification_factor_significant(self):
        # Redox cycling is the whole point: >10x over a single electrode.
        assert RedoxCyclingSensor().amplification_factor() > 10

    def test_single_electrode_current_smaller(self):
        sensor = RedoxCyclingSensor()
        assert sensor.single_electrode_current(0.1) < sensor.current(0.1)

    def test_shot_noise_scales(self):
        sensor = RedoxCyclingSensor()
        assert sensor.shot_noise_rms(1e-9, 1e3) > sensor.shot_noise_rms(1e-12, 1e3)

    def test_ferrocene_species_works(self):
        sensor = RedoxCyclingSensor(species=FERROCENE)
        assert sensor.current(0.1) > sensor.background_current


class TestLabelledSurface:
    def test_flux_linear_in_density(self):
        surface = LabelledSurface()
        assert surface.product_flux(2e16) == pytest.approx(2 * surface.product_flux(1e16))

    def test_flux_zero_for_bare_surface(self):
        assert LabelledSurface().product_flux(0.0) == 0.0

    def test_flux_magnitude(self):
        # Full occupancy at 3e16 /m^2 with AP labels: umol/(m^2 s) scale.
        flux = LabelledSurface().product_flux(3e16)
        assert 1e-7 < flux < 1e-4

    def test_rejects_negative_density(self):
        with pytest.raises(ValueError):
            LabelledSurface().product_flux(-1.0)

    def test_more_labels_more_flux(self):
        single = LabelledSurface(labels_per_target=1.0)
        double = LabelledSurface(labels_per_target=2.0)
        assert double.product_flux(1e16) == pytest.approx(2 * single.product_flux(1e16))


class TestPotentiostat:
    def test_static_error_small(self):
        loop = Potentiostat()
        assert abs(loop.static_error(0.5)) < 1e-3

    def test_electrode_voltage_close_to_target(self):
        loop = Potentiostat()
        assert loop.electrode_voltage(0.45) == pytest.approx(0.45, abs=1e-3)

    def test_recovery_time_positive(self):
        loop = Potentiostat()
        assert loop.recovery_time(1.0) > 0

    def test_recovery_faster_for_smaller_disturbance(self):
        loop = Potentiostat()
        assert loop.recovery_time(0.01) < loop.recovery_time(1.0)

    def test_recovery_zero_for_no_disturbance(self):
        assert Potentiostat().recovery_time(0.0) == 0.0

    def test_charging_current_peak(self):
        loop = Potentiostat()
        assert loop.charging_current_peak(1.0) > 0
