"""Analysis layer: ADC transfer characterisation, calibration reports."""

import numpy as np
import pytest

from repro.analysis import (
    ascii_histogram,
    calibration_report,
    characterize_adc,
)
from repro.neuro.array import NeuralArrayModel
from repro.neuro.culture import ArrayGeometry
from repro.pixel.sawtooth_adc import SawtoothAdc


class TestTransferAnalysis:
    @pytest.fixture(scope="class")
    def analysis(self):
        return characterize_adc(SawtoothAdc(), frame_s=4.0, rng=1)

    def test_slope_near_unity(self, analysis):
        assert analysis.loglog_slope == pytest.approx(1.0, abs=0.02)

    def test_usable_range_spans_paper_window(self, analysis):
        # >= 4 decades usable within 5% (paper: 1 pA - 100 nA ~ 5 decades,
        # with the top decade visibly compressed).
        assert analysis.usable_decades >= 4.0
        assert analysis.usable_low_a <= 2e-12

    def test_compression_at_top(self, analysis):
        top = analysis.rows[-1]
        assert top.relative_error < -0.05

    def test_rows_cover_sweep(self, analysis):
        currents = analysis.currents()
        assert currents[0] == pytest.approx(1e-12)
        assert currents[-1] == pytest.approx(100e-9)

    def test_counts_positive_across_range(self, analysis):
        assert all(row.count > 0 for row in analysis.rows)

    def test_worst_error_query(self, analysis):
        assert analysis.worst_error_in(1e-11, 1e-9) < 0.02
        with pytest.raises(ValueError):
            analysis.worst_error_in(1.0, 2.0)

    def test_dead_adc_rejected(self):
        dead = SawtoothAdc(leakage_a=1e-6)
        with pytest.raises(ValueError):
            characterize_adc(dead, rng=2)


class TestCalibrationReport:
    @pytest.fixture(scope="class")
    def report(self):
        array = NeuralArrayModel(ArrayGeometry(24, 24, 7.8e-6), rng=5)
        return calibration_report(array)

    def test_improvement_factor(self, report):
        assert report.improvement > 5

    def test_saturation_story(self, report):
        # Uncalibrated offsets saturate most of the x5600 chain;
        # calibration rescues the majority of pixels.
        assert report.saturated_fraction_uncalibrated > 0.5
        assert (report.saturated_fraction_calibrated
                < 0.5 * report.saturated_fraction_uncalibrated)

    def test_rows_render(self, report):
        rows = report.as_rows()
        assert len(rows) == 3

    def test_invalid_args(self):
        array = NeuralArrayModel(ArrayGeometry(8, 8, 7.8e-6), rng=6)
        with pytest.raises(ValueError):
            calibration_report(array, chain_gain=0.0)


class TestAsciiHistogram:
    def test_basic_render(self):
        text = ascii_histogram(np.random.default_rng(1).normal(0, 1, 500), bins=8)
        assert len(text.splitlines()) == 8
        assert "#" in text

    def test_log_axis(self):
        values = np.logspace(-12, -7, 200)
        text = ascii_histogram(values, bins=5, unit="A", log_x=True)
        assert "pA" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_histogram(np.array([]))

    def test_log_requires_positive(self):
        with pytest.raises(ValueError):
            ascii_histogram(np.array([-1.0, -2.0]), log_x=True)


class TestCalibrationReportIntervals:
    """The saturated fractions are binomial proportions over finitely
    many pixels; the report now says how finite."""

    @pytest.fixture(scope="class")
    def report(self):
        array = NeuralArrayModel(ArrayGeometry(16, 16, 7.8e-6), rng=9)
        return calibration_report(array)

    def test_pixel_count_recorded(self, report):
        assert report.n_pixels == 256

    def test_wilson_intervals_bracket_the_fractions(self, report):
        lo, hi = report.saturated_ci_uncalibrated
        assert lo <= report.saturated_fraction_uncalibrated <= hi
        lo, hi = report.saturated_ci_calibrated
        assert lo <= report.saturated_fraction_calibrated <= hi
        assert 0.0 <= lo and hi <= 1.0

    def test_small_array_intervals_are_wide(self, report):
        # 256 pixels: both CIs must be meaningfully wide (a few %).
        for lo, hi in (report.saturated_ci_uncalibrated, report.saturated_ci_calibrated):
            assert hi - lo > 0.02
