"""The 6-pin serial interface: framing, checksums, bit-level transport."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chip.serial_interface import (
    CHIP_TO_HOST,
    Command,
    Frame,
    FrameError,
    PINS,
    SerialLink,
    bits_to_bytes,
    bytes_to_bits,
    checksum,
    decode_frame,
    encode_frame,
    pack_counters,
    unpack_counters,
)


class TestFraming:
    def test_pin_count_is_six(self):
        assert len(PINS) == 6

    def test_encode_decode_roundtrip(self):
        frame = Frame(Command.WRITE_REG, 0x02, b"\x42")
        assert decode_frame(encode_frame(frame)) == frame

    def test_empty_payload(self):
        frame = Frame(Command.RUN_FRAME, 0x00)
        assert decode_frame(encode_frame(frame)) == frame

    def test_checksum_sums_to_zero(self):
        raw = encode_frame(Frame(Command.READ_REG, 0x05, b"\x01\x02"))
        assert sum(raw) & 0xFF == 0

    def test_checksum_function(self):
        data = b"\x10\x20\x30"
        assert (sum(data) + checksum(data)) & 0xFF == 0

    def test_bad_sof_rejected(self):
        raw = bytearray(encode_frame(Frame(Command.RESET, 0)))
        raw[0] = 0x00
        with pytest.raises(FrameError):
            decode_frame(bytes(raw))

    def test_corrupted_checksum_rejected(self):
        raw = bytearray(encode_frame(Frame(Command.RESET, 0)))
        raw[-1] ^= 0xFF
        with pytest.raises(FrameError):
            decode_frame(bytes(raw))

    def test_truncated_frame_rejected(self):
        raw = encode_frame(Frame(Command.READ_COUNTERS, 0, b"\x01\x02\x03"))
        with pytest.raises(FrameError):
            decode_frame(raw[:-2])

    def test_unknown_command_rejected(self):
        body = bytes([0xA5, 0xEE, 0x00, 0x00])
        raw = body + bytes([checksum(body)])
        with pytest.raises(FrameError):
            decode_frame(raw)

    def test_invalid_address(self):
        with pytest.raises(FrameError):
            Frame(Command.WRITE_REG, 0x1FF)

    @given(
        cmd=st.sampled_from(list(Command)),
        addr=st.integers(min_value=0, max_value=0xFF),
        payload=st.binary(min_size=0, max_size=64),
    )
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_property(self, cmd, addr, payload):
        frame = Frame(cmd, addr, payload)
        assert decode_frame(encode_frame(frame)) == frame


class TestBitLevel:
    def test_bits_roundtrip(self):
        data = b"\xa5\x01\xff\x00"
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_msb_first(self):
        assert bytes_to_bits(b"\x80")[0] == 1
        assert bytes_to_bits(b"\x01")[-1] == 1

    def test_non_byte_multiple_rejected(self):
        with pytest.raises(FrameError):
            bits_to_bytes([0] * 7)

    def test_non_binary_rejected(self):
        with pytest.raises(FrameError):
            bits_to_bytes([0, 1, 2, 0, 0, 0, 0, 0])

    @given(st.binary(min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_bits_roundtrip_property(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data


class TestLink:
    def test_transfer_clean(self):
        link = SerialLink()
        frame = Frame(Command.WRITE_REG, 0x01, b"\x10")
        assert link.transfer(frame) == frame
        # Both sides of the wire crossing are recorded.
        assert [(d, stage) for d, stage, _ in link.transcript] == [
            ("->", "sent"),
            ("->", "received"),
        ]
        sent, received = link.transcript[0][2], link.transcript[1][2]
        assert sent == received == encode_frame(frame)

    def test_transcript_shows_corruption(self):
        # The injected flip is visible as a sent/received byte diff.
        link = SerialLink()
        frame = Frame(Command.WRITE_REG, 0x01, b"\x10")
        with pytest.raises(FrameError):
            link.transfer(frame, flip_bits=[13])
        sent, received = link.transcript[0][2], link.transcript[1][2]
        assert sent == encode_frame(frame)
        assert sent != received
        assert received[13 // 8] == sent[13 // 8] ^ (1 << (7 - 13 % 8))

    def test_single_bit_flip_caught(self):
        link = SerialLink()
        frame = Frame(Command.WRITE_REG, 0x01, b"\x10")
        with pytest.raises(FrameError):
            link.transfer(frame, flip_bits=[13])

    def test_every_bit_position_protected(self):
        # Flip each bit in turn: checksum or structure must catch it.
        frame = Frame(Command.READ_REG, 0x03, b"\x55")
        n_bits = len(bytes_to_bits(encode_frame(frame)))
        caught = 0
        for position in range(n_bits):
            link = SerialLink()
            try:
                link.transfer(frame, flip_bits=[position])
            except FrameError:
                caught += 1
        assert caught == n_bits

    def test_double_flip_in_same_byte_may_pass_structure_not_sum(self):
        # Two flips in different bytes still break the checksum unless
        # they cancel; verify detection for a non-cancelling pair.
        link = SerialLink()
        frame = Frame(Command.READ_REG, 0x03, b"\x55")
        with pytest.raises(FrameError):
            link.transfer(frame, flip_bits=[8, 17])

    def test_flip_out_of_range(self):
        link = SerialLink()
        with pytest.raises(IndexError):
            link.transfer(Frame(Command.RESET, 0), flip_bits=[10_000])

    def test_transfer_time(self):
        link = SerialLink(clock_hz=1e6)
        frame = Frame(Command.RESET, 0)
        assert link.transfer_time_s(frame) == pytest.approx(5 * 8 / 1e6)

    def test_respond_builds_frame_without_logging(self):
        # respond() only constructs the frame; the wire crossing (and
        # its transcript entries) happen in transfer(direction="<-").
        link = SerialLink()
        frame = link.respond(b"\x01\x02")
        assert frame.payload == b"\x01\x02"
        assert link.transcript == []
        link.transfer(frame, direction=CHIP_TO_HOST)
        assert [(d, stage) for d, stage, _ in link.transcript] == [
            ("<-", "sent"),
            ("<-", "received"),
        ]


class TestCounterPacking:
    def test_pack_unpack_roundtrip(self):
        counts = [0, 1, 255, 65535, 2**24 - 1]
        assert unpack_counters(pack_counters(counts)) == counts

    def test_pack_rejects_oversized(self):
        with pytest.raises(ValueError):
            pack_counters([2**24])

    def test_pack_rejects_negative(self):
        with pytest.raises(ValueError):
            pack_counters([-1])

    def test_unpack_rejects_ragged(self):
        with pytest.raises(ValueError):
            unpack_counters(b"\x01\x02")

    def test_non_byte_width_rejected(self):
        with pytest.raises(ValueError):
            pack_counters([1], bits_per_counter=20)

    @given(st.lists(st.integers(min_value=0, max_value=2**24 - 1), min_size=0, max_size=128))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, counts):
        assert unpack_counters(pack_counters(counts)) == counts
