"""Executor parity: serial / thread / process are bit-identical per point.

The acceptance bar for the campaign subsystem: a ≥64-point campaign
(grid × replicates) produces bit-identical per-point ResultSets under
every executor, at any worker count, on both compute backends.
"""

import numpy as np
import pytest

from repro.campaigns import (
    CampaignSpec,
    MemoryResultStore,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
    run_campaign,
)
from repro.experiments import DnaAssaySpec, Runner, ScreeningSpec

BASE = DnaAssaySpec(probe_count=4, replicates=4, target_subset=(0, 1))
# 4 concentrations × 16 replicates = 64 points (grid × replicates).
CAMPAIGN = CampaignSpec(
    base=BASE,
    grid={"concentration": (1e-8, 1e-7, 1e-6, 1e-5)},
    replicates=16,
    name="parity-64",
)


def _jsons(result):
    return [r.to_json() for r in result.results()]


@pytest.fixture(scope="module")
def serial_object():
    return run_campaign(CAMPAIGN, seed=11, executor="serial")


@pytest.fixture(scope="module")
def serial_vectorized():
    return run_campaign(CAMPAIGN, seed=11, executor="serial", backend="vectorized")


def test_campaign_has_at_least_64_points(serial_object):
    assert len(serial_object) == CAMPAIGN.n_points == 64


@pytest.mark.parametrize("workers", [1, 3])
def test_thread_matches_serial_object_backend(serial_object, workers):
    threaded = run_campaign(CAMPAIGN, seed=11, executor="thread", workers=workers)
    assert _jsons(threaded) == _jsons(serial_object)


@pytest.mark.parametrize("workers", [1, 2, 3])
def test_process_matches_serial_object_backend(serial_object, workers):
    processed = run_campaign(CAMPAIGN, seed=11, executor="process", workers=workers)
    assert _jsons(processed) == _jsons(serial_object)


def test_thread_and_process_match_serial_vectorized_backend(serial_vectorized):
    threaded = run_campaign(
        CAMPAIGN, seed=11, executor="thread", workers=4, backend="vectorized"
    )
    processed = run_campaign(
        CAMPAIGN, seed=11, executor="process", workers=2, backend="vectorized"
    )
    reference = _jsons(serial_vectorized)
    assert _jsons(threaded) == reference
    assert _jsons(processed) == reference


def test_backends_differ_but_only_within_tolerance_semantics(serial_object, serial_vectorized):
    """Sanity: the two backends consume streams differently, so the
    campaign runs are *not* expected to be bitwise-equal across
    backends — only within each backend."""
    assert _jsons(serial_object) != _jsons(serial_vectorized)
    assert [r.metrics["backend"] for r in serial_vectorized.results()] == ["vectorized"] * 64


def test_replicate_zero_matches_plain_runner(serial_object):
    alone = Runner(seed=11).run(BASE.replace(concentration=1e-8))
    assert serial_object.results()[0].to_json() == alone.without_artifacts().to_json()


def test_replicates_actually_vary(serial_object):
    counts = [tuple(r.column("count")) for r in serial_object.results()[:16]]
    assert len(set(counts)) == 16  # same spec, 16 seeds, 16 different chips


def test_results_come_back_in_plan_order_despite_parallel_completion():
    result = run_campaign(CAMPAIGN, seed=11, executor="process", workers=3)
    metas = result.store.point_metas()
    ordered = sorted(metas, key=lambda m: m["point"])
    assert [m["point"] for m in ordered] == list(range(64))
    assert result.manifest["points"][5]["point"] == 5
    assert all(m["wall_s"] > 0 for m in metas)


def test_campaign_backend_field_and_override():
    campaign = CampaignSpec(base=BASE, grid={"concentration": (1e-6,)}, backend="vectorized")
    from_field = run_campaign(campaign, seed=2)
    assert from_field.results()[0].metrics["backend"] == "vectorized"
    overridden = run_campaign(campaign, seed=2, backend="object")
    assert overridden.results()[0].metrics["backend"] == "object"


def test_serial_executor_rejects_multiple_workers():
    with pytest.raises(ValueError, match="one worker"):
        SerialExecutor(workers=2)
    assert make_executor("serial").name == "serial"
    assert make_executor("thread", workers=2).workers == 2
    assert make_executor("process", workers=2).workers == 2
    with pytest.raises(ValueError, match="unknown executor"):
        make_executor("gpu")


def test_runner_cache_is_bounded():
    from collections import OrderedDict

    from repro.campaigns.executors import MAX_CACHED_RUNNERS, _cached_runner

    runners = OrderedDict()
    for seed in range(MAX_CACHED_RUNNERS * 3):
        _cached_runner(runners, Runner, seed)
        assert len(runners) <= MAX_CACHED_RUNNERS
    # Most-recent seeds survive; refetching an evicted one just rebuilds.
    assert max(runners) == MAX_CACHED_RUNNERS * 3 - 1
    assert _cached_runner(runners, Runner, 0).seed == 0


@pytest.mark.parametrize("cls", [ThreadExecutor, ProcessExecutor])
def test_parallel_executors_reject_nonpositive_workers(cls):
    with pytest.raises(ValueError, match="workers must be >= 1"):
        cls(workers=0)
    with pytest.raises(ValueError, match="workers must be >= 1"):
        cls(workers=-3)
    assert cls().workers >= 1  # None -> all cores


def test_make_executor_passes_instances_through():
    executor = ThreadExecutor(workers=2)
    assert make_executor(executor) is executor
    assert make_executor(executor, workers=2) is executor  # agreeing count: fine
    with pytest.raises(ValueError, match="conflicts with the provided"):
        make_executor(executor, workers=4)


def test_process_executor_rejects_inputs_and_runner_factory():
    plan = CampaignSpec(base=ScreeningSpec(library_size=500)).compile(seed=0)
    executor = ProcessExecutor(workers=1)
    # Eagerly — at run() call time, not first iteration — so
    # run_campaign rejects bad arguments before the store touches disk.
    with pytest.raises(ValueError, match="process boundaries"):
        executor.run(plan, inputs={"library": object()})
    with pytest.raises(ValueError, match="clones fresh Runners"):
        executor.run(plan, runner_factory=Runner)


def test_thread_executor_rejects_shared_runner_factory():
    """A shared Runner would race on its per-run state across threads."""
    plan = CampaignSpec(base=ScreeningSpec(library_size=500)).compile(seed=0)
    with pytest.raises(ValueError, match="per-thread Runners"):
        ThreadExecutor(workers=2).run(plan, runner_factory=lambda seed: Runner(seed))


def test_bad_executor_arguments_never_touch_an_existing_store(tmp_path):
    """The data-loss guard: a finalized campaign must survive a rerun
    that dies on setup validation, even with overwrite=True."""
    campaign = CampaignSpec(base=ScreeningSpec(library_size=500))
    out = tmp_path / "precious"
    run_campaign(campaign, seed=1, store="jsonl", out=out)
    before = (out / "results.jsonl").read_text()
    assert before and (out / "manifest.json").exists()
    with pytest.raises(ValueError, match="process boundaries"):
        run_campaign(
            campaign, seed=1, executor="process", store="jsonl", out=out,
            overwrite=True, inputs={"library": object()},
        )
    with pytest.raises(ValueError, match="unknown backend"):
        run_campaign(
            campaign, seed=1, store="jsonl", out=out, overwrite=True,
            backend="vectorised",  # typo
        )
    with pytest.raises(ValueError, match="does not support backend"):
        run_campaign(
            campaign, seed=1, store="jsonl", out=out, overwrite=True,
            backend="vectorized",  # screening is object-only
        )
    assert (out / "results.jsonl").read_text() == before
    assert (out / "manifest.json").exists()


def test_thread_executor_accepts_injected_inputs():
    from repro.screening.compounds import CompoundLibrary

    library = CompoundLibrary.generate(size=500, viable_rate=1e-3, rng=7)
    plan = CampaignSpec(
        base=ScreeningSpec(library_size=500, viable_rate=1e-3),
        grid={"cmos": (False, True)},
    ).compile(seed=0)
    outcomes = list(ThreadExecutor(workers=2).run(plan, inputs={"library": library}))
    assert all(o.result.artifacts["library"] is library for o in outcomes)


def test_memory_store_keeps_artifacts_for_in_process_executors():
    campaign = CampaignSpec(base=BASE, grid={"concentration": (1e-6,)})
    store = MemoryResultStore()
    result = run_campaign(campaign, seed=1, executor="serial", store=store)
    assert result.store is store
    assert "chip" in store.outcomes()[0].result.artifacts
    # ... while process results are artifact-free by construction.
    processed = run_campaign(campaign, seed=1, executor="process", workers=1)
    assert processed.results()[0].artifacts == {}
