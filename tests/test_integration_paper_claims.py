"""The paper's headline quantitative claims, each as one test.

These are the acceptance tests of the reproduction: every numeric
statement in the DATE 2005 text is checked against the behavioural
models end to end.
"""

import numpy as np
import pytest

from repro import (
    CompoundLibrary,
    DnaMicroarrayChip,
    MicroarrayAssay,
    NeuralRecordingChip,
    ProbeLayout,
    Sample,
    SawtoothAdc,
    ScreeningFunnel,
)
from repro.analysis import characterize_adc
from repro.chip.sequencer import NEURO_SCAN
from repro.neuro import (
    ArrayGeometry,
    CellChipJunction,
    Culture,
    HodgkinHuxleyNeuron,
)
from repro.neuro.array import NeuralArrayModel


class TestSection2DnaChip:
    def test_claim_current_range_1pa_to_100na(self):
        """'CMOS chips ... detect currents between 1 pA and 100 nA per
        sensor' — the ADC fires and counts across the full range."""
        adc = SawtoothAdc()
        for current in (1e-12, 100e-9):
            assert adc.count_in_frame(current, 4.0, rng=1) > 0

    def test_claim_frequency_approximately_proportional(self):
        """'The measured frequency is approximately proportional to the
        sensor current' — slope ~1 with >= 4 usable decades."""
        analysis = characterize_adc(SawtoothAdc(), frame_s=4.0, rng=2)
        assert analysis.loglog_slope == pytest.approx(1.0, abs=0.02)
        assert analysis.usable_decades >= 4.0

    def test_claim_16x8_array_with_periphery(self):
        """'8x16 sensor array including peripheral circuitry ... and 6
        pin interface' — the full chip assembles and runs E2E."""
        chip = DnaMicroarrayChip(rng=3)
        assert len(chip.pixels) == 128
        assert chip.specs.pin_count == 6
        assert chip.configure_bias(0.45, -0.25)
        chip.auto_calibrate(frame_s=0.05, rng=4)
        layout = ProbeLayout.random_panel(8, replicates=16, rng=5)
        sample = Sample.for_probes(layout.probes(), 1e-5, subset=[0, 1])
        result = MicroarrayAssay(layout).run(sample)
        counts = chip.measure_assay(result, frame_s=1.0, rng=6)
        assert chip.read_counters_serial() == [int(c) for c in counts.reshape(-1)]

    def test_claim_hybridization_match_vs_mismatch(self):
        """Fig. 2: 'double-stranded DNA ... at the match positions, and
        single-stranded DNA at the mismatch sites' after washing."""
        layout = ProbeLayout.random_panel(8, replicates=16, rng=7)
        sample = Sample.for_probes(layout.probes(), 1e-5, subset=[0, 1])
        result = MicroarrayAssay(layout).run(sample)
        assert result.discrimination_ratio() > 10

    def test_claim_process_is_half_micron_5v(self):
        """Fig. 4 caption: Lmin = 0.5 um, tox = 15 nm, VDD = 5 V."""
        chip = DnaMicroarrayChip(rng=8)
        assert chip.specs.process.l_min == pytest.approx(0.5e-6)
        assert chip.specs.process.t_ox == pytest.approx(15e-9)
        assert chip.specs.process.vdd == 5.0


class TestSection3NeuroChip:
    def test_claim_junction_amplitudes_100uv_to_5mv(self, hh_run):
        """'the maximum signal amplitudes are between 100 uV and 5 mV'
        across the stated 10-100 um neuron diameters."""
        peaks = []
        for diameter in (10e-6, 20e-6, 50e-6, 100e-6):
            junction = CellChipJunction(cell_diameter=diameter)
            peaks.append(junction.junction_voltage(hh_run).peak_abs())
        assert min(peaks) > 20e-6  # small cells near/below the 100 uV edge
        assert max(peaks) < 5.5e-3
        assert any(100e-6 <= p <= 5e-3 for p in peaks)

    def test_claim_128x128_at_7p8um_in_1mm2(self):
        """'128x128 positions within a total sensor area of 1mm x 1mm
        ... pitch of 7.8 um'."""
        chip = NeuralRecordingChip(rng=9)
        assert chip.geometry.rows == chip.geometry.cols == 128
        assert chip.geometry.width == pytest.approx(1e-3, rel=0.01)
        assert chip.geometry.height == pytest.approx(1e-3, rel=0.01)

    def test_claim_every_cell_monitored(self):
        """'the chosen pitch of 7.8 um guarantees that each cell is
        monitored independent of its individual position'."""
        culture = Culture.random(150, ArrayGeometry(128, 128, 7.8e-6),
                                 diameter_range=(10e-6, 100e-6), rng=10)
        assert culture.coverage_fraction() == 1.0

    def test_claim_2k_frames_per_second_timing(self):
        """'Full frame rate is 2k samples/s' with 128 rows, 16 channels
        and the 8-to-1 multiplexer; 4 MHz / 32 MHz bandwidths support it."""
        assert NEURO_SCAN.frame_rate_hz == 2000.0
        assert NEURO_SCAN.mux_depth == 8
        assert NEURO_SCAN.channel_pixel_rate_hz == pytest.approx(2.048e6)
        assert NEURO_SCAN.settling_ok(4e6)
        assert NEURO_SCAN.settling_ok(32e6)

    def test_claim_calibration_equalises_currents(self):
        """'all sensor transistors M1 within a row provide the same
        current when selected independent of their individual device
        parameters' — spread collapses after calibration."""
        array = NeuralArrayModel(ArrayGeometry(32, 32, 7.8e-6), rng=11)
        unc = array.uncalibrated_offset_currents()
        array.calibrate()
        cal = array.offset_currents()
        assert np.std(cal) < 0.2 * np.std(unc)

    def test_claim_total_gain_5600(self):
        """Fig. 6 annotations: x100, x7 on-chip, x4, x2 off-chip."""
        from repro.neuro.readout_chain import build_readout_chain

        assert build_readout_chain(rng=12).nominal_gain == pytest.approx(5600.0)

    def test_claim_end_to_end_recording(self):
        """The whole Section 3 pipeline: neurons -> cleft -> pixels ->
        chain -> recorded spikes at 2 kframe/s."""
        chip = NeuralRecordingChip(geometry=ArrayGeometry(32, 32, 7.8e-6), rng=13)
        chip.calibrate()
        culture = Culture.random(2, chip.geometry, diameter_range=(50e-6, 70e-6), rng=14)
        result = chip.record_culture(culture, duration_s=0.05, firing_rate_hz=60.0, rng=15)
        assert result.electrode_movie.frame_rate_hz == 2000.0
        row, col = result.best_pixel_for(0)
        peak = result.electrode_movie.pixel_trace(row, col).peak_abs()
        assert 50e-6 < peak < 5e-3


class TestSection1Funnel:
    def test_claim_fig1_monotone_economics(self):
        """Fig. 1 axes: costs/datapoint rises, datapoints/day falls
        through the four stages."""
        library = CompoundLibrary.generate(size=20_000, viable_rate=3e-4, rng=16)
        result = ScreeningFunnel().run(library, rng=17)
        assert result.monotone_cost_increase()
        assert result.monotone_throughput_decrease()

    def test_claim_funnel_attrition(self):
        """'identify one (combination of) compound(s) out of millions'
        — the funnel reduces the library by orders of magnitude."""
        library = CompoundLibrary.generate(size=50_000, viable_rate=2e-4, rng=18)
        result = ScreeningFunnel().run(library, rng=19)
        assert result.survivors <= 100
        assert result.surviving_viable >= 1
