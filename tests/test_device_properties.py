"""Hypothesis property tests on device-model invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.process import C5_PROCESS
from repro.devices.capacitor import Capacitor
from repro.devices.comparator import Comparator
from repro.devices.dac import ResistorStringDac
from repro.devices.mosfet import Mosfet
from repro.devices.switches import MosSwitch


class TestMosfetProperties:
    @given(
        vgs=st.floats(min_value=0.0, max_value=5.0),
        vds=st.floats(min_value=0.05, max_value=5.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_current_non_negative_forward(self, vgs, vds):
        device = Mosfet(2e-6, 1e-6)
        assert device.ids(vgs, vds) >= 0.0

    @given(
        vgs=st.floats(min_value=0.3, max_value=4.0),
        scale=st.floats(min_value=1.1, max_value=8.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_current_scales_with_width(self, vgs, scale):
        narrow = Mosfet(1e-6, 1e-6)
        wide = Mosfet(scale * 1e-6, 1e-6)
        i_narrow = narrow.ids(vgs, 2.5)
        if i_narrow > 1e-18:
            assert wide.ids(vgs, 2.5) == pytest.approx(scale * i_narrow, rel=0.01)

    @given(vgs=st.floats(min_value=0.5, max_value=4.0))
    @settings(max_examples=40, deadline=None)
    def test_gm_consistent_with_finite_difference(self, vgs):
        device = Mosfet(2e-6, 1e-6)
        gm = device.gm(vgs, 2.5)
        delta = 1e-4
        fd = (device.ids(vgs + delta, 2.5) - device.ids(vgs - delta, 2.5)) / (2 * delta)
        assert gm == pytest.approx(fd, rel=0.01)


class TestComparatorProperties:
    @given(
        threshold=st.floats(min_value=0.1, max_value=4.0),
        hysteresis=st.floats(min_value=0.0, max_value=0.5),
        v=st.floats(min_value=-1.0, max_value=5.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_hysteresis_band_consistency(self, threshold, hysteresis, v):
        comp = Comparator(threshold_v=threshold, hysteresis_v=hysteresis)
        # Above the rising threshold: output high regardless of state.
        if v > threshold:
            assert comp.compare_static(v, state=False)
        # Below the falling threshold: output low regardless of state.
        if v <= threshold - hysteresis:
            assert not comp.compare_static(v, state=True)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_noisy_trip_levels_centered(self, seed):
        comp = Comparator(threshold_v=1.0, noise_rms_v=0.01)
        levels = [comp.trip_level(rng=seed * 100 + i) for i in range(50)]
        assert abs(np.mean(levels) - 1.0) < 0.01


class TestSwitchCapacitorProperties:
    @given(
        w=st.floats(min_value=0.5e-6, max_value=10e-6),
        l=st.floats(min_value=0.5e-6, max_value=5e-6),
        v=st.floats(min_value=0.0, max_value=3.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_channel_charge_non_negative_and_area_scaled(self, w, l, v):
        sw = MosSwitch(w, l)
        q = sw.channel_charge(v)
        assert q >= 0.0
        double = MosSwitch(2 * w, l)
        assert double.channel_charge(v) == pytest.approx(2 * q, rel=1e-9)

    @given(
        current=st.floats(min_value=1e-13, max_value=1e-6),
        dv=st.floats(min_value=0.1, max_value=3.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_charge_time_inverse_in_current(self, current, dv):
        cap = Capacitor(100e-15)
        t1 = cap.charge_time(current, dv)
        t2 = cap.charge_time(2 * current, dv)
        assert t2 == pytest.approx(t1 / 2, rel=1e-9)

    @given(
        g=st.floats(min_value=1e-16, max_value=1e-12),
        v=st.floats(min_value=0.1, max_value=3.0),
        t=st.floats(min_value=1e-6, max_value=10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_droop_bounded_by_initial_voltage(self, g, v, t):
        cap = Capacitor(100e-15, leakage_conductance_s=g)
        droop = cap.droop(v, t)
        assert 0.0 <= droop <= v + 1e-12


class TestDacProperties:
    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_always_monotone(self, seed):
        # Single-string DACs are monotone by construction, for any
        # resistor mismatch draw — verify the model preserves this.
        dac = ResistorStringDac.sample(rng=seed, bits=6, resistor_sigma=0.05)
        outputs = [dac.output(code) for code in range(64)]
        assert all(b > a for a, b in zip(outputs, outputs[1:]))

    @given(
        seed=st.integers(min_value=0, max_value=100),
        voltage=st.floats(min_value=0.0, max_value=5.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_code_for_voltage_within_one_lsb_ideal(self, seed, voltage):
        dac = ResistorStringDac.sample(rng=seed, bits=8, v_low=0.0, v_high=5.0,
                                       resistor_sigma=0.002)
        code = dac.code_for_voltage(voltage)
        assert abs(dac.output(code) - voltage) <= 3 * dac.lsb


class TestProcessProperties:
    def test_cox_from_tox(self):
        expected = 8.8541878128e-12 * 3.9 / 15e-9
        assert C5_PROCESS.c_ox == pytest.approx(expected)

    def test_scaled_process(self):
        half = C5_PROCESS.scaled(0.5)
        assert half.l_min == pytest.approx(0.25e-6)
        assert half.vdd == pytest.approx(2.5)
        assert half.t_ox == pytest.approx(7.5e-9)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            C5_PROCESS.scaled(0.0)

    @given(
        w=st.floats(min_value=0.5e-6, max_value=20e-6),
        l=st.floats(min_value=0.5e-6, max_value=20e-6),
    )
    @settings(max_examples=40, deadline=None)
    def test_pelgrom_sigma_decreases_with_area(self, w, l):
        base = C5_PROCESS.sigma_vth(w, l)
        bigger = C5_PROCESS.sigma_vth(2 * w, 2 * l)
        assert bigger == pytest.approx(base / 2, rel=1e-9)
