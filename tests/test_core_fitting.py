"""Fitting and linearity metrics."""

import numpy as np
import pytest

from repro.core.fitting import (
    linear_fit,
    loglog_slope,
    proportionality_error,
    snr_db,
    usable_dynamic_range,
)


class TestLinearFit:
    def test_exact_line(self):
        x = np.linspace(0, 10, 20)
        fit = linear_fit(x, 3 * x + 1)
        assert fit.gain == pytest.approx(3.0)
        assert fit.offset == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.max_abs_residual < 1e-9

    def test_noisy_line(self):
        rng = np.random.default_rng(1)
        x = np.linspace(0, 10, 200)
        y = 2 * x + rng.normal(0, 0.1, size=len(x))
        fit = linear_fit(x, y)
        assert fit.gain == pytest.approx(2.0, abs=0.05)
        assert fit.r_squared > 0.99

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            linear_fit(np.array([1.0]), np.array([1.0]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            linear_fit(np.arange(3.0), np.arange(4.0))


class TestLogLogSlope:
    def test_proportional_data_slope_one(self):
        x = np.logspace(-12, -7, 20)
        assert loglog_slope(x, 5e12 * x) == pytest.approx(1.0)

    def test_square_law_slope_two(self):
        x = np.logspace(0, 2, 10)
        assert loglog_slope(x, x**2) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            loglog_slope(np.array([1.0, -1.0]), np.array([1.0, 1.0]))


class TestProportionalityError:
    def test_perfectly_proportional(self):
        x = np.logspace(-12, -8, 10)
        errors = proportionality_error(x, 3.0 * x)
        assert np.allclose(errors, 0.0, atol=1e-12)

    def test_compression_localised_at_top(self):
        # Bottom decades exact, top point compressed 20%: the robust fit
        # must put the error at the top point, not spread it.
        x = np.logspace(-12, -8, 9)
        y = 1e13 * x
        y[-1] *= 0.8
        errors = proportionality_error(x, y)
        assert abs(errors[0]) < 0.01
        assert errors[-1] == pytest.approx(-0.2, abs=0.02)

    def test_rejects_zero_x(self):
        with pytest.raises(ValueError):
            proportionality_error(np.array([0.0, 1.0]), np.array([1.0, 2.0]))


class TestUsableDynamicRange:
    def test_full_range_when_ideal(self):
        x = np.logspace(-12, -7, 21)
        low, high, decades = usable_dynamic_range(x, 7.0 * x)
        assert low == pytest.approx(1e-12)
        assert high == pytest.approx(1e-7)
        assert decades == pytest.approx(5.0)

    def test_compressed_top_excluded(self):
        x = np.logspace(-12, -7, 21)
        y = 7.0 * x.copy()
        y[-4:] *= 0.8  # compress the top decade by 20%
        low, high, decades = usable_dynamic_range(x, y, max_rel_error=0.05)
        assert high < 1e-8 * 1.01
        assert decades == pytest.approx(np.log10(high / low), rel=1e-6)

    def test_all_bad_returns_nan(self):
        x = np.logspace(0, 1, 5)
        y = np.array([1.0, 100.0, 1.0, 100.0, 1.0])
        low, high, decades = usable_dynamic_range(x, y, max_rel_error=0.01)
        assert decades == pytest.approx(0.0, abs=0.5) or np.isnan(low)


class TestSnr:
    def test_20db(self):
        assert snr_db(1.0, 0.1) == pytest.approx(20.0)

    def test_zero_signal(self):
        assert snr_db(0.0, 1.0) == float("-inf")

    def test_rejects_zero_noise(self):
        with pytest.raises(ValueError):
            snr_db(1.0, 0.0)
