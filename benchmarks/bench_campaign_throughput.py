"""Campaign throughput: points/sec for serial vs thread vs process
executors, on the object and vectorized backends.

The campaign layer's perf claim is orchestration, not kernels: the same
plan, streamed through different executors, must scale with cores while
staying bit-identical.  This benchmark times a fixed dna_assay campaign
(concentration grid × chip replicates) through every executor × backend
combination and writes ``BENCH_campaigns.json`` via the shared
``benchmarks/_harness.py`` schema — records carry ``points_per_s`` and
process/thread records additionally carry ``speedup_vs_serial``.

Thread-executor numbers on the object backend are expected to hover
near 1× (GIL-bound Python loops); the process executor is the
multi-core path, and the CI campaigns-smoke job asserts its speedup on
a multi-core runner.  ``cpu_count`` is recorded in every record's meta
so single-core measurements are legible as such.

Run:  PYTHONPATH=src python benchmarks/bench_campaign_throughput.py \\
          [--quick] [--points N] [--workers N] [--out BENCH_campaigns.json] \\
          [--assert-process-speedup X [--assert-min-cores 4]]
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _harness import BenchSuite  # noqa: E402

from repro.campaigns import CampaignSpec, MemoryResultStore, run_campaign  # noqa: E402
from repro.experiments import BACKENDS, DnaAssaySpec  # noqa: E402

CONCENTRATIONS = (1e-8, 1e-7, 1e-6, 1e-5)
EXECUTOR_ORDER = ("serial", "thread", "process")

#: Per-point workloads.  ``small`` keeps the committed BENCH cheap to
#: regenerate; ``fig4`` is the paper-default assay (~4x the per-point
#: work), heavy enough that pool startup amortizes — what the CI
#: campaigns-smoke job times when asserting multi-core speedup.
BASES = {
    "small": DnaAssaySpec(probe_count=4, replicates=4, target_subset=(0, 1)),
    "fig4": DnaAssaySpec(probe_count=16, replicates=8, target_subset=(0, 1, 2, 3)),
}


def build_campaign(points: int, base: str = "small") -> CampaignSpec:
    """A dose-grid × chip-replicates campaign of exactly ``points``."""
    replicates = max(1, points // len(CONCENTRATIONS))
    return CampaignSpec(
        base=BASES[base],
        grid={"concentration": CONCENTRATIONS},
        replicates=replicates,
        name=f"bench-throughput-{base}",
    )


def bench_campaign_throughput(
    points: int = 32,
    workers: int | None = None,
    repeats: int = 1,
    base: str = "small",
    suite: BenchSuite | None = None,
) -> BenchSuite:
    suite = suite or BenchSuite("campaigns")
    campaign = build_campaign(points, base=base)
    n_points = campaign.n_points
    workers = workers or (os.cpu_count() or 1)
    base_spec = campaign.base
    for backend in BACKENDS:
        serial_wall = None
        for executor in EXECUTOR_ORDER:
            effective_workers = 1 if executor == "serial" else workers

            def run_once() -> None:
                run_campaign(
                    campaign,
                    seed=1,
                    executor=executor,
                    workers=effective_workers,
                    store=MemoryResultStore(),
                    backend=backend,
                )

            meta = {
                "executor": executor,
                "workers": effective_workers,
                "points": n_points,
                "base": base,
                "cpu_count": os.cpu_count() or 1,
            }
            _, record = suite.time(
                f"campaign_{executor}",
                run_once,
                backend=backend,
                rows=base_spec.rows,
                cols=base_spec.cols,
                repeats=repeats,
                **meta,
            )
            record.meta["points_per_s"] = n_points / record.wall_s
            if executor == "serial":
                serial_wall = record.wall_s
            elif serial_wall is not None:
                record.meta["speedup_vs_serial"] = serial_wall / record.wall_s
            label = f"{backend:>10s} × {executor:<7s}"
            extra = (
                f"  ({record.meta['speedup_vs_serial']:.2f}x vs serial)"
                if "speedup_vs_serial" in record.meta
                else ""
            )
            print(
                f"{label}: {n_points} points in {record.wall_s:.3f}s "
                f"= {record.meta['points_per_s']:7.1f} points/s{extra}"
            )
    return suite


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--points", type=int, default=32, help="campaign size (default 32)")
    parser.add_argument("--quick", action="store_true", help="12-point campaign, 1 repeat")
    parser.add_argument("--workers", type=int, default=None, help="parallel worker count")
    parser.add_argument("--repeats", type=int, default=1, help="best-of-N timing")
    parser.add_argument(
        "--base", choices=sorted(BASES), default="small", help="per-point workload"
    )
    parser.add_argument("--out", default="BENCH_campaigns.json", help="output JSON path")
    parser.add_argument(
        "--assert-process-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless process-executor speedup vs serial >= X (object backend)",
    )
    parser.add_argument(
        "--assert-min-cores",
        type=int,
        default=2,
        help="skip the speedup assertion below this many cores (default 2)",
    )
    args = parser.parse_args(argv)
    points = 12 if args.quick else args.points

    suite = bench_campaign_throughput(
        points=points, workers=args.workers, repeats=args.repeats, base=args.base
    )
    path = suite.write(args.out)
    print(f"\nwrote {path}")

    if args.assert_process_speedup is not None:
        cores = os.cpu_count() or 1
        if cores < args.assert_min_cores:
            print(
                f"skipping --assert-process-speedup: only {cores} core(s) "
                f"(< {args.assert_min_cores}); parallel speedup is not measurable here"
            )
            return 0
        process_records = [
            r
            for r in suite.records
            if r.backend == "object" and r.meta.get("executor") == "process"
        ]
        speedup = max(r.meta.get("speedup_vs_serial", 0.0) for r in process_records)
        print(f"process-executor speedup vs serial (object backend): {speedup:.2f}x")
        if speedup < args.assert_process_speedup:
            print(
                f"FAIL: expected >= {args.assert_process_speedup:.2f}x on {cores} cores",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
