"""Machine-readable timing harness for the benchmark suite.

The figure benchmarks print claim-vs-measured tables for humans; this
module gives the perf trajectory a machine-readable spine.  A
:class:`BenchSuite` times benchmark entry points, pairs object-vs-
vectorized runs of the same workload into speedups, and writes
everything to a ``BENCH_<label>.json`` (wall time, array size, backend,
speedup) that CI uploads as an artifact and regression tooling can diff
across commits.

Use from a benchmark module::

    suite = BenchSuite("engine")
    result, record = suite.time(
        "measure", run_it, backend="vectorized", rows=128, cols=128
    )
    suite.write("BENCH_engine.json")

or time existing pytest-benchmark style entry points standalone::

    suite.time_entry_points(bench_fig3_sawtooth_adc)

:class:`NullBenchmark` is the pytest-benchmark-compatible shim that
makes ``bench_*(benchmark)`` functions runnable without pytest.
"""

from __future__ import annotations

import inspect
import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

SCHEMA = "repro-bench/1"


@dataclass
class BenchRecord:
    """One timed benchmark invocation."""

    name: str
    backend: str
    rows: int = 0
    cols: int = 0
    n_chips: int = 1
    wall_s: float = 0.0
    repeats: int = 1
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def sites(self) -> int:
        return self.rows * self.cols * self.n_chips

    @property
    def size_label(self) -> str:
        label = f"{self.rows}x{self.cols}"
        if self.n_chips != 1:
            label += f"x{self.n_chips}"
        return label

    def as_dict(self) -> dict[str, Any]:
        data = asdict(self)
        data["sites"] = self.sites
        return data


class NullBenchmark:
    """Stand-in for the pytest-benchmark fixture: runs the callable
    once, records the wall time, returns the result."""

    def __init__(self) -> None:
        self.last_wall_s: Optional[float] = None

    def _timed(self, fn: Callable, *args: Any, **kwargs: Any) -> Any:
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        self.last_wall_s = time.perf_counter() - start
        return result

    def __call__(self, fn: Callable, *args: Any, **kwargs: Any) -> Any:
        return self._timed(fn, *args, **kwargs)

    def pedantic(
        self,
        fn: Callable,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        rounds: int = 1,
        iterations: int = 1,
        **_: Any,
    ) -> Any:
        return self._timed(fn, *args, **(kwargs or {}))


class BenchSuite:
    """Collects timed records and writes the BENCH JSON."""

    def __init__(self, label: str = "engine") -> None:
        self.label = label
        self.records: list[BenchRecord] = []

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def time(
        self,
        name: str,
        fn: Callable[[], Any],
        *,
        backend: str,
        rows: int = 0,
        cols: int = 0,
        n_chips: int = 1,
        repeats: int = 1,
        **meta: Any,
    ) -> tuple[Any, BenchRecord]:
        """Run ``fn`` ``repeats`` times, keep the best wall time (the
        standard low-noise estimator), return (last result, record)."""
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        best = float("inf")
        result: Any = None
        for _ in range(repeats):
            start = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - start)
        record = BenchRecord(
            name=name,
            backend=backend,
            rows=rows,
            cols=cols,
            n_chips=n_chips,
            wall_s=best,
            repeats=repeats,
            meta=dict(meta),
        )
        self.records.append(record)
        return result, record

    def time_entry_points(self, module: Any, backend: str = "object") -> list[BenchRecord]:
        """Time every ``bench_*`` callable of a benchmark module,
        passing a :class:`NullBenchmark` where the signature asks for
        the pytest fixture."""
        records = []
        for attr in sorted(dir(module)):
            if not attr.startswith("bench_"):
                continue
            fn = getattr(module, attr)
            if not callable(fn):
                continue
            takes_fixture = "benchmark" in inspect.signature(fn).parameters

            def invoke(fn=fn, takes_fixture=takes_fixture):
                return fn(NullBenchmark()) if takes_fixture else fn()

            _, record = self.time(
                f"{module.__name__}.{attr}", invoke, backend=backend
            )
            records.append(record)
        return records

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def speedups(self) -> dict[str, dict[str, float]]:
        """Pair object vs vectorized records of the same (name, size)
        and report object/vectorized wall-time ratios."""
        best: dict[tuple, dict[str, float]] = {}
        for record in self.records:
            key = (record.name, record.rows, record.cols, record.n_chips)
            slot = best.setdefault(key, {})
            slot[record.backend] = min(
                slot.get(record.backend, float("inf")), record.wall_s
            )
        out: dict[str, dict[str, float]] = {}
        for (name, rows, cols, n_chips), walls in sorted(best.items()):
            if "object" not in walls or "vectorized" not in walls:
                continue
            label = f"{name}@{rows}x{cols}" + (f"x{n_chips}" if n_chips != 1 else "")
            out[label] = {
                "object_s": walls["object"],
                "vectorized_s": walls["vectorized"],
                "speedup": walls["object"] / walls["vectorized"]
                if walls["vectorized"] > 0
                else float("inf"),
            }
        return out

    def speedup_at(self, name: str, rows: int, cols: int, n_chips: int = 1) -> Optional[float]:
        label = f"{name}@{rows}x{cols}" + (f"x{n_chips}" if n_chips != 1 else "")
        entry = self.speedups().get(label)
        return entry["speedup"] if entry else None

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA,
            "label": self.label,
            "records": [record.as_dict() for record in self.records],
            "speedups": self.speedups(),
        }

    def write(self, path: str | Path | None = None) -> Path:
        """Dump the suite to ``BENCH_<label>.json`` (or ``path``)."""
        target = Path(path) if path is not None else Path(f"BENCH_{self.label}.json")
        target.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return target

    @staticmethod
    def load(path: str | Path) -> dict[str, Any]:
        data = json.loads(Path(path).read_text())
        if data.get("schema") != SCHEMA:
            raise ValueError(f"{path} is not a {SCHEMA} file")
        return data
