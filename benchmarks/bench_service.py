"""Service cache benchmark: cold vs warm campaigns, overlap dedup.

The cache's perf claim is blunt: a re-submitted identical campaign must
cost file reads, not engine time.  This benchmark times one dna_assay
campaign three ways through a content-addressed
:class:`~repro.service.cache.ResultCache` —

* **cold** — empty cache directory, every point computed (and stored);
* **warm** — identical re-submission against the populated directory
  through a *fresh* cache instance, so every hit is a verified disk
  read, not an in-memory LRU hit;
* **overlap** — a second campaign whose grid shares half its
  concentrations with the first, the realistic many-clients workload;
  its meta records the dedup ratio (fraction of points served without
  engine recomputation).

Records land in ``BENCH_service.json`` via the shared
``benchmarks/_harness.py`` schema; warm records carry
``warm_speedup`` (cold wall / warm wall) and the CI service-smoke job
asserts it ≥ 10×.  An uncached baseline rides along so the cold run's
key-derivation + write overhead stays visible across commits.

Run:  PYTHONPATH=src python benchmarks/bench_service.py \\
          [--quick] [--points N] [--repeats N] [--out BENCH_service.json] \\
          [--assert-warm-speedup X] [--assert-dedup-ratio R]
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _harness import BenchSuite  # noqa: E402

from repro.campaigns import CampaignSpec, MemoryResultStore, run_campaign  # noqa: E402
from repro.experiments import DnaAssaySpec  # noqa: E402
from repro.service import ResultCache  # noqa: E402

#: Heavy enough per point (~15 ms engine time) that compute dominates
#: the warm path's verified disk reads (~0.7 ms) with a wide margin —
#: the asserted 10x floor holds even on slow CI runners.
BASE = DnaAssaySpec(probe_count=16, replicates=8, target_subset=(0, 1))
CONCENTRATIONS = (1e-8, 1e-7, 1e-6, 1e-5)
#: The overlap campaign shares exactly half its grid with the first.
OVERLAP_CONCENTRATIONS = (1e-6, 1e-5, 1e-4, 1e-3)


def build_campaign(points: int, concentrations: tuple = CONCENTRATIONS) -> CampaignSpec:
    replicates = max(1, points // len(concentrations))
    return CampaignSpec(
        base=BASE,
        grid={"concentration": concentrations},
        replicates=replicates,
        name="bench-service",
    )


def bench_service(
    points: int = 16,
    repeats: int = 1,
    suite: BenchSuite | None = None,
    cache_root: str | Path | None = None,
) -> BenchSuite:
    suite = suite or BenchSuite("service")
    campaign = build_campaign(points)
    overlap = build_campaign(points, OVERLAP_CONCENTRATIONS)
    n_points = campaign.n_points
    workdir = Path(cache_root) if cache_root else Path(tempfile.mkdtemp(prefix="bench-svc-"))
    owns_workdir = cache_root is None
    meta = {"points": n_points, "executor": "serial"}
    try:
        # Uncached baseline: what the engine alone costs.
        _, baseline = suite.time(
            "service_nocache",
            lambda: run_campaign(campaign, seed=1, store=MemoryResultStore()),
            backend="object",
            rows=BASE.rows,
            cols=BASE.cols,
            repeats=repeats,
            **meta,
        )

        # Cold: a fresh cache directory per repeat (a second repeat of
        # the same directory would measure the warm path).
        cold_dirs = iter(workdir / f"cold-{n}" for n in range(repeats))

        def run_cold():
            return run_campaign(
                campaign,
                seed=1,
                store=MemoryResultStore(),
                cache=ResultCache(root=next(cold_dirs)),
            )

        cold_result, cold = suite.time(
            "service_cold",
            run_cold,
            backend="object",
            rows=BASE.rows,
            cols=BASE.cols,
            repeats=repeats,
            **meta,
        )
        cold.meta["cache"] = cold_result.manifest["cache"]
        cold.meta["overhead_vs_nocache"] = cold.wall_s / baseline.wall_s

        # Warm: identical re-submission; a fresh ResultCache instance
        # per run makes every hit a verified disk read.
        populated = workdir / "cold-0"

        def run_warm():
            return run_campaign(
                campaign,
                seed=1,
                store=MemoryResultStore(),
                cache=ResultCache(root=populated),
            )

        warm_result, warm = suite.time(
            "service_warm",
            run_warm,
            backend="object",
            rows=BASE.rows,
            cols=BASE.cols,
            repeats=repeats,
            **meta,
        )
        warm.meta["cache"] = warm_result.manifest["cache"]
        assert warm_result.manifest["cache"]["computed"] == 0, "warm run hit the engine"
        warm.meta["warm_speedup"] = cold.wall_s / warm.wall_s

        # Overlap: half the grid is already cached — the many-clients
        # sweep workload.  Dedup ratio = points served without engine
        # recomputation.
        def run_overlap():
            return run_campaign(
                overlap,
                seed=1,
                store=MemoryResultStore(),
                cache=ResultCache(root=populated),
            )

        overlap_result, lap = suite.time(
            "service_overlap",
            run_overlap,
            backend="object",
            rows=BASE.rows,
            cols=BASE.cols,
            repeats=1,  # a repeat would find its own writes
            **meta,
        )
        block = overlap_result.manifest["cache"]
        lap.meta["cache"] = block
        lap.meta["dedup_ratio"] = (block["hits"] + block["replayed"]) / block["n_points"]

        print(f"  nocache: {n_points} points in {baseline.wall_s:.3f}s")
        print(
            f"     cold: {n_points} points in {cold.wall_s:.3f}s "
            f"({cold.meta['overhead_vs_nocache']:.2f}x nocache)"
        )
        print(
            f"     warm: {n_points} points in {warm.wall_s:.3f}s "
            f"({warm.meta['warm_speedup']:.1f}x faster than cold)"
        )
        print(
            f"  overlap: {block['hits']} hits / {block['computed']} computed "
            f"(dedup ratio {lap.meta['dedup_ratio']:.2f})"
        )
    finally:
        if owns_workdir:
            shutil.rmtree(workdir, ignore_errors=True)
    return suite


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--points", type=int, default=16, help="campaign size (default 16)")
    parser.add_argument("--quick", action="store_true", help="8-point campaign, 1 repeat")
    parser.add_argument("--repeats", type=int, default=1, help="best-of-N timing")
    parser.add_argument("--out", default="BENCH_service.json", help="output JSON path")
    parser.add_argument(
        "--assert-warm-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless warm wall time beats cold by >= X",
    )
    parser.add_argument(
        "--assert-dedup-ratio",
        type=float,
        default=None,
        metavar="R",
        help="fail unless the overlap campaign's dedup ratio >= R",
    )
    args = parser.parse_args(argv)
    points = 8 if args.quick else args.points
    repeats = 1 if args.quick else args.repeats
    suite = bench_service(points=points, repeats=repeats)
    path = suite.write(args.out)
    print(f"\nwrote {path}")
    by_name = {record.name: record for record in suite.records}
    if args.assert_warm_speedup is not None:
        speedup = by_name["service_warm"].meta["warm_speedup"]
        if speedup < args.assert_warm_speedup:
            print(
                f"FAIL: warm speedup {speedup:.1f}x < required "
                f"{args.assert_warm_speedup:.1f}x",
                file=sys.stderr,
            )
            return 1
        print(f"warm speedup {speedup:.1f}x >= {args.assert_warm_speedup:.1f}x")
    if args.assert_dedup_ratio is not None:
        ratio = by_name["service_overlap"].meta["dedup_ratio"]
        if ratio < args.assert_dedup_ratio:
            print(
                f"FAIL: dedup ratio {ratio:.2f} < required {args.assert_dedup_ratio:.2f}",
                file=sys.stderr,
            )
            return 1
        print(f"dedup ratio {ratio:.2f} >= {args.assert_dedup_ratio:.2f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
