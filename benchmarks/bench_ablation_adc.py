"""Ablation — where the ADC's five-decade dynamic range breaks.

Sweeps the three design parameters of the Fig. 3 converter and reports
the usable decades (5% proportionality error) for each: integration
capacitor, dead time (comparator delay + reset pulse), and node
leakage.  Also reproduces the frame-length trade-off the paper's
counter scheme implies (long frames for small currents).
"""

import pytest

from repro.analysis import characterize_adc
from repro.core import render_kv, render_table, units
from repro.core.units import fF, ns
from repro.devices.capacitor import Capacitor
from repro.devices.comparator import Comparator
from repro.pixel import SawtoothAdc


def make_adc(cint=100 * fF, delay=100 * ns, leakage=0.0):
    return SawtoothAdc(
        cint=Capacitor(cint),
        comparator=Comparator(threshold_v=1.0, delay_s=50 * ns),
        tau_delay_s=delay,
        leakage_a=leakage,
    )


def bench_ablation_dead_time(benchmark):
    """Longer reset pulses compress the top of the range."""

    def run():
        rows = []
        for delay in (25 * ns, 100 * ns, 400 * ns, 1600 * ns):
            analysis = characterize_adc(make_adc(delay=delay), frame_s=4.0, rng=51)
            rows.append((delay, analysis.usable_decades,
                         analysis.rows[-1].relative_error))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(render_table(
        ["tau_delay", "usable decades (5%)", "error at 100 nA"],
        [(units.si_format(d, "s"), f"{dec:.2f}", f"{err * 100:+.1f}%")
         for d, dec, err in rows],
        title="Dead-time ablation"))
    decades = [dec for _, dec, _ in rows]
    assert decades[-1] < decades[0]


def bench_ablation_leakage(benchmark):
    """Leakage eats the bottom of the range (the 1 pA floor)."""

    def run():
        rows = []
        for leak in (0.0, 0.2e-12, 0.5e-12, 2e-12):
            adc = make_adc(leakage=leak)
            f_1pa = adc.frequency(1e-12)
            analysis = characterize_adc(adc, frame_s=4.0, rng=52)
            rows.append((leak, f_1pa, analysis.usable_low_a))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(render_table(
        ["node leakage", "f at 1 pA", "usable range bottom"],
        [(units.si_format(l, "A"), units.si_format(f, "Hz"),
          units.si_format(lo, "A")) for l, f, lo in rows],
        title="Leakage ablation"))
    # 2 pA leakage kills the 1 pA point entirely.
    assert rows[-1][1] == 0.0
    assert rows[0][1] == pytest.approx(10.0, rel=0.01)


def bench_ablation_cint(benchmark):
    """Cint trades conversion gain against top-end compression."""

    def run():
        rows = []
        for cint in (25 * fF, 100 * fF, 400 * fF):
            adc = make_adc(cint=cint)
            analysis = characterize_adc(adc, frame_s=4.0, rng=53)
            rows.append((cint, adc.ideal_frequency(1e-12),
                         analysis.rows[-1].relative_error, analysis.usable_decades))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(render_table(
        ["Cint", "f at 1 pA", "error at 100 nA", "usable decades"],
        [(units.si_format(c, "F"), units.si_format(f, "Hz"), f"{e * 100:+.1f}%",
          f"{d:.2f}") for c, f, e, d in rows],
        title="Integration-capacitor ablation"))
    # Smaller Cint -> higher frequency at the top -> more dead-time loss.
    errors = [abs(e) for _, _, e, _ in rows]
    assert errors[0] > errors[-1]


def bench_ablation_frame_length(benchmark):
    """Counting quantisation at the pA floor vs frame length — why the
    chip counts 'within a given time frame' that the host can extend."""

    def run():
        # 1.7 pA: a non-integer count per frame, so the random sawtooth
        # phase exposes the +/-1-count quantisation.
        adc = make_adc()
        i_test = 1.7e-12
        rows = []
        for frame in (0.1, 1.0, 4.0, 16.0):
            counts = [adc.count_in_frame(i_test, frame, rng=seed) for seed in range(24)]
            mean = sum(counts) / len(counts)
            spread = (max(counts) - min(counts)) / max(mean, 1e-9)
            rows.append((frame, mean, spread))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(render_table(
        ["frame", "mean count at 1.7 pA", "count spread / mean"],
        [(f"{f:g} s", f"{m:.1f}", f"{s * 100:.0f}%") for f, m, s in rows],
        title="Frame-length ablation at the pA floor"))
    spreads = [s for *_, s in rows]
    assert spreads[-1] < spreads[0]
