"""Wafer-scale evaluation — throughput and peak memory (repro.wafer).

Times full-wafer runs (73 dies of ``rows x cols`` pixels on a 120 mm
wafer) through the tiled evaluator, white-only and with the
correlated field on, and records the process peak RSS.  The point of
the tiled path is that a million-pixel wafer runs in bounded memory —
resident planes are capped by ``WAFER_TILE_SITES``, not the wafer size
— so CI's wafer-smoke job runs ``--quick`` with ``--assert-max-rss-mb``
and ``--assert-min-sites 1000000`` and fails if either the memory bound
or the scale claim regresses.

Results go to ``BENCH_wafer.json`` via ``benchmarks/_harness.py``.

Standalone::

    PYTHONPATH=src python benchmarks/bench_wafer.py [--quick] \
        [--out BENCH_wafer.json] [--assert-max-rss-mb 500] \
        [--assert-min-sites 1000000]
"""

import argparse
import resource
import sys

from _harness import BenchSuite

from repro.core import render_table, units
from repro.wafer import WAFER_TILE_SITES, WaferSpec, wafer_records_and_metrics

FULL_SIZES = [(32, 32), (64, 64), (128, 128)]
QUICK_SIZES = [(128, 128)]  # the million-pixel wafer is the claim


def make_spec(rows: int, cols: int, frame_s: float, correlated: bool) -> WaferSpec:
    return WaferSpec(
        wafer_diameter_mm=120.0,  # 73 dies: 128x128 pixels each tops 1M sites
        rows=rows,
        cols=cols,
        frame_s=frame_s,
        radial_gradient=0.25 if correlated else 0.0,
        reticle_sigma=0.25 if correlated else 0.0,
    )


def peak_rss_mb() -> float:
    """Process high-water resident set, MB (ru_maxrss is KB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def run_wafer_sweep(sizes=FULL_SIZES, frame_s: float = 0.05, seed: int = 7) -> BenchSuite:
    suite = BenchSuite("wafer")
    for rows, cols in sizes:
        for name, correlated in (("wafer_white", False), ("wafer_correlated", True)):
            spec = make_spec(rows, cols, frame_s, correlated)
            layout = spec.layout()
            (_, metrics), _record = suite.time(
                name,
                lambda spec=spec: wafer_records_and_metrics(spec, seed),
                backend="vectorized",
                rows=rows,
                cols=cols,
                n_chips=layout.n_dies,
                frame_s=frame_s,
                sites_total=layout.n_dies * rows * cols,
                tile_sites=WAFER_TILE_SITES,
                peak_rss_mb=round(peak_rss_mb(), 1),
            )
            assert metrics["sites_total"] == layout.n_dies * rows * cols
    return suite


def render(suite: BenchSuite) -> str:
    rows = [
        (
            f"{r.name}@{r.size_label}",
            f"{r.meta['sites_total']:,}",
            units.si_format(r.wall_s, "s"),
            units.si_format(r.meta["sites_total"] / r.wall_s, "sites/s"),
            f"{r.meta['peak_rss_mb']:.0f} MB",
        )
        for r in suite.records
    ]
    return render_table(
        ["wafer@dies", "sites", "wall", "throughput", "peak RSS"],
        rows,
        title="Wafer-scale tiled evaluation",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="million-pixel size only (CI smoke)")
    parser.add_argument("--out", default="BENCH_wafer.json", help="output JSON path")
    parser.add_argument("--frame", type=float, default=None, help="counting frame in seconds")
    parser.add_argument(
        "--assert-max-rss-mb",
        type=float,
        default=None,
        metavar="MB",
        help="exit non-zero if process peak RSS exceeds MB (the tiled-evaluation memory bound)",
    )
    parser.add_argument(
        "--assert-min-sites",
        type=int,
        default=None,
        metavar="N",
        help="exit non-zero unless the largest wafer evaluated at least N pixels",
    )
    args = parser.parse_args(argv)

    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    frame_s = args.frame if args.frame is not None else (0.02 if args.quick else 0.05)
    suite = run_wafer_sweep(sizes=sizes, frame_s=frame_s)
    print(render(suite))
    path = suite.write(args.out)
    print(f"wrote {path}")

    status = 0
    max_sites = max(record.meta["sites_total"] for record in suite.records)
    if args.assert_min_sites is not None:
        if max_sites < args.assert_min_sites:
            print(f"FAIL: largest wafer is {max_sites:,} sites, required >= {args.assert_min_sites:,}")
            status = 2
        else:
            print(f"OK: largest wafer is {max_sites:,} sites")
    if args.assert_max_rss_mb is not None:
        rss = peak_rss_mb()
        if rss > args.assert_max_rss_mb:
            print(f"FAIL: peak RSS {rss:.0f} MB exceeds the {args.assert_max_rss_mb:.0f} MB bound")
            status = 2
        else:
            print(f"OK: peak RSS {rss:.0f} MB <= {args.assert_max_rss_mb:.0f} MB")
    return status


if __name__ == "__main__":
    sys.exit(main())
