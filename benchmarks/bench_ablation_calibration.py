"""Ablation T3 — what each piece of the calibration buys.

The paper's in-text claim: calibration makes "all sensor transistors M1
within a row provide the same current ... independent of their
individual device parameters".  This bench isolates the residual-error
contributors (charge injection, kT/C, droop) and also ablates the DNA
chip's gain calibration.
"""

import numpy as np
import pytest

from repro.chip import DnaMicroarrayChip
from repro.core import render_kv, render_table, units
from repro.neuro import ArrayGeometry, NeuralArrayModel
from repro.neuro.sensor_pixel import NeuralPixelDesign


def bench_ablation_neural_calibration_terms(benchmark):
    """Offset spread: uncalibrated / ideal / realistic / after droop."""

    def run():
        array = NeuralArrayModel(ArrayGeometry(48, 48, 7.8e-6), rng=41)
        gm = None
        rows = {}
        unc = array.uncalibrated_offset_currents()
        array.calibrate(include_imperfections=False)
        gm = array.transconductance_plane()
        rows["uncalibrated"] = float(np.std(unc / gm))
        rows["calibrated (ideal)"] = float(np.std(array.offset_currents() / gm))
        array.calibrate(include_imperfections=True)
        rows["calibrated (realistic)"] = float(np.std(array.offset_currents() / gm))
        array.droop(10.0)
        rows["after 10 s droop"] = float(np.std(array.offset_currents() / gm))
        array.droop(590.0)
        rows["after 600 s droop"] = float(np.std(array.offset_currents() / gm))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(render_table(
        ["condition", "input-referred offset sigma"],
        [(name, units.si_format(value, "V")) for name, value in rows.items()],
        title="Calibration ablation, 2304 pixels"))
    print()
    print(render_kv("Interpretation", [
        ("signal window (paper)", "100 uV ... 5 mV"),
        ("uncalibrated spread vs max signal",
         f"{rows['uncalibrated'] / 5e-3:.0f}x the largest signal"),
        ("realistic residual vs min signal",
         f"{rows['calibrated (realistic)'] / 100e-6:.1f}x the smallest signal"),
    ]))
    assert rows["calibrated (ideal)"] < rows["calibrated (realistic)"]
    assert rows["calibrated (realistic)"] < 0.05 * rows["uncalibrated"]


def bench_ablation_storage_capacitance(benchmark):
    """Residual offset vs storage-node size: why the electrode plate
    (not the bare gate) must hold the calibration voltage."""

    def run():
        rows = []
        for cap in (50e-15, 150e-15, 500e-15, 1.5e-12):
            design = NeuralPixelDesign(storage_capacitance=cap)
            array = NeuralArrayModel(ArrayGeometry(24, 24, 7.8e-6), design, rng=42)
            array.calibrate()
            gm = array.transconductance_plane()
            rows.append((cap, float(np.std(array.offset_currents() / gm))))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(render_table(
        ["storage capacitance", "residual offset sigma"],
        [(units.si_format(c, "F"), units.si_format(s, "V")) for c, s in rows],
        title="Storage-node ablation (kT/C + injection residue)"))
    sigmas = [s for _, s in rows]
    assert sigmas[-1] < sigmas[0]


def bench_ablation_dna_gain_calibration(benchmark):
    """DNA chip: current-estimate error with and without auto-calibration."""

    def run():
        currents = np.full((16, 8), 2e-9)
        chip = DnaMicroarrayChip(rng=43)
        chip.configure_bias(0.45, -0.25)
        counts = chip.measure_currents(currents, frame_s=1.0, rng=44)
        err_raw = np.abs(chip.current_estimates(counts, 1.0) - 2e-9) / 2e-9
        chip.auto_calibrate(frame_s=0.1, rng=45)
        counts = chip.measure_currents(currents, frame_s=1.0, rng=46)
        err_cal = np.abs(chip.current_estimates(counts, 1.0) - 2e-9) / 2e-9
        return float(np.median(err_raw)), float(np.median(err_cal))

    err_raw, err_cal = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(render_table(
        ["condition", "median |current error|"],
        [("without auto-calibration", f"{err_raw * 100:.2f}%"),
         ("with auto-calibration", f"{err_cal * 100:.2f}%")],
        title="DNA-chip auto-calibration ablation (2 nA reference input)"))
    assert err_cal < err_raw
    assert err_cal < 0.01
