"""Fig. 6 — the complete neural signal path.

Three reproductions from the figure and its surrounding text:

  (a) pixel calibration: offset spread before vs after (the reason the
      M1/M2/S1 scheme exists),
  (b) the gain/bandwidth budget: x100 * x7 (4 MHz) * x4 * x2 = 5600
      with the 32 MHz output driver behind the 8:1 multiplexer,
  (c) scan timing: 128x128 at 2 kframe/s <=> 2.048 MHz per channel,
      32.77 Mpixel/s aggregate — and an end-to-end recording with
      spike detection.
"""

import numpy as np
import pytest

from repro.analysis import calibration_report
from repro.chip.sequencer import NEURO_SCAN
from repro.core import render_kv, render_table, units
from repro.experiments import NeuralRecordingSpec, Runner
from repro.neuro import ArrayGeometry, NeuralArrayModel, build_readout_chain


def bench_fig6_pixel_calibration(benchmark):
    """(a): Monte-Carlo offset spread of a 64x64 sub-array."""

    def run():
        array = NeuralArrayModel(ArrayGeometry(64, 64, 7.8e-6), rng=21)
        return calibration_report(array)

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(render_table(
        ["metric", "uncalibrated", "calibrated"],
        [(name, units.si_format(unc, "") if "fraction" in name else f"{unc:.3e}",
          units.si_format(cal, "") if "fraction" in name else f"{cal:.3e}")
         for name, unc, cal in report.as_rows()],
        title="Fig. 6(a): pixel offset spread, 4096 pixels"))
    print()
    print(render_kv("Reproduction vs paper", [
        ("paper: signals 100 uV-5 mV << device mismatch", "calibration required"),
        ("measured: uncalibrated input-referred sigma",
         units.si_format(report.uncalibrated_sigma_v, "V")),
        ("measured: calibrated input-referred sigma",
         units.si_format(report.calibrated_sigma_v, "V")),
        ("measured: improvement", f"{report.improvement:.0f}x"),
        ("measured: chain-saturated pixels, uncalibrated",
         f"{report.saturated_fraction_uncalibrated * 100:.0f}%"),
        ("measured: chain-saturated pixels, calibrated",
         f"{report.saturated_fraction_calibrated * 100:.0f}%"),
    ]))
    assert report.improvement > 10
    assert report.saturated_fraction_calibrated < 0.1


def bench_fig6_gain_budget(benchmark):
    """(b): the x5600 cascade and its bandwidth shrinkage."""

    def run():
        return [build_readout_chain(rng=seed) for seed in range(32)]

    chains = benchmark.pedantic(run, rounds=1, iterations=1)

    gains = np.array([chain.actual_gain for chain in chains])
    nominal = chains[0].nominal_gain
    print()
    print(render_table(
        ["stage", "gain", "bandwidth"],
        [(s.label, f"x{s.nominal_gain:g}", units.si_format(s.bandwidth_hz, "Hz"))
         for s in chains[0].stages],
        title="Fig. 6(b): stage budget"))
    print()
    print(render_kv("Chain statistics over 32 instances", [
        ("nominal total gain", f"x{nominal:g}"),
        ("realised gain mean/sigma", f"x{gains.mean():.0f} +/- {gains.std():.0f}"),
        ("cascade bandwidth", units.si_format(chains[0].bandwidth_hz(), "Hz")),
        ("input-referred noise", units.si_format(chains[0].input_referred_noise_rms(), "V")),
    ]))
    assert nominal == pytest.approx(5600.0)
    assert chains[0].bandwidth_hz() <= 4e6


def bench_fig6_scan_timing(benchmark):
    """(c1): the locked timing arithmetic of the 128x128 scan."""

    def run():
        return {
            "row_time": NEURO_SCAN.row_time_s,
            "slot": NEURO_SCAN.slot_time_s,
            "channel_rate": NEURO_SCAN.channel_pixel_rate_hz,
            "aggregate": NEURO_SCAN.aggregate_pixel_rate_hz,
            "amp_ok": NEURO_SCAN.settling_ok(4e6),
            "driver_ok": NEURO_SCAN.settling_ok(32e6),
            "max_rate": NEURO_SCAN.max_frame_rate_hz(4e6),
        }

    timing = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(render_kv("Fig. 6(c): scan timing at 2 kframe/s", [
        ("paper: 128 rows, 16 channels, 8-to-1 mux", "yes"),
        ("row time", units.si_format(timing["row_time"], "s")),
        ("mux slot", units.si_format(timing["slot"], "s")),
        ("per-channel pixel rate", units.si_format(timing["channel_rate"], "Hz")),
        ("aggregate pixel rate", units.si_format(timing["aggregate"], "Hz")),
        ("4 MHz readout amp settles", timing["amp_ok"]),
        ("32 MHz driver settles", timing["driver_ok"]),
        ("frame-rate headroom", f"{timing['max_rate']:.0f} frames/s max"),
    ]))
    assert timing["channel_rate"] == pytest.approx(2.048e6)
    assert timing["aggregate"] == pytest.approx(32.768e6)
    assert timing["amp_ok"] and timing["driver_ok"]


def bench_fig6_end_to_end_recording(benchmark):
    """(c2): record a culture through the full path and detect spikes —
    declared as a ``NeuralRecordingSpec`` and run through the unified
    ``Runner`` (spike scoring included in the ResultSet)."""
    runner = Runner(seed=22)
    spec = NeuralRecordingSpec(
        rows=32,
        cols=32,
        pitch_m=7.8e-6,
        n_neurons=3,
        diameter_range_m=(40e-6, 70e-6),
        duration_s=0.25,
        firing_rate_hz=25.0,
        threshold_sigma=4.5,
        tolerance_s=3e-3,
    )

    result = benchmark.pedantic(lambda: runner.run(spec), rounds=1, iterations=1)

    rows = [
        (f"{record['diameter_m'] * 1e6:.0f} um",
         units.si_format(record["peak_v"], "V"),
         record["true_spikes"], record["detected_spikes"],
         f"{record['precision']:.2f}", f"{record['recall']:.2f}")
        for record in result.to_rows()
    ]
    print()
    print(render_table(
        ["neuron", "peak signal", "true spikes", "detected", "precision", "recall"],
        rows, title="End-to-end recording at 2 kframe/s (best pixel per cell)"))
    print()
    print(render_kv("Noise", [
        ("input-referred per sample",
         units.si_format(result.metrics["noise_floor_v"], "V")),
    ]))
    assert result.metrics["total_true_spikes"] > 0
    assert result.metrics["mean_precision"] > 0.4
