"""Fig. 4 — the 16x8 DNA microarray chip, end to end.

Runs the complete device flow as one ``DnaAssaySpec`` through the
``Runner``: serial configuration, electrode biasing through the on-chip
DACs, auto-calibration against the bandgap-derived reference currents,
a four-target assay, in-pixel A/D conversion at all 128 sites in
parallel, and bit-level serial readout of the counters.

Paper claims checked: 8x16 array + periphery + 6-pin interface; per-site
currents inside the 1 pA - 100 nA window; exact digital readout.
"""

import numpy as np
import pytest

from repro.analysis import ascii_histogram
from repro.core import render_kv, render_table, units
from repro.experiments import DnaAssaySpec, Runner

FIG4_SPEC = DnaAssaySpec(
    probe_count=16,
    replicates=7,
    control_every=16,
    target_subset=(0, 1, 2, 3),
    concentration=5e-5,
    calibration_frame_s=0.05,
)


def bench_fig4_full_chip_assay(benchmark):
    runner = Runner(seed=11)

    def run_full_chip():
        result = runner.run(FIG4_SPEC)
        host_counts = result.artifacts["chip"].read_counters_serial()
        return result, host_counts

    result, host_counts = benchmark.pedantic(run_full_chip, rounds=1, iterations=1)

    chip = result.artifacts["chip"]
    counts = result.artifacts["counts"]
    estimates = result.column("current_estimate_a")
    is_match = result.column("is_match")
    is_probe = result.column("probe") != ""
    match_currents = estimates[is_match]
    dark_currents = estimates[~is_match & is_probe]
    print()
    print(render_kv("Fig. 4: chip nameplate", dict(chip.specs.as_rows()).items()))
    print()
    print(render_table(
        ["population", "sites", "median current", "min", "max"],
        [
            ("match sites", len(match_currents),
             units.si_format(float(np.median(match_currents)), "A"),
             units.si_format(float(np.min(match_currents)), "A"),
             units.si_format(float(np.max(match_currents)), "A")),
            ("non-match sites", len(dark_currents),
             units.si_format(float(np.median(dark_currents)), "A"),
             units.si_format(float(np.min(dark_currents)), "A"),
             units.si_format(float(np.max(dark_currents)), "A")),
        ],
        title="Per-site current estimates (host side, calibrated)"))
    print()
    positive = estimates[estimates > 0]
    print("Current histogram across the array (log axis):")
    print(ascii_histogram(positive, bins=8, unit="A", log_x=True))
    print()
    print(render_kv("Reproduction vs paper", [
        ("paper: array", "8 x 16 = 128 sensor sites"),
        ("measured: sites digitised", result.metrics["n_sites"]),
        ("paper: sensor currents", "1 pA ... 100 nA"),
        ("measured: current span",
         f"{units.si_format(float(positive.min()), 'A')} ... "
         f"{units.si_format(float(positive.max()), 'A')}"),
        ("paper: 6-pin serial data transmission", "yes"),
        ("measured: serial readout exact",
         host_counts == [int(c) for c in counts.reshape(-1)]),
    ]))
    assert host_counts == [int(c) for c in counts.reshape(-1)]
    assert 1e-12 < positive.max() < 200e-9
    assert float(np.median(match_currents)) > 10 * float(np.median(dark_currents))


def bench_fig4_serial_readout(benchmark):
    """Kernel cost: bit-level serial transfer of all 128 counters."""
    runner = Runner(seed=15)
    # A minimal spec provisions the chip; the kernel then drives the
    # test-mode current input and the serial link directly.
    chip = runner.run(
        FIG4_SPEC.replace(probe_count=1, replicates=1, control_every=0,
                          target_subset=(0,), calibrate=False, concentration=0.0)
    ).artifacts["chip"]
    chip.measure_currents(np.full((16, 8), 1e-9), frame_s=0.1, rng=16)

    host_counts = benchmark(chip.read_counters_serial)

    assert len(host_counts) == 128
    wire_time = chip.sequence.readout_time_s()
    print()
    print(render_kv("Serial-link budget", [
        ("payload", f"{128 * 24} bits"),
        ("wire time at 1 MHz", units.si_format(wire_time, "s")),
        ("full measurement (1 s frame)",
         units.si_format(chip.sequence.measurement_time_s(1.0), "s")),
    ]))
