"""Fig. 4 — the 16x8 DNA microarray chip, end to end.

Runs the complete device flow: serial configuration, electrode biasing
through the on-chip DACs, auto-calibration against the bandgap-derived
reference currents, a four-target assay, in-pixel A/D conversion at all
128 sites in parallel, and bit-level serial readout of the counters.

Paper claims checked: 8x16 array + periphery + 6-pin interface; per-site
currents inside the 1 pA - 100 nA window; exact digital readout.
"""

import numpy as np
import pytest

from repro.analysis import ascii_histogram
from repro.chip import DnaMicroarrayChip
from repro.core import render_kv, render_table, units
from repro.dna import MicroarrayAssay, ProbeLayout, Sample


def run_full_chip():
    chip = DnaMicroarrayChip(rng=11)
    assert chip.configure_bias(0.45, -0.25)
    chip.auto_calibrate(frame_s=0.05, rng=12)
    layout = ProbeLayout.random_panel(16, replicates=7, control_every=16, rng=13)
    sample = Sample.for_probes(layout.probes(), 5e-5, subset=[0, 1, 2, 3],
                               target_length=2000)
    result = MicroarrayAssay(layout).run(sample)
    counts = chip.measure_assay(result, frame_s=1.0, rng=14)
    host_counts = chip.read_counters_serial()
    return chip, result, counts, host_counts


def bench_fig4_full_chip_assay(benchmark):
    chip, result, counts, host_counts = benchmark.pedantic(
        run_full_chip, rounds=1, iterations=1
    )

    estimates = chip.current_estimates(counts, frame_s=1.0)
    match_currents = [estimates[s.row, s.col] for s in result.match_sites()]
    dark_currents = [estimates[s.row, s.col] for s in result.mismatch_sites()]
    print()
    print(render_kv("Fig. 4: chip nameplate", dict(chip.specs.as_rows()).items()))
    print()
    print(render_table(
        ["population", "sites", "median current", "min", "max"],
        [
            ("match sites", len(match_currents),
             units.si_format(float(np.median(match_currents)), "A"),
             units.si_format(float(np.min(match_currents)), "A"),
             units.si_format(float(np.max(match_currents)), "A")),
            ("non-match sites", len(dark_currents),
             units.si_format(float(np.median(dark_currents)), "A"),
             units.si_format(float(np.min(dark_currents)), "A"),
             units.si_format(float(np.max(dark_currents)), "A")),
        ],
        title="Per-site current estimates (host side, calibrated)"))
    print()
    positive = estimates[estimates > 0]
    print("Current histogram across the array (log axis):")
    print(ascii_histogram(positive, bins=8, unit="A", log_x=True))
    print()
    print(render_kv("Reproduction vs paper", [
        ("paper: array", "8 x 16 = 128 sensor sites"),
        ("measured: sites digitised", int(counts.size)),
        ("paper: sensor currents", "1 pA ... 100 nA"),
        ("measured: current span",
         f"{units.si_format(float(positive.min()), 'A')} ... "
         f"{units.si_format(float(positive.max()), 'A')}"),
        ("paper: 6-pin serial data transmission", "yes"),
        ("measured: serial readout exact", host_counts == [int(c) for c in counts.reshape(-1)]),
    ]))
    assert host_counts == [int(c) for c in counts.reshape(-1)]
    assert 1e-12 < positive.max() < 200e-9
    assert float(np.median(match_currents)) > 10 * float(np.median(dark_currents))


def bench_fig4_serial_readout(benchmark):
    """Kernel cost: bit-level serial transfer of all 128 counters."""
    chip = DnaMicroarrayChip(rng=15)
    chip.configure_bias(0.45, -0.25)
    chip.measure_currents(np.full((16, 8), 1e-9), frame_s=0.1, rng=16)

    host_counts = benchmark(chip.read_counters_serial)

    assert len(host_counts) == 128
    wire_time = chip.sequence.readout_time_s()
    print()
    print(render_kv("Serial-link budget", [
        ("payload", f"{128 * 24} bits"),
        ("wire time at 1 MHz", units.si_format(wire_time, "s")),
        ("full measurement (1 s frame)",
         units.si_format(chip.sequence.measurement_time_s(1.0), "s")),
    ]))
