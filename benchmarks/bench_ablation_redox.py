"""Ablation — the electrochemical detection chain (Section 2).

Quantifies the two design choices behind the 1 pA sensitivity:
  * redox cycling vs a single (non-cycling) electrode,
  * the enzyme label's catalytic amplification vs a hypothetical
    direct (one-electron-per-target) label.
"""

import numpy as np
import pytest

from repro.core import render_kv, render_table, units
from repro.core.units import AVOGADRO, ELEMENTARY_CHARGE
from repro.electrochem import (
    InterdigitatedElectrode,
    LabelledSurface,
    RedoxCyclingSensor,
    surface_concentration_quasi_static,
)


def bench_ablation_redox_cycling(benchmark):
    """Cycling gain across IDA gap sizes."""

    def run():
        rows = []
        for gap in (0.5e-6, 1e-6, 2e-6, 4e-6):
            electrode = InterdigitatedElectrode(gap=gap)
            sensor = RedoxCyclingSensor(electrode=electrode)
            c_test = 0.01
            cycling = sensor.current(c_test) - sensor.background_current
            single = sensor.single_electrode_current(c_test) - sensor.background_current
            rows.append((gap, electrode.collection_efficiency(), cycling, single,
                         cycling / single))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(render_table(
        ["IDA gap", "collection eff.", "I cycling", "I single electrode", "gain"],
        [(units.si_format(g, "m"), f"{eff:.3f}", units.si_format(ic, "A"),
          units.si_format(isg, "A"), f"{gain:.0f}x") for g, eff, ic, isg, gain in rows],
        title="Redox-cycling ablation at 10 uM product"))
    gains = [gain for *_, gain in rows]
    print()
    print(render_kv("Interpretation", [
        ("paper detection floor", "1 pA"),
        ("without cycling the floor rises by", f"{gains[1]:.0f}x at the paper's 1 um gap"),
        ("tighter gaps amplify more", all(b < a for a, b in zip(gains, gains[1:]))),
    ]))
    assert gains[1] > 10  # 1 um gap: an order of magnitude from cycling
    assert all(b < a for a, b in zip(gains, gains[1:]))


def bench_ablation_enzyme_label(benchmark):
    """Enzyme turnover vs direct label: current per bound target."""

    def run():
        bound_density = 3e14  # 1% occupancy of a typical spot
        surface = LabelledSurface()
        sensor = RedoxCyclingSensor()
        flux = surface.product_flux(bound_density)
        c_s = surface_concentration_quasi_static(
            flux, 50e-6, surface.label.product.diffusion_coefficient
        )
        enzymatic = sensor.current(c_s) - sensor.background_current
        # Direct label: each bound target contributes n electrons once
        # per cycling pass; approximate with one shuttling molecule per
        # target confined near the surface.
        per_area_molar = bound_density / AVOGADRO / 50e-6  # mol/m^3 equivalent
        direct = sensor.current(per_area_molar) - sensor.background_current
        return enzymatic, direct

    enzymatic, direct = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(render_table(
        ["label chemistry", "sensor current at 1% occupancy"],
        [("alkaline-phosphatase enzyme label", units.si_format(enzymatic, "A")),
         ("direct redox label (no turnover)", units.si_format(direct, "A"))],
        title="Enzyme-label ablation"))
    print()
    print(render_kv("Interpretation", [
        ("catalytic amplification", f"{enzymatic / max(direct, 1e-18):.0f}x"),
        ("consequence", "direct labels fall below the 1 pA floor at low occupancy"),
    ]))
    assert enzymatic > 10 * direct


def bench_ablation_bias_window(benchmark):
    """Mis-biased electrodes (DAC misconfiguration) kill the signal —
    the failure mode the configure_bias() check guards against."""

    def run():
        sensor = RedoxCyclingSensor()
        e0 = sensor.species.standard_potential_v
        cases = []
        for label, v_gen, v_col in (
            ("correct bias", e0 + 0.35, e0 - 0.35),
            ("collector too positive", e0 + 0.35, e0 + 0.10),
            ("generator too negative", e0 - 0.10, e0 - 0.35),
            ("both at E0", e0, e0),
        ):
            sensor.check_bias(v_gen, v_col)
            cases.append((label, sensor.bias_ok, sensor.current(0.05)))
        return cases

    cases = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(render_table(
        ["bias configuration", "cycling active", "current at 50 uM"],
        [(label, ok, units.si_format(i, "A")) for label, ok, i in cases],
        title="Electrode-bias ablation"))
    assert cases[0][1] and not any(ok for _, ok, _ in cases[1:])
    assert cases[0][2] > 100 * cases[1][2]
