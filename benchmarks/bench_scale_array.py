"""Array-scale sweep — object vs vectorized backend (repro.engine).

Sweeps the ``ArrayScaleSpec`` workload across array geometries (the
16x8 seed chip up to the 128x128 neural-recording-class array) and chip
batch sizes, timing both compute backends on the same deterministic
1 pA - 100 nA current pattern:

* ``end_to_end`` — fresh Runner: chip construction (mismatch draws,
  periphery sampling) + digitisation;
* ``measure`` — warm Runner: the chip is cached, so the record isolates
  the A/D conversion hot path.

Results go to ``BENCH_engine.json`` via ``benchmarks/_harness.py`` so
the speedup trajectory is machine-readable; CI's perf-smoke job runs
``--quick --assert-speedup 1.0`` and fails if the vectorized backend is
ever slower than the object backend at 128x128.

Standalone::

    PYTHONPATH=src python benchmarks/bench_scale_array.py [--quick] \
        [--out BENCH_engine.json] [--assert-speedup 10]
"""

import argparse
import sys

from _harness import BenchSuite

from repro.core import render_table, units
from repro.experiments import ArrayScaleSpec, Runner

FULL_SIZES = [(16, 8), (32, 32), (64, 64), (128, 128)]
QUICK_SIZES = [(16, 8), (128, 128)]
BATCHES = (8,)  # extra vectorized-only chip-batch points


def run_scale_sweep(
    sizes=FULL_SIZES,
    batches=BATCHES,
    frame_s: float = 0.1,
    seed: int = 7,
    suite: BenchSuite | None = None,
) -> BenchSuite:
    """Time both backends at every size; vectorized additionally at
    larger chip batches (object batches there would dominate the run
    for no extra information — the 1-chip pairing fixes the baseline)."""
    suite = suite or BenchSuite("engine")
    for rows, cols in sizes:
        spec = ArrayScaleSpec(rows=rows, cols=cols, frame_s=frame_s)
        for backend in ("object", "vectorized"):
            runner = Runner(seed)
            suite.time(
                "end_to_end",
                lambda: Runner(seed).run(spec, backend=backend),
                backend=backend,
                rows=rows,
                cols=cols,
                frame_s=frame_s,
            )
            runner.run(spec, backend=backend)  # warm the chip cache
            suite.time(
                "measure",
                lambda: runner.run(spec, backend=backend),
                backend=backend,
                rows=rows,
                cols=cols,
                repeats=3,  # same best-of-N policy for both backends
                frame_s=frame_s,
            )
        for n_chips in batches:
            if n_chips == 1:
                continue
            batch_spec = spec.replace(n_chips=n_chips)
            suite.time(
                "end_to_end",
                lambda: Runner(seed).run(batch_spec),
                backend="vectorized",
                rows=rows,
                cols=cols,
                n_chips=n_chips,
                frame_s=frame_s,
            )
    return suite


def render_speedups(suite: BenchSuite) -> str:
    rows = [
        (
            label,
            units.si_format(entry["object_s"], "s"),
            units.si_format(entry["vectorized_s"], "s"),
            f"{entry['speedup']:.1f}x",
        )
        for label, entry in suite.speedups().items()
    ]
    return render_table(
        ["workload@size", "object", "vectorized", "speedup"],
        rows,
        title="Array-scale sweep: object vs vectorized backend",
    )


def bench_scale_array_sweep(benchmark):
    """Pytest-benchmark entry: a reduced sweep that still pairs the
    backends and checks the vectorized one wins at scale."""
    suite = BenchSuite("engine")
    benchmark.pedantic(
        lambda: run_scale_sweep(sizes=[(16, 8), (32, 32)], frame_s=0.02, suite=suite),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_speedups(suite))
    assert suite.speedup_at("measure", 32, 32) is not None
    assert suite.speedup_at("measure", 32, 32) > 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="tiny sizes + short frame (CI smoke)")
    parser.add_argument("--out", default="BENCH_engine.json", help="output JSON path")
    parser.add_argument("--frame", type=float, default=None, help="counting frame in seconds")
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit non-zero unless measure-path speedup at the largest size is >= X",
    )
    args = parser.parse_args(argv)

    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    frame_s = args.frame if args.frame is not None else (0.02 if args.quick else 0.1)
    suite = run_scale_sweep(sizes=sizes, frame_s=frame_s)
    print(render_speedups(suite))
    path = suite.write(args.out)
    print(f"wrote {path}")

    if args.assert_speedup is not None:
        rows, cols = sizes[-1]
        speedup = suite.speedup_at("measure", rows, cols)
        if speedup is None or speedup < args.assert_speedup:
            print(
                f"FAIL: measure speedup at {rows}x{cols} is "
                f"{speedup if speedup is not None else 'missing'}, "
                f"required >= {args.assert_speedup}"
            )
            return 2
        print(f"OK: measure speedup at {rows}x{cols} is {speedup:.1f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
