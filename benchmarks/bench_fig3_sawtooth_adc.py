"""Fig. 3 — in-pixel current-to-frequency sawtooth ADC.

Regenerates both panels of the figure:

  (a) the sawtooth waveform with its tau1 / tau2 / tau_delay segments,
  (b) frequency vs. sensor current over 1 pA ... 100 nA, with the
      counter-based A/D conversion ("the number of reset pulses is
      counted with a digital counter within a given time frame").

Paper claims checked: firing across the full 1 pA - 100 nA range,
frequency "approximately proportional" to current (slope ~ 1, >= 4.5
usable decades at 5% error), dead-time compression at the top.
"""

import pytest

from repro.analysis import characterize_adc
from repro.core import render_kv, render_table, units
from repro.pixel import SawtoothAdc


def build_adc() -> SawtoothAdc:
    return SawtoothAdc()


def run_transfer(frame_s: float = 4.0):
    return characterize_adc(build_adc(), frame_s=frame_s, rng=1)


def bench_fig3_waveform(benchmark):
    """Panel (a): generate and time the sawtooth waveform simulation."""
    adc = build_adc()
    period = adc.cycle_period(1e-9)

    wave = benchmark(adc.waveform, 1e-9, 4 * period, period / 400)

    tau1 = adc.ramp_time(1e-9)
    print()
    print(render_kv("Fig. 3(a): sawtooth segments at 1 nA", [
        ("tau1 (ramp)", units.si_format(tau1, "s")),
        ("comparator delay", units.si_format(adc.comparator.delay_s, "s")),
        ("tau_delay (reset pulse)", units.si_format(adc.tau_delay_s, "s")),
        ("tau2 (full period)", units.si_format(period, "s")),
        ("waveform peak", units.si_format(wave.peak_abs(), "V")),
        ("reset pulses in window", len(adc.reset_pulse_times(1e-9, 4 * period))),
    ]))
    assert wave.peak_abs() == pytest.approx(adc.swing_v, rel=0.05)


def bench_fig3_transfer(benchmark):
    """Panel (b): counted frequency vs current over five decades."""
    analysis = benchmark.pedantic(run_transfer, rounds=1, iterations=1)

    rows = [
        (
            units.si_format(r.current_a, "A"),
            units.si_format(r.ideal_frequency_hz, "Hz"),
            units.si_format(r.frequency_hz, "Hz"),
            r.count,
            f"{r.relative_error * 100:+.2f}%",
        )
        for r in analysis.rows
    ]
    print()
    print(render_table(
        ["I_sensor", "f ideal I/(C dV)", "f model", "counts (4 s)", "error vs prop."],
        rows, title="Fig. 3(b): transfer characteristic"))
    print()
    print(render_kv("Reproduction vs paper", [
        ("paper: current range", "1 pA ... 100 nA"),
        ("measured: fires across", f"{units.si_format(analysis.rows[0].current_a, 'A')} ... "
                                   f"{units.si_format(analysis.rows[-1].current_a, 'A')}"),
        ("paper: f approx. proportional to I", "yes"),
        ("measured: log-log slope", f"{analysis.loglog_slope:.4f}"),
        ("measured: usable range (5%)",
         f"{units.si_format(analysis.usable_low_a, 'A')} ... "
         f"{units.si_format(analysis.usable_high_a, 'A')} "
         f"({analysis.usable_decades:.1f} decades)"),
        ("measured: compression at 100 nA",
         f"{analysis.rows[-1].relative_error * 100:+.1f}% (dead time)"),
    ]))
    assert analysis.loglog_slope == pytest.approx(1.0, abs=0.02)
    assert analysis.usable_decades >= 4.0


def bench_fig3_single_conversion(benchmark):
    """Kernel cost: one 1 s frame conversion at 1 nA (the chip's
    per-site operation)."""
    adc = build_adc()

    count = benchmark(adc.count_in_frame, 1e-9, 1.0, 7)

    assert count > 0
