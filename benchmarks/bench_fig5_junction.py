"""Fig. 5 — the cell-chip junction: HH neuron -> cleft -> electrode.

Regenerates the sensing physics of the cross-section figure: an action
potential's membrane currents drop across the cleft's seal resistance
and produce the 100 uV - 5 mV electrode transients the pixel senses.

Sweeps: cell diameter (the paper's 10-100 um) and cleft height (the
paper's ~60 nm).
"""

import numpy as np
import pytest

from repro.core import render_kv, render_table, units
from repro.neuro import CellChipJunction, HodgkinHuxleyNeuron


def simulate_neuron():
    return HodgkinHuxleyNeuron().simulate(0.02, dt_s=20e-6)


def bench_fig5_hh_to_junction(benchmark):
    """Full biophysics path: HH integration + junction transform."""

    def run():
        hh = simulate_neuron()
        junction = CellChipJunction(cell_diameter=20e-6)
        return hh, junction.junction_voltage(hh)

    hh, vj = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(render_kv("Action potential (HH)", [
        ("membrane swing", units.si_format(hh.membrane_voltage.peak_to_peak(), "V")),
        ("spikes", len(hh.spike_times)),
        ("junction peak (20 um cell)", units.si_format(vj.peak_abs(), "V")),
    ]))
    assert len(hh.spike_times) == 1
    assert 50e-6 < vj.peak_abs() < 1e-3


def bench_fig5_amplitude_vs_cell_size(benchmark):
    """The paper's amplitude window across its stated neuron sizes."""
    hh = simulate_neuron()

    def sweep():
        rows = []
        for diameter in (10e-6, 20e-6, 35e-6, 50e-6, 75e-6, 100e-6):
            junction = CellChipJunction(cell_diameter=diameter)
            vj = junction.junction_voltage(hh)
            rows.append((diameter, junction.seal_resistance, vj.peak_abs()))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print(render_table(
        ["cell diameter", "R_seal", "V_J peak"],
        [(f"{d * 1e6:.0f} um", units.si_format(r, "Ohm"), units.si_format(v, "V"))
         for d, r, v in rows],
        title="Fig. 5: junction amplitude vs neuron size (60 nm cleft)"))
    peaks = [v for _, _, v in rows]
    print()
    print(render_kv("Reproduction vs paper", [
        ("paper: signal amplitudes", "100 uV ... 5 mV"),
        ("measured: amplitude span (10-100 um cells)",
         f"{units.si_format(min(peaks), 'V')} ... {units.si_format(max(peaks), 'V')}"),
        ("measured: monotone in cell size", all(b > a for a, b in zip(peaks, peaks[1:]))),
    ]))
    assert max(peaks) < 5.5e-3
    assert any(100e-6 <= p <= 5e-3 for p in peaks)


def bench_fig5_cleft_sweep(benchmark):
    """Seal resistance scales inversely with cleft height — the reason
    the ~60 nm cleft yields measurable signals."""
    hh = simulate_neuron()

    def sweep():
        rows = []
        for cleft in (20e-9, 60e-9, 120e-9, 240e-9):
            junction = CellChipJunction(cell_diameter=30e-6).with_cleft(cleft)
            rows.append((cleft, junction.seal_resistance,
                         junction.junction_voltage(hh).peak_abs()))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print(render_table(
        ["cleft height", "R_seal", "V_J peak"],
        [(units.si_format(c, "m"), units.si_format(r, "Ohm"), units.si_format(v, "V"))
         for c, r, v in rows],
        title="Cleft-height sweep (30 um cell)"))
    resistances = [r for _, r, _ in rows]
    assert all(b < a for a, b in zip(resistances, resistances[1:]))
