"""Inference throughput: vectorized bootstrap & fits vs naive loops.

The inference subsystem's performance claim is that its resampling
paths are NumPy-vectorized, not Python loops.  This benchmark measures
exactly that, on the two hot paths:

* **bootstrap** — ``resample_statistics`` with ``engine="vectorized"``
  vs the bit-identical ``engine="loop"`` baseline (same seed, same
  index stream, same output — only the execution strategy differs);
* **loglinear-fit** — the closed-form pairs bootstrap
  (``bootstrap_loglinear``: B regressions in one block) vs refitting
  per resample with ``loglinear_fit`` in a Python loop.

Writes ``BENCH_inference.json`` via the shared harness; speedups pair
the ``vectorized`` record against the ``object`` (loop) record of the
same workload.  ``--assert-speedup N`` makes CI fail if the bootstrap
path loses its >= N× margin.

Run:  PYTHONPATH=src python benchmarks/bench_inference.py [--quick]
          [--assert-speedup 10] [--out BENCH_inference.json]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from _harness import BenchSuite  # noqa: E402

from repro.core.rng import SeedTree  # noqa: E402
from repro.inference import bootstrap_loglinear, loglinear_fit, resample_statistics  # noqa: E402
from repro.inference.doseresponse import LoglinearBootstrap  # noqa: E402


def loop_bootstrap_loglinear(
    x, y, *, log_y, n_resamples, seed, lod_sigma=3.0, confidence=0.95
) -> LoglinearBootstrap:
    """The naive baseline: one `loglinear_fit` call per resample.

    Draws the same index matrix as the vectorized path, so the slope
    distribution is identical — only the per-resample Python-level
    refit differs.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    n = len(x)
    rng = SeedTree(int(seed)).generator(
        "inference", "doseresponse", "pairs-bootstrap", n, int(n_resamples)
    )
    idx = rng.integers(0, n, size=(int(n_resamples), n))
    slopes = np.empty(n_resamples)
    intercepts = np.empty(n_resamples)
    for b in range(n_resamples):
        xb, yb = x[idx[b]], y[idx[b]]
        if len(set(xb.tolist())) < 2:
            slopes[b] = intercepts[b] = np.nan
            continue
        fit = loglinear_fit(xb, yb, log_y=log_y)
        slopes[b] = fit.slope
        intercepts[b] = fit.intercept
    alpha = 1.0 - confidence
    quantiles = (alpha / 2.0, 1.0 - alpha / 2.0)

    def _ci(values):
        finite = values[np.isfinite(values)]
        lo, hi = np.quantile(finite, quantiles)
        return (float(lo), float(hi))

    return LoglinearBootstrap(
        slope=_ci(slopes),
        intercept=_ci(intercepts),
        lod=(float("nan"), float("nan")),
        n_valid=int(np.isfinite(slopes).sum()),
        n_resamples=int(n_resamples),
        confidence=float(confidence),
        seed=int(seed),
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller sizes for CI")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default="BENCH_inference.json")
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        help="fail unless the vectorized bootstrap beats the loop by this factor",
    )
    args = parser.parse_args(argv)

    # Campaign-scale: the analyses bootstrap per-point scalar metrics —
    # tens of values, thousands of resamples.  There the Python loop
    # pays 2 generator calls + reductions per resample and the
    # vectorized path collapses all of it into one block.
    n_values = 64
    n_resamples = 5000 if args.quick else 20000
    # Large-sample: per-spot scores pooled over a campaign.  Honest
    # caveat recorded in the JSON: at this shape the index *draw*
    # dominates both engines, so the margin is structurally small.
    n_large = 1024 if args.quick else 4096
    b_large = 500 if args.quick else 2000
    fit_points = 48
    fit_resamples = 200 if args.quick else 1000

    suite = BenchSuite("inference")
    rng = np.random.default_rng(0)
    data = rng.lognormal(mean=-22.0, sigma=0.5, size=n_values)
    data_large = rng.lognormal(mean=-22.0, sigma=0.5, size=n_large)

    vec, _ = suite.time(
        "bootstrap-mean",
        lambda: resample_statistics(data, "mean", n_resamples=n_resamples, seed=1),
        backend="vectorized",
        rows=n_values,
        cols=n_resamples,
        repeats=args.repeats,
        n_values=n_values,
        n_resamples=n_resamples,
    )
    loop, _ = suite.time(
        "bootstrap-mean",
        lambda: resample_statistics(
            data, "mean", n_resamples=n_resamples, seed=1, engine="loop"
        ),
        backend="object",
        rows=n_values,
        cols=n_resamples,
        repeats=args.repeats,
        n_values=n_values,
        n_resamples=n_resamples,
        note="bit-identical Python-loop baseline",
    )
    if not np.array_equal(vec, loop):
        raise SystemExit("engines diverged: vectorized and loop bootstraps must be bit-identical")

    for backend, engine in (("vectorized", "vectorized"), ("object", "loop")):
        suite.time(
            "bootstrap-mean-large",
            lambda engine=engine: resample_statistics(
                data_large, "mean", n_resamples=b_large, seed=1, engine=engine
            ),
            backend=backend,
            rows=n_large,
            cols=b_large,
            repeats=args.repeats,
            n_values=n_large,
            n_resamples=b_large,
            note="index generation dominates both engines at this shape",
        )

    x = np.logspace(-9, -5, fit_points)
    y = 10.0 ** (-3.0 + 1.0 * np.log10(x) + np.random.default_rng(1).normal(0, 0.05, fit_points))
    vec_fit, _ = suite.time(
        "loglinear-pairs-bootstrap",
        lambda: bootstrap_loglinear(x, y, log_y=True, n_resamples=fit_resamples, seed=2),
        backend="vectorized",
        rows=fit_points,
        cols=fit_resamples,
        repeats=args.repeats,
        n_points=fit_points,
        n_resamples=fit_resamples,
    )
    loop_fit, _ = suite.time(
        "loglinear-pairs-bootstrap",
        lambda: loop_bootstrap_loglinear(
            x, y, log_y=True, n_resamples=fit_resamples, seed=2
        ),
        backend="object",
        rows=fit_points,
        cols=fit_resamples,
        repeats=args.repeats,
        n_points=fit_points,
        n_resamples=fit_resamples,
        note="per-resample loglinear_fit in a Python loop",
    )
    if vec_fit.slope != loop_fit.slope:
        raise SystemExit("fit bootstraps diverged: slope CIs must match the loop baseline")

    path = suite.write(args.out)
    print(f"wrote {path}")
    for label, entry in suite.speedups().items():
        print(
            f"  {label}: loop {entry['object_s'] * 1e3:8.2f} ms  "
            f"vectorized {entry['vectorized_s'] * 1e3:8.2f} ms  "
            f"speedup {entry['speedup']:7.1f}x"
        )
    if args.assert_speedup is not None:
        speedup = suite.speedup_at("bootstrap-mean", n_values, n_resamples)
        if speedup is None or speedup < args.assert_speedup:
            raise SystemExit(
                f"bootstrap speedup {speedup} below required {args.assert_speedup}x"
            )
        print(f"bootstrap speedup {speedup:.1f}x >= required {args.assert_speedup}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
