"""Extension — label-free principles vs the labelled redox chain.

The paper: "Alternative label-free principles are under development.
They focus on the effect of impedance or mass changes at the sensors'
surfaces after hybridization" (refs [7-11]).  This bench implements the
comparison the sentence implies: occupancy detection limits of the
impedance sensor and the FBAR mass resonator against the redox-cycling
enzyme-label chain the chips actually use.
"""

import pytest

from repro.core import render_kv, render_table, units
from repro.electrochem.labelfree import (
    ImpedanceSensor,
    MassResonator,
    compare_detection_limits,
)


def bench_ext_detection_limits(benchmark):
    limits = benchmark.pedantic(compare_detection_limits, rounds=1, iterations=1)

    print()
    print(render_table(
        ["detection principle", "occupancy detection limit"],
        [(name, f"{value:.2e}") for name, value in limits.items()],
        title="Label-free vs labelled detection (lower is better)"))
    print()
    print(render_kv("Interpretation", [
        ("paper's choice", "labelled redox cycling (Section 2 chips)"),
        ("paper on label-free", "'under development' (refs [7-11])"),
        ("measured ordering", "redox <= mass resonator < impedance"),
    ]))
    redox = limits["redox cycling (enzyme label)"]
    assert redox <= min(v for k, v in limits.items() if k != "redox cycling (enzyme label)")


def bench_ext_impedance_dose_curve(benchmark):
    """Relative capacitance change vs duplex coverage."""
    sensor = ImpedanceSensor()

    def run():
        return [(theta, sensor.signal(theta))
                for theta in (0.0, 1e-3, 1e-2, 0.1, 0.3, 1.0)]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(render_table(
        ["duplex coverage", "|dC/C0|"],
        [(f"{theta:g}", f"{signal * 100:.3f}%") for theta, signal in rows],
        title="Impedance sensor dose curve"))
    signals = [s for _, s in rows]
    assert all(b > a for a, b in zip(signals, signals[1:]))


def bench_ext_resonator_dose_curve(benchmark):
    """FBAR frequency shift vs coverage and target length."""
    def run():
        rows = []
        for length in (20, 200, 2000):
            resonator = MassResonator(target_length_bases=length)
            rows.append((length, resonator.frequency_shift(0.1),
                         resonator.detection_limit_occupancy()))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(render_table(
        ["target length (bases)", "df at 10% coverage", "LoD (occupancy)"],
        [(n, units.si_format(df, "Hz"), f"{lod:.1e}") for n, df, lod in rows],
        title="Mass-resonator dose curve (2 GHz FBAR)"))
    # Longer targets (the paper: 2-3 decades longer than probes) are the
    # regime where gravimetric sensing becomes competitive.
    lods = [lod for *_, lod in rows]
    assert lods[-1] < lods[0]
