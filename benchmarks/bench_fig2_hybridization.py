"""Fig. 2 — DNA microarray workflow: immobilize -> hybridize -> wash.

Regenerates the figure's phenomenology as numbers: site occupancy
through each protocol phase for matched and mismatched probe/target
pairs, and the post-wash discrimination that makes the chip readout
meaningful (double-stranded DNA only at match positions).
"""

import numpy as np
import pytest

from repro.core import render_kv, render_table, units
from repro.dna import (
    AssayProtocol,
    DnaSequence,
    MicroarrayAssay,
    Probe,
    ProbeLayout,
    Sample,
    Target,
)


def build_panel():
    """One target, probes at 0-3 mismatches, bare controls."""
    rng = np.random.default_rng(42)
    region = DnaSequence.random(20, rng)
    target = Target("target", region, total_length=2000)
    perfect = region.reverse_complement()
    probes = [Probe("match-0mm", perfect)]
    for mm in (1, 2, 3):
        probes.append(Probe(f"mismatch-{mm}mm", perfect.with_mismatches(mm, rng)))
    layout = ProbeLayout.tiled(probes, rows=16, cols=8, replicates=28, control_every=16)
    return layout, target


def run_assay():
    layout, target = build_panel()
    protocol = AssayProtocol(hybridization_s=3600.0, wash_s=120.0)
    return MicroarrayAssay(layout).run(Sample({target: 1e-5}), protocol)


def bench_fig2_protocol(benchmark):
    """Full protocol over the 16x8 panel (the figure's a-g sequence)."""
    result = benchmark.pedantic(run_assay, rounds=1, iterations=1)

    rows = []
    for name in ("match-0mm", "mismatch-1mm", "mismatch-2mm", "mismatch-3mm"):
        sites = [s for s in result.sites if s.probe_name == name]
        rows.append((
            name,
            f"{np.median([s.occupancy_after_hybridization for s in sites]):.3e}",
            f"{np.median([s.occupancy_after_wash for s in sites]):.3e}",
            units.si_format(float(np.median([s.sensor_current for s in sites])), "A"),
        ))
    bare = [s.sensor_current for s in result.sites if not s.probe_name]
    rows.append(("bare control", "0", "0", units.si_format(float(np.median(bare)), "A")))
    print()
    print(render_table(
        ["site", "theta after hybridization", "theta after wash", "sensor current"],
        rows, title="Fig. 2: occupancy through the protocol (10 nM target)"))

    match = np.median([s.sensor_current for s in result.sites if s.probe_name == "match-0mm"])
    mm1 = np.median([s.sensor_current for s in result.sites if s.probe_name == "mismatch-1mm"])
    print()
    print(render_kv("Reproduction vs paper", [
        ("paper: match sites", "double-stranded DNA retained after washing"),
        ("paper: mismatch sites", "chemical binding does not occur / strips in wash"),
        ("measured: match / 1-mismatch current ratio", f"{match / mm1:.0f}x"),
        ("measured: match / bare-control ratio", f"{match / np.median(bare):.0f}x"),
    ]))
    assert match / mm1 > 10


def bench_fig2_washing_ablation(benchmark):
    """Without the washing step the mismatch discrimination collapses —
    the reason Fig. 2 f)/g) exist."""
    layout, target = build_panel()
    assay = MicroarrayAssay(layout)

    def run_both():
        washed = assay.run(Sample({target: 1e-5}),
                           AssayProtocol(hybridization_s=3600.0, wash_s=120.0))
        unwashed = assay.run(Sample({target: 1e-5}),
                             AssayProtocol(hybridization_s=3600.0, wash_s=1e-9))
        return washed, unwashed

    washed, unwashed = benchmark.pedantic(run_both, rounds=1, iterations=1)

    def ratio(result):
        match = np.median([s.sensor_current for s in result.sites if s.probe_name == "match-0mm"])
        mm = np.median([s.sensor_current for s in result.sites if s.probe_name == "mismatch-1mm"])
        return match / mm

    r_washed, r_unwashed = ratio(washed), ratio(unwashed)
    print()
    print(render_table(
        ["protocol", "match/mismatch ratio"],
        [("with 120 s wash", f"{r_washed:.0f}x"), ("without wash", f"{r_unwashed:.1f}x")],
        title="Washing-step ablation"))
    assert r_washed > 3 * r_unwashed
