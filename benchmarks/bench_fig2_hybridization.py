"""Fig. 2 — DNA microarray workflow: immobilize -> hybridize -> wash.

Regenerates the figure's phenomenology as numbers via the Experiment
API's ``panel="mismatch"`` design: site occupancy through each protocol
phase for matched and mismatched probe/target pairs, and the post-wash
discrimination that makes the chip readout meaningful (double-stranded
DNA only at match positions).  The washing ablation runs two specs that
differ only in ``wash_s`` — the Runner reuses one chip and one layout.
"""

import numpy as np
import pytest

from repro.core import render_kv, render_table, units
from repro.experiments import DnaAssaySpec, Runner

FIG2_SPEC = DnaAssaySpec(
    panel="mismatch",
    mismatch_counts=(1, 2, 3),
    replicates=28,
    control_every=16,
    concentration=10 * units.nM,
    hybridization_s=3600.0,
    wash_s=120.0,
)


def median_current(result, probe_name):
    mask = result.column("probe") == probe_name
    return float(np.median(result.select(mask)["sensor_current_a"]))


def bench_fig2_protocol(benchmark):
    """Full protocol over the 16x8 panel (the figure's a-g sequence)."""
    runner = Runner(seed=42)
    result = benchmark.pedantic(lambda: runner.run(FIG2_SPEC), rounds=1, iterations=1)

    probes = result.column("probe")
    rows = []
    for name in ("match-0mm", "mismatch-1mm", "mismatch-2mm", "mismatch-3mm"):
        sel = result.select(probes == name)
        rows.append((
            name,
            f"{np.median(sel['occupancy_hyb']):.3e}",
            f"{np.median(sel['occupancy_wash']):.3e}",
            units.si_format(float(np.median(sel["sensor_current_a"])), "A"),
        ))
    bare = result.select(probes == "")["sensor_current_a"]
    rows.append(("bare control", "0", "0", units.si_format(float(np.median(bare)), "A")))
    print()
    print(render_table(
        ["site", "theta after hybridization", "theta after wash", "sensor current"],
        rows, title="Fig. 2: occupancy through the protocol (10 nM target)"))

    match = median_current(result, "match-0mm")
    mm1 = median_current(result, "mismatch-1mm")
    print()
    print(render_kv("Reproduction vs paper", [
        ("paper: match sites", "double-stranded DNA retained after washing"),
        ("paper: mismatch sites", "chemical binding does not occur / strips in wash"),
        ("measured: match / 1-mismatch current ratio", f"{match / mm1:.0f}x"),
        ("measured: match / bare-control ratio", f"{match / np.median(bare):.0f}x"),
    ]))
    assert match / mm1 > 10


def bench_fig2_washing_ablation(benchmark):
    """Without the washing step the mismatch discrimination collapses —
    the reason Fig. 2 f)/g) exist."""
    runner = Runner(seed=42)
    specs = [FIG2_SPEC, FIG2_SPEC.replace(wash_s=1e-9)]

    washed, unwashed = benchmark.pedantic(
        lambda: runner.run_batch(specs), rounds=1, iterations=1
    )

    assert runner.stats.chips_built == 1 and runner.stats.layouts_built == 1

    def ratio(result):
        return median_current(result, "match-0mm") / median_current(result, "mismatch-1mm")

    r_washed, r_unwashed = ratio(washed), ratio(unwashed)
    print()
    print(render_table(
        ["protocol", "match/mismatch ratio"],
        [("with 120 s wash", f"{r_washed:.0f}x"), ("without wash", f"{r_unwashed:.1f}x")],
        title="Washing-step ablation"))
    assert r_washed > 3 * r_unwashed
