"""Fig. 1 — the drug-screening funnel, via the Experiment API.

Regenerates the figure's two monotone series (datapoints/day falling,
costs/datapoint rising) over the four stages, the attrition from a
10^5-compound library toward single candidates, and the CMOS-array
economics the paper's introduction motivates.  Both benches run
``ScreeningSpec`` experiments through ``repro.experiments.Runner``; the
CMOS-vs-conventional pair shares one generated library and one decision
stream (paired comparison) via the Runner's caches and seed tree.
"""

import pytest

from repro.core import render_kv, render_table
from repro.experiments import Runner, ScreeningSpec


def bench_fig1_funnel(benchmark):
    runner = Runner(seed=31)
    spec = ScreeningSpec(library_size=100_000, viable_rate=1e-4, cmos=False)

    result = benchmark.pedantic(lambda: runner.run(spec), rounds=1, iterations=1)

    print()
    print(render_table(
        ["stage", "in", "out", "datapoints/day", "cost/datapoint", "stage cost", "days"],
        [(row["stage"], row["candidates_in"], row["candidates_out"],
          f"{row['datapoints_per_day']:g}", f"{row['cost_per_datapoint']:g}",
          f"{row['cost']:,.0f}", f"{row['days']:.1f}") for row in result.to_rows()],
        title="Fig. 1: screening funnel over 100k compounds"))
    print()
    print(render_kv("Reproduction vs paper", [
        ("paper: costs/datapoint arrow", "increasing down the funnel"),
        ("measured: monotone cost increase", result.metrics["monotone_cost_increase"]),
        ("paper: datapoints/day arrow", "decreasing down the funnel"),
        ("measured: monotone throughput decrease",
         result.metrics["monotone_throughput_decrease"]),
        ("paper: 'one compound out of millions'", "funnel attrition"),
        ("measured: attrition",
         f"{result.metrics['library_size']} -> {result.metrics['survivors']} "
         f"({result.metrics['surviving_viable']} truly viable)"),
        ("total cost", f"{result.metrics['total_cost']:,.0f}"),
        ("total days", f"{result.metrics['total_days']:.1f}"),
    ]))
    assert result.metrics["monotone_cost_increase"]
    assert result.metrics["monotone_throughput_decrease"]
    assert result.metrics["survivors"] < 0.01 * result.metrics["library_size"]


def bench_fig1_cmos_vs_conventional(benchmark):
    """The paper's pitch: CMOS arrays accelerate the high-volume stages."""
    runner = Runner(seed=33)
    specs = [
        ScreeningSpec(library_size=100_000, viable_rate=1e-4, cmos=True),
        ScreeningSpec(library_size=100_000, viable_rate=1e-4, cmos=False),
    ]

    cmos, conv = benchmark.pedantic(
        lambda: runner.run_batch(specs), rounds=1, iterations=1
    )

    assert runner.stats.libraries_built == 1, "pair must share one library"
    early_cost = (float(conv.column("cost")[:2].sum()), float(cmos.column("cost")[:2].sum()))
    early_days = (float(conv.column("days")[:2].sum()), float(cmos.column("days")[:2].sum()))
    print()
    print(render_table(
        ["metric", "conventional", "CMOS arrays", "factor"],
        [
            ("early-stage cost", f"{early_cost[0]:,.0f}", f"{early_cost[1]:,.0f}",
             f"{early_cost[0] / early_cost[1]:.1f}x"),
            ("early-stage days", f"{early_days[0]:.1f}", f"{early_days[1]:.1f}",
             f"{early_days[0] / early_days[1]:.1f}x"),
            ("survivors (viable)",
             f"{conv.metrics['survivors']} ({conv.metrics['surviving_viable']})",
             f"{cmos.metrics['survivors']} ({cmos.metrics['surviving_viable']})", "-"),
        ],
        title="CMOS-array platforms vs conventional workflows"))
    assert early_cost[1] < early_cost[0]
    assert early_days[1] < early_days[0]
