"""Fig. 1 — the drug-screening funnel.

Regenerates the figure's two monotone series (datapoints/day falling,
costs/datapoint rising) over the four stages, the attrition from a
10^5-compound library toward single candidates, and the CMOS-array
economics the paper's introduction motivates.
"""

import pytest

from repro.core import render_kv, render_table
from repro.screening import (
    CompoundLibrary,
    ScreeningFunnel,
    compare_cmos_vs_conventional,
)


def bench_fig1_funnel(benchmark):
    library = CompoundLibrary.generate(size=100_000, viable_rate=1e-4, rng=31)

    result = benchmark.pedantic(
        lambda: ScreeningFunnel().run(library, rng=32), rounds=1, iterations=1
    )

    print()
    print(render_table(
        ["stage", "in", "out", "datapoints/day", "cost/datapoint", "stage cost", "days"],
        [(o.stage_name, o.candidates_in, o.candidates_out,
          f"{o.datapoints_per_day:g}", f"{o.cost_per_datapoint:g}",
          f"{o.cost:,.0f}", f"{o.days:.1f}") for o in result.outcomes],
        title="Fig. 1: screening funnel over 100k compounds"))
    print()
    print(render_kv("Reproduction vs paper", [
        ("paper: costs/datapoint arrow", "increasing down the funnel"),
        ("measured: monotone cost increase", result.monotone_cost_increase()),
        ("paper: datapoints/day arrow", "decreasing down the funnel"),
        ("measured: monotone throughput decrease", result.monotone_throughput_decrease()),
        ("paper: 'one compound out of millions'", "funnel attrition"),
        ("measured: attrition", f"{library.size} -> {result.survivors} "
                                f"({result.surviving_viable} truly viable)"),
        ("total cost", f"{result.total_cost:,.0f}"),
        ("total days", f"{result.total_days:.1f}"),
    ]))
    assert result.monotone_cost_increase()
    assert result.monotone_throughput_decrease()
    assert result.survivors < 0.01 * library.size


def bench_fig1_cmos_vs_conventional(benchmark):
    """The paper's pitch: CMOS arrays accelerate the high-volume stages."""
    library = CompoundLibrary.generate(size=100_000, viable_rate=1e-4, rng=33)

    results = benchmark.pedantic(
        lambda: compare_cmos_vs_conventional(library, rng=34), rounds=1, iterations=1
    )

    cmos, conv = results["cmos"], results["conventional"]
    early_cost = (sum(o.cost for o in conv.outcomes[:2]), sum(o.cost for o in cmos.outcomes[:2]))
    early_days = (sum(o.days for o in conv.outcomes[:2]), sum(o.days for o in cmos.outcomes[:2]))
    print()
    print(render_table(
        ["metric", "conventional", "CMOS arrays", "factor"],
        [
            ("early-stage cost", f"{early_cost[0]:,.0f}", f"{early_cost[1]:,.0f}",
             f"{early_cost[0] / early_cost[1]:.1f}x"),
            ("early-stage days", f"{early_days[0]:.1f}", f"{early_days[1]:.1f}",
             f"{early_days[0] / early_days[1]:.1f}x"),
            ("survivors (viable)", f"{conv.survivors} ({conv.surviving_viable})",
             f"{cmos.survivors} ({cmos.surviving_viable})", "-"),
        ],
        title="CMOS-array platforms vs conventional workflows"))
    assert early_cost[1] < early_cost[0]
    assert early_days[1] < early_days[0]
