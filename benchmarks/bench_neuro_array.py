"""Neural-recording sweep — object vs vectorized backend, serial vs
batched campaign dispatch (repro.engine neuro kernels).

Two comparisons, one machine-readable JSON:

* ``measure`` / ``end_to_end`` — the ``neural_recording`` workload at
  array scale (dense cultures on 32x32 / 64x64 sub-arrays, the Fig. 5
  recording pipeline): per-neuron Hodgkin-Huxley loops + per-pixel
  ``np.interp`` sampling on the object backend vs the batched RK4 +
  frame-synthesis kernels on the vectorized backend.  ``measure`` runs
  on a warm Runner (chip cached) so the record isolates the recording
  hot path.
* ``campaign_*`` — a 64-point single-spec campaign executed by the
  serial executor (per-point Runner dispatch) vs the batched executor
  (points compiled into chip-batched engine calls).  Per-point results
  are verified bit-identical before any timing is reported.

Standalone::

    PYTHONPATH=src python benchmarks/bench_neuro_array.py [--quick] \
        [--out BENCH_neuro.json] [--assert-speedup 10] \
        [--assert-batched-speedup 5]
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from _harness import BenchSuite

from repro.campaigns import CampaignSpec, run_campaign
from repro.core import render_table, units
from repro.experiments import ArrayScaleSpec, NeuralRecordingSpec, Runner

# Dense-culture recording configs: (rows, cols, n_neurons).  Small
# somata (10-30 um) keep the placement feasible at these densities
# (~25% area packing at 320 cells on the 0.5 mm sub-array, still well
# under confluent-culture density); the neuron count is where the
# object backend's per-neuron HH loop scales linearly while the
# batched integration stays flat.
FULL_SIZES = [(32, 32, 80), (64, 64, 320)]
QUICK_SIZES = [(64, 64, 96)]


def recording_spec(rows: int, cols: int, n_neurons: int, duration_s: float, use_hh: bool = True):
    return NeuralRecordingSpec(
        rows=rows,
        cols=cols,
        n_neurons=n_neurons,
        diameter_range_m=(10e-6, 30e-6),
        duration_s=duration_s,
        use_hh=use_hh,
    )


def run_recording_sweep(
    sizes=FULL_SIZES,
    duration_s: float = 0.1,
    seed: int = 7,
    suite: BenchSuite | None = None,
    end_to_end: bool = True,
) -> BenchSuite:
    """Time both backends at every size on the same spec and seed."""
    suite = suite or BenchSuite("neuro")
    for rows, cols, n_neurons in sizes:
        spec = recording_spec(rows, cols, n_neurons, duration_s)
        for backend in ("object", "vectorized"):
            if end_to_end:
                suite.time(
                    "end_to_end",
                    lambda: Runner(seed).run(spec, backend=backend),
                    backend=backend,
                    rows=rows,
                    cols=cols,
                    n_neurons=n_neurons,
                    duration_s=duration_s,
                )
            runner = Runner(seed)
            runner.run(spec, backend=backend)  # warm the chip cache
            suite.time(
                "measure",
                lambda: runner.run(spec, backend=backend),
                backend=backend,
                rows=rows,
                cols=cols,
                n_neurons=n_neurons,
                duration_s=duration_s,
            )
    # One template-AP row for reference: the interp-free frame
    # synthesis alone, without the HH integration in either path.
    rows, cols, n_neurons = sizes[-1]
    template = recording_spec(rows, cols, n_neurons, duration_s, use_hh=False)
    for backend in ("object", "vectorized"):
        runner = Runner(seed)
        runner.run(template, backend=backend)
        suite.time(
            "measure_template",
            lambda: runner.run(template, backend=backend),
            backend=backend,
            rows=rows,
            cols=cols,
            n_neurons=n_neurons,
            duration_s=duration_s,
        )
    return suite


# ---------------------------------------------------------------------------
# Batched campaign comparison
# ---------------------------------------------------------------------------
def _results_identical(serial_result, batched_result) -> bool:
    for a, b in zip(serial_result.results(), batched_result.results()):
        a = a.without_artifacts()
        b = b.without_artifacts()
        if a.spec != b.spec or a.seeds != b.seeds or set(a.metrics) != set(b.metrics):
            return False
        for column in a.records:
            left, right = a.records[column], b.records[column]
            if left.dtype != right.dtype:
                return False
            both_nan = (
                np.isnan(left) & np.isnan(right)
                if left.dtype.kind == "f"
                else np.zeros(left.shape, dtype=bool)
            )
            if not np.array_equal(left[~both_nan], right[~both_nan]):
                return False
        for name, value in a.metrics.items():
            other = b.metrics[name]
            if isinstance(value, float) and np.isnan(value):
                if not (isinstance(other, float) and np.isnan(other)):
                    return False
            elif value != other:
                return False
    return True


def run_campaign_comparison(points: int, seed: int = 3) -> dict:
    """Serial per-point dispatch vs the batched executor on 64-point
    single-spec campaigns of both vectorized kinds; per-point parity is
    checked bit-identically before the ratio is reported."""
    campaigns = {
        "neural_recording": CampaignSpec(
            base=recording_spec(32, 32, 4, duration_s=0.05),
            replicates=points,
            backend="vectorized",
        ),
        "array_scale": CampaignSpec(
            base=ArrayScaleSpec(rows=32, cols=32, frame_s=0.1),
            replicates=points,
        ),
    }
    block: dict = {}
    for kind, campaign in campaigns.items():
        start = time.perf_counter()
        serial = run_campaign(campaign, seed=seed, executor="serial")
        serial_s = time.perf_counter() - start
        start = time.perf_counter()
        batched = run_campaign(campaign, seed=seed, executor="batched")
        batched_s = time.perf_counter() - start
        block[kind] = {
            "points": points,
            "serial_s": serial_s,
            "batched_s": batched_s,
            "speedup": serial_s / batched_s if batched_s > 0 else float("inf"),
            "identical": _results_identical(serial, batched),
        }
    return block


def render_speedups(suite: BenchSuite) -> str:
    rows = [
        (
            label,
            units.si_format(entry["object_s"], "s"),
            units.si_format(entry["vectorized_s"], "s"),
            f"{entry['speedup']:.1f}x",
        )
        for label, entry in suite.speedups().items()
    ]
    return render_table(
        ["workload@size", "object", "vectorized", "speedup"],
        rows,
        title="Neural recording: object vs vectorized backend",
    )


def render_campaigns(block: dict) -> str:
    rows = [
        (
            kind,
            str(entry["points"]),
            units.si_format(entry["serial_s"], "s"),
            units.si_format(entry["batched_s"], "s"),
            f"{entry['speedup']:.1f}x",
            "bit-identical" if entry["identical"] else "MISMATCH",
        )
        for kind, entry in block.items()
    ]
    return render_table(
        ["campaign kind", "points", "serial", "batched", "speedup", "parity"],
        rows,
        title="Campaign dispatch: serial per-point vs batched engine calls",
    )


def bench_neuro_recording_sweep(benchmark):
    """Pytest-benchmark entry: a reduced sweep that still pairs the
    backends and checks the vectorized one wins on dense cultures."""
    suite = BenchSuite("neuro")
    benchmark.pedantic(
        lambda: run_recording_sweep(
            sizes=[(32, 32, 24)], duration_s=0.02, suite=suite, end_to_end=False
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_speedups(suite))
    speedup = suite.speedup_at("measure", 32, 32)
    assert speedup is not None and speedup > 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="one size + short duration (CI smoke)")
    parser.add_argument("--out", default="BENCH_neuro.json", help="output JSON path")
    parser.add_argument("--duration", type=float, default=None, help="recording length in seconds")
    parser.add_argument("--points", type=int, default=None, help="campaign points (default 64; 16 with --quick)")
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit non-zero unless measure-path speedup at the largest size is >= X",
    )
    parser.add_argument(
        "--assert-batched-speedup",
        type=float,
        default=None,
        metavar="Y",
        help="exit non-zero unless the batched neural campaign is >= Y x serial",
    )
    args = parser.parse_args(argv)

    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    duration = args.duration if args.duration is not None else 0.05
    points = args.points if args.points is not None else (16 if args.quick else 64)

    suite = run_recording_sweep(sizes=sizes, duration_s=duration, end_to_end=not args.quick)
    print(render_speedups(suite))
    campaign_block = run_campaign_comparison(points)
    print()
    print(render_campaigns(campaign_block))

    data = suite.to_dict()
    data["campaigns"] = campaign_block
    target = Path(args.out)
    target.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"wrote {target}")

    failures = []
    for kind, entry in campaign_block.items():
        if not entry["identical"]:
            failures.append(f"batched {kind} campaign results differ from serial")
    if args.assert_speedup is not None:
        rows, cols, _ = sizes[-1]
        speedup = suite.speedup_at("measure", rows, cols)
        if speedup is None or speedup < args.assert_speedup:
            failures.append(
                f"measure speedup at {rows}x{cols} is "
                f"{speedup if speedup is not None else 'missing'}, "
                f"required >= {args.assert_speedup}"
            )
        else:
            print(f"OK: measure speedup at {rows}x{cols} is {speedup:.1f}x")
    if args.assert_batched_speedup is not None:
        speedup = campaign_block["neural_recording"]["speedup"]
        if speedup < args.assert_batched_speedup:
            failures.append(
                f"batched campaign speedup is {speedup:.1f}x, "
                f"required >= {args.assert_batched_speedup}"
            )
        else:
            print(f"OK: batched campaign speedup is {speedup:.1f}x")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 2 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
